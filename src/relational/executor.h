#ifndef MSQL_RELATIONAL_EXECUTOR_H_
#define MSQL_RELATIONAL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/expr_eval.h"
#include "relational/result_set.h"
#include "relational/sql/ast.h"
#include "relational/txn.h"

namespace msql::relational {

/// Execution switches derived from the engine's capability profile.
struct ExecutorOptions {
  /// When true, DDL statements append undo records (Ingres-like DDL
  /// rollback); when false the caller is responsible for the Oracle-like
  /// "DDL commits prior work" dance before invoking the executor.
  bool record_ddl_undo = true;
};

/// Executes parsed SQL statements against one local database inside a
/// transaction. All data modifications append undo records to `txn`;
/// all table access goes through `locks` (shared for reads, exclusive
/// for writes) with the no-wait conflict policy.
///
/// The executor is deliberately naive — nested-loop joins, full scans —
/// because the paper locates multidatabase optimization in data-flow and
/// parallelism above this layer, not in local operator efficiency.
class Executor {
 public:
  Executor(Database* db, Transaction* txn, LockManager* locks,
           ExecutorOptions options = {})
      : db_(db), txn_(txn), locks_(locks), options_(options) {}

  /// Dispatches on statement kind. Transaction-control verbs are not
  /// handled here (the engine owns the transaction lifecycle).
  Result<ResultSet> Execute(const Statement& stmt);

  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStmt& stmt);
  Result<ResultSet> ExecuteUpdate(const UpdateStmt& stmt);
  Result<ResultSet> ExecuteDelete(const DeleteStmt& stmt);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<ResultSet> ExecuteDropTable(const DropTableStmt& stmt);
  Result<ResultSet> ExecuteCreateView(const CreateViewStmt& stmt);
  Result<ResultSet> ExecuteDropView(const DropViewStmt& stmt);
  Result<ResultSet> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<ResultSet> ExecuteDropIndex(const DropIndexStmt& stmt);

 private:
  /// Evaluates a scalar subquery: one column, at most one row; zero rows
  /// yield SQL NULL.
  Result<Value> EvalScalarSubquery(const SelectStmt& stmt);

  /// Rejects DML whose target names a view.
  Status RejectViewTarget(const TableRef& ref) const;

  /// Checks an optional db qualifier against the executor's database.
  Status CheckQualifier(const TableRef& ref) const;

  /// Lock key "db.table".
  std::string LockKey(const std::string& table) const;

  Database* db_;
  Transaction* txn_;
  LockManager* locks_;
  ExecutorOptions options_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_EXECUTOR_H_
