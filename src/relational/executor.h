#ifndef MSQL_RELATIONAL_EXECUTOR_H_
#define MSQL_RELATIONAL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/database.h"
#include "relational/expr_eval.h"
#include "relational/planner.h"
#include "relational/result_set.h"
#include "relational/sql/ast.h"
#include "relational/txn.h"

namespace msql::relational {

/// Execution switches derived from the engine's capability profile.
struct ExecutorOptions {
  /// When true, DDL statements append undo records (Ingres-like DDL
  /// rollback); when false the caller is responsible for the Oracle-like
  /// "DDL commits prior work" dance before invoking the executor.
  bool record_ddl_undo = true;
  /// When true (default), SELECTs run through the local planner:
  /// predicate pushdown, per-source index probes, hash equi-joins. When
  /// false, the original naive cross-product join runs — kept as the
  /// differential-testing oracle.
  bool use_planner = true;
  /// Fill ResultSet::plan_text with the plan's EXPLAIN rendering.
  bool collect_plan_text = false;
  /// Optional observability sinks (null = no instrumentation). The
  /// executor emits "sql.plan"/"sql.join" spans and join-strategy
  /// counters when these are enabled.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Executes parsed SQL statements against one local database inside a
/// transaction. All data modifications append undo records to `txn`;
/// all table access goes through `locks` (shared for reads, exclusive
/// for writes) with the no-wait conflict policy.
///
/// SELECT runs through the local planner (relational/planner.h):
/// single-source conjuncts are pushed below the join, indexed
/// `col = literal` conjuncts become probes, and `a.x = b.y` conjuncts
/// drive build/probe hash joins in a greedy cardinality order. The
/// original naive executor (full cross product, one WHERE evaluation
/// per combined row) is preserved behind ExecutorOptions::use_planner
/// as the semantics oracle for differential tests.
class Executor {
 public:
  Executor(Database* db, Transaction* txn, LockManager* locks,
           ExecutorOptions options = {})
      : db_(db), txn_(txn), locks_(locks), options_(options) {}

  /// Dispatches on statement kind. Transaction-control verbs are not
  /// handled here (the engine owns the transaction lifecycle).
  Result<ResultSet> Execute(const Statement& stmt);

  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStmt& stmt);
  Result<ResultSet> ExecuteUpdate(const UpdateStmt& stmt);
  Result<ResultSet> ExecuteDelete(const DeleteStmt& stmt);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<ResultSet> ExecuteDropTable(const DropTableStmt& stmt);
  Result<ResultSet> ExecuteCreateView(const CreateViewStmt& stmt);
  Result<ResultSet> ExecuteDropView(const DropViewStmt& stmt);
  Result<ResultSet> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<ResultSet> ExecuteDropIndex(const DropIndexStmt& stmt);

  /// EXPLAIN: resolves and plans the SELECT without running the join,
  /// returning the plan's deterministic text rendering. Views are still
  /// materialized (their cardinality feeds the join-order estimates).
  Result<std::string> ExplainSelect(const SelectStmt& stmt);

 private:
  /// One resolved FROM source: schema, effective name, and (for views)
  /// pre-materialized rows. Base-table rows are fetched later, once the
  /// plan has chosen an access path.
  struct ResolvedSource {
    std::string effective_name;
    TableSchema schema;
    std::vector<Row> rows;
    const Table* table = nullptr;  // null for views
  };

  /// Locks and resolves every FROM source, materializing views
  /// (accumulating their recursive scan cost into `recursive_scanned`)
  /// and building the combined-row binding.
  Status ResolveSources(const SelectStmt& stmt,
                        std::vector<ResolvedSource>* sources,
                        RowBinding* binding, int64_t* recursive_scanned);

  /// The planned SELECT pipeline: fetch per access path, filter pushed
  /// conjuncts per source, run the hash/nested-loop join steps, apply
  /// the final residual. Produces joined rows in FROM-major order.
  Result<std::vector<Row>> RunPlannedJoin(const SelectStmt& stmt,
                                          const SelectPlan& plan,
                                          std::vector<ResolvedSource>* sources,
                                          const ExprEvaluator& evaluator,
                                          int64_t* rows_scanned,
                                          int64_t* rows_evaluated);

  /// The preserved naive oracle: full cross product, one WHERE
  /// evaluation per combined row.
  Result<std::vector<Row>> RunNaiveJoin(const SelectStmt& stmt,
                                        std::vector<ResolvedSource>* sources,
                                        const ExprEvaluator& evaluator,
                                        int64_t* rows_scanned,
                                        int64_t* rows_evaluated);

  /// Evaluates a scalar subquery: one column, at most one row; zero rows
  /// yield SQL NULL.
  Result<Value> EvalScalarSubquery(const SelectStmt& stmt);

  /// Rejects DML whose target names a view.
  Status RejectViewTarget(const TableRef& ref) const;

  /// Checks an optional db qualifier against the executor's database.
  Status CheckQualifier(const TableRef& ref) const;

  /// Lock key "db.table".
  std::string LockKey(const std::string& table) const;

  Database* db_;
  Transaction* txn_;
  LockManager* locks_;
  ExecutorOptions options_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_EXECUTOR_H_
