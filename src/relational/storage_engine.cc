#include "relational/storage_engine.h"

#include <algorithm>
#include <filesystem>

#include "relational/row_serde.h"
#include "storage/page.h"

namespace msql::relational {

namespace {

// kDdl payload operation codes.
constexpr uint8_t kDdlCreateDb = 1;
constexpr uint8_t kDdlDropDb = 2;
constexpr uint8_t kDdlCreateTable = 3;
constexpr uint8_t kDdlDropTable = 4;
constexpr uint8_t kDdlCreateIndex = 5;
constexpr uint8_t kDdlDropIndex = 6;
constexpr uint8_t kDdlCreateView = 7;
constexpr uint8_t kDdlDropView = 8;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  storage::StoreU32(buf, v);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  storage::StoreU64(buf, v);
  out->append(buf, 8);
}

void AppendStr(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Cursor over a WAL payload; any overrun poisons the reader.
struct Reader {
  std::string_view data;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8() {
    if (pos + 1 > data.size()) return Fail<uint8_t>();
    return static_cast<uint8_t>(data[pos++]);
  }
  uint32_t U32() {
    if (pos + 4 > data.size()) return Fail<uint32_t>();
    uint32_t v = storage::LoadU32(data.data() + pos);
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > data.size()) return Fail<uint64_t>();
    uint64_t v = storage::LoadU64(data.data() + pos);
    pos += 8;
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!ok || pos + len > data.size()) return Fail<std::string>();
    std::string s(data.substr(pos, len));
    pos += len;
    return s;
  }

  template <typename T>
  T Fail() {
    ok = false;
    return T{};
  }
};

Status MalformedRecord(uint64_t lsn) {
  return Status::Corrupted("malformed WAL payload at LSN " +
                           std::to_string(lsn));
}

void AppendSchema(std::string* out, const TableSchema& schema) {
  AppendU32(out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    AppendStr(out, col.name);
    out->push_back(static_cast<char>(col.type));
    AppendU32(out, static_cast<uint32_t>(col.width));
  }
}

Result<TableSchema> ReadSchema(Reader* r, const std::string& table,
                               uint64_t lsn) {
  uint32_t ncols = r->U32();
  std::vector<ColumnDef> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols && r->ok; ++i) {
    ColumnDef col;
    col.name = r->Str();
    col.type = static_cast<Type>(r->U8());
    col.width = static_cast<int>(r->U32());
    cols.push_back(std::move(col));
  }
  if (!r->ok) return MalformedRecord(lsn);
  return TableSchema::Create(table, std::move(cols));
}

/// Upper bound of the composite-entry range for one encoded value: the
/// rowid suffix is exactly 8 bytes, so prefix + 8×0xff dominates them.
std::string PrefixHi(const std::string& prefix) {
  std::string hi = prefix;
  hi.append(8, '\xff');
  return hi;
}

}  // namespace

// -- TableStorage ------------------------------------------------------------

TableStorage::TableStorage(StorageManager* mgr, std::string db,
                           std::string table, std::string path)
    : mgr_(mgr),
      db_(std::move(db)),
      table_(std::move(table)),
      path_(std::move(path)) {}

TableStorage::~TableStorage() {
  if (disk_ != nullptr && disk_->is_open()) {
    mgr_->pool().DiscardFile(file_id_);
    disk_->Close();
  }
}

Status TableStorage::OpenOrCreate() {
  disk_ = std::make_unique<storage::DiskManager>();
  MSQL_RETURN_IF_ERROR(disk_->Open(path_));
  file_id_ = mgr_->pool().RegisterFile(disk_.get());
  heap_ = std::make_unique<storage::HeapFile>(&mgr_->pool(), file_id_);
  if (disk_->page_count() == 0) return heap_->Create();
  return heap_->Open();
}

Status TableStorage::LoggedInsert(RowId id, const Row& row) {
  std::string bytes = SerializeRow(row);
  MSQL_ASSIGN_OR_RETURN(uint64_t lsn,
                        mgr_->LogInsert(db_, table_, id, bytes));
  return heap_->Put(id, lsn, mgr_->effective_txn(), bytes);
}

Status TableStorage::LoggedUpdate(RowId id, const Row& before,
                                  const Row& after) {
  std::string after_bytes = SerializeRow(after);
  MSQL_ASSIGN_OR_RETURN(
      uint64_t lsn,
      mgr_->LogUpdate(db_, table_, id, SerializeRow(before), after_bytes));
  return heap_->Put(id, lsn, mgr_->effective_txn(), after_bytes);
}

Status TableStorage::LoggedDelete(RowId id, const Row& before) {
  MSQL_ASSIGN_OR_RETURN(
      uint64_t lsn, mgr_->LogDelete(db_, table_, id, SerializeRow(before)));
  return heap_->Delete(id, lsn, mgr_->effective_txn());
}

Result<Row> TableStorage::ReadRow(RowId id) const {
  MSQL_ASSIGN_OR_RETURN(std::string bytes, heap_->Get(id));
  return DeserializeRow(bytes);
}

Status TableStorage::ScanLiveRows(
    const std::function<Status(RowId, Row)>& fn) const {
  return heap_->ScanLive(
      [&](uint64_t rowid, std::string_view bytes) -> Status {
        MSQL_ASSIGN_OR_RETURN(Row row, DeserializeRow(bytes));
        return fn(rowid, std::move(row));
      });
}

// -- BtreeIndex --------------------------------------------------------------

BtreeIndex::BtreeIndex(std::string name, size_t column_index,
                       Type column_type, StorageManager* mgr,
                       std::string path)
    : Index(std::move(name), column_index),
      column_type_(column_type),
      mgr_(mgr),
      path_(std::move(path)) {}

BtreeIndex::~BtreeIndex() {
  if (disk_ != nullptr && disk_->is_open()) {
    mgr_->pool().DiscardFile(file_id_);
    disk_->Close();
  }
}

Status BtreeIndex::OpenOrReset() {
  disk_ = std::make_unique<storage::DiskManager>();
  MSQL_RETURN_IF_ERROR(disk_->Open(path_));
  file_id_ = mgr_->pool().RegisterFile(disk_.get());
  tree_ = std::make_unique<storage::BTree>(&mgr_->pool(), file_id_);
  return tree_->Reset();
}

Result<bool> BtreeIndex::AnyWithPrefix(const std::string& prefix) const {
  bool found = false;
  MSQL_RETURN_IF_ERROR(tree_->ScanRange(prefix, PrefixHi(prefix),
                                        [&](std::string_view) {
                                          found = true;
                                          return false;
                                        }));
  return found;
}

Status BtreeIndex::Insert(const Value& key, RowId id) {
  std::string prefix = EncodeIndexKey(key);
  MSQL_ASSIGN_OR_RETURN(bool existed, AnyWithPrefix(prefix));
  MSQL_RETURN_IF_ERROR(tree_->Insert(EncodeIndexEntry(key, id)));
  if (!existed) ++distinct_;
  return Status::OK();
}

Status BtreeIndex::Erase(const Value& key, RowId id) {
  std::string prefix = EncodeIndexKey(key);
  MSQL_RETURN_IF_ERROR(tree_->Erase(EncodeIndexEntry(key, id)));
  MSQL_ASSIGN_OR_RETURN(bool any, AnyWithPrefix(prefix));
  if (!any && distinct_ > 0) --distinct_;
  return Status::OK();
}

Result<std::vector<RowId>> BtreeIndex::LookupIds(const Value& key) const {
  Value probe = key;
  if (!key.is_null()) {
    auto coerced = key.CoerceTo(column_type_);
    // An uncoercible probe can never equal a stored (column-typed)
    // value — same verdict a full scan's predicate would reach.
    if (!coerced.ok()) return std::vector<RowId>{};
    probe = *std::move(coerced);
  }
  std::string prefix = EncodeIndexKey(probe);
  std::vector<RowId> ids;
  MSQL_RETURN_IF_ERROR(
      tree_->ScanRange(prefix, PrefixHi(prefix), [&](std::string_view entry) {
        ids.push_back(DecodeIndexEntryRowId(entry));
        return true;
      }));
  return ids;
}

// -- StorageManager ----------------------------------------------------------

StorageManager::StorageManager(StorageConfig config)
    : config_(std::move(config)), pool_(config_.buffer_pool_pages) {}

StorageManager::~StorageManager() = default;

Status StorageManager::Open() {
  std::error_code ec;
  std::filesystem::create_directories(config_.root_dir, ec);
  if (ec) {
    return Status::Internal("cannot create storage root '" +
                            config_.root_dir + "': " + ec.message());
  }
  return wal_.Open(config_.root_dir + "/wal.log");
}

void StorageManager::SetCurrentTxn(TxnId txn, uint64_t session,
                                   std::string db) {
  current_txn_ = txn;
  current_session_ = session;
  current_db_ = std::move(db);
}

void StorageManager::ClearCurrentTxn() {
  current_txn_ = 0;
  current_session_ = 0;
  current_db_.clear();
}

std::string StorageManager::HeapPath(const std::string& db,
                                     const std::string& table,
                                     uint64_t lsn) const {
  return config_.root_dir + "/" + db + "." + table + "." +
         std::to_string(lsn) + ".heap";
}

std::string StorageManager::BtreePath(const std::string& db,
                                      const std::string& table,
                                      const std::string& index,
                                      const std::string& tag) const {
  return config_.root_dir + "/" + db + "." + table + "." + index + "." +
         tag + ".btree";
}

Status StorageManager::EnsureBegun() {
  TxnId txn = effective_txn();
  if (txn == 0 || begun_.count(txn) > 0) return Status::OK();
  std::string payload;
  AppendU64(&payload, txn);
  AppendU64(&payload, current_session_);
  AppendStr(&payload, current_db_);
  MSQL_RETURN_IF_ERROR(
      wal_.Append(storage::WalRecordType::kBegin, std::move(payload))
          .status());
  begun_.insert(txn);
  return Status::OK();
}

bool StorageManager::UndoTargetsOwnIncarnation(
    const std::string& db, const std::string& table) const {
  if (!undo_mode_ || undo_txn_ == 0) return false;
  auto it = deltas_.find(undo_txn_);
  if (it == deltas_.end()) return false;
  const std::vector<std::string>& created = it->second.created;
  return std::find(created.begin(), created.end(), db + "." + table) !=
         created.end();
}

Result<uint64_t> StorageManager::LogInsert(const std::string& db,
                                           const std::string& table,
                                           RowId id,
                                           const std::string& bytes) {
  if (UndoTargetsOwnIncarnation(db, table)) return uint64_t{0};
  MSQL_RETURN_IF_ERROR(EnsureBegun());
  std::string payload;
  AppendU64(&payload, effective_txn());
  AppendStr(&payload, db);
  AppendStr(&payload, table);
  AppendU64(&payload, id);
  AppendStr(&payload, bytes);
  return wal_.Append(storage::WalRecordType::kInsert, std::move(payload));
}

Result<uint64_t> StorageManager::LogUpdate(const std::string& db,
                                           const std::string& table,
                                           RowId id,
                                           const std::string& before,
                                           const std::string& after) {
  if (UndoTargetsOwnIncarnation(db, table)) return uint64_t{0};
  MSQL_RETURN_IF_ERROR(EnsureBegun());
  std::string payload;
  AppendU64(&payload, effective_txn());
  AppendStr(&payload, db);
  AppendStr(&payload, table);
  AppendU64(&payload, id);
  AppendStr(&payload, before);
  AppendStr(&payload, after);
  return wal_.Append(storage::WalRecordType::kUpdate, std::move(payload));
}

Result<uint64_t> StorageManager::LogDelete(const std::string& db,
                                           const std::string& table,
                                           RowId id,
                                           const std::string& before) {
  if (UndoTargetsOwnIncarnation(db, table)) return uint64_t{0};
  MSQL_RETURN_IF_ERROR(EnsureBegun());
  std::string payload;
  AppendU64(&payload, effective_txn());
  AppendStr(&payload, db);
  AppendStr(&payload, table);
  AppendU64(&payload, id);
  AppendStr(&payload, before);
  return wal_.Append(storage::WalRecordType::kDelete, std::move(payload));
}

Result<uint64_t> StorageManager::AppendDdl(uint8_t op, const std::string& db,
                                           const std::string& a,
                                           const std::string& b,
                                           const std::string& c,
                                           const TableSchema* schema) {
  MSQL_RETURN_IF_ERROR(EnsureBegun());
  std::string payload;
  AppendU64(&payload, effective_txn());
  payload.push_back(static_cast<char>(op));
  AppendStr(&payload, db);
  AppendStr(&payload, a);
  AppendStr(&payload, b);
  AppendStr(&payload, c);
  if (schema != nullptr) {
    AppendSchema(&payload, *schema);
  } else {
    AppendU32(&payload, 0);
  }
  return wal_.Append(storage::WalRecordType::kDdl, std::move(payload));
}

Status StorageManager::OnCreateDatabase(const std::string& db) {
  MSQL_RETURN_IF_ERROR(
      AppendDdl(kDdlCreateDb, db, "", "", "", nullptr).status());
  // Administrative, outside any transaction: make it durable now.
  return wal_.Flush();
}

Status StorageManager::OnDropDatabase(const std::string& db) {
  MSQL_RETURN_IF_ERROR(
      AppendDdl(kDdlDropDb, db, "", "", "", nullptr).status());
  std::string prefix = db + ".";
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
  return wal_.Flush();
}

Result<TableStorage*> StorageManager::CreateTableStorage(
    const std::string& db, const TableSchema& schema) {
  const std::string& table = schema.table_name();
  std::string key = db + "." + table;
  if (tables_.count(key) > 0) {
    return Status::Internal("storage for '" + key + "' already exists");
  }
  std::string path;
  if (undo_mode_) {
    path = HeapPath(db, table + ".u" + std::to_string(++unlogged_counter_),
                    0);
  } else {
    MSQL_ASSIGN_OR_RETURN(
        uint64_t lsn, AppendDdl(kDdlCreateTable, db, table, "", "", &schema));
    path = HeapPath(db, table, lsn);
  }
  auto ts = std::make_unique<TableStorage>(this, db, table, path);
  MSQL_RETURN_IF_ERROR(ts->OpenOrCreate());
  TableStorage* raw = ts.get();
  tables_[key] = std::move(ts);
  if (!undo_mode_ && current_txn_ != 0) {
    deltas_[current_txn_].created.push_back(key);
  }
  return raw;
}

Status StorageManager::OnDropTable(const std::string& db,
                                   const std::string& table) {
  // During rollback the creating transaction's delta already owns the
  // teardown; the catalog record would be a lie (the drop is the undo
  // of a create that recovery will discard wholesale).
  if (undo_mode_) return Status::OK();
  std::string key = db + "." + table;
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::Internal("drop of unknown table storage '" + key + "'");
  }
  MSQL_RETURN_IF_ERROR(
      AppendDdl(kDdlDropTable, db, table, "", "", nullptr).status());
  if (current_txn_ == 0) {
    tables_.erase(it);
    return Status::OK();
  }
  TxnDelta& delta = deltas_[current_txn_];
  bool created_here =
      std::find(delta.created.begin(), delta.created.end(), key) !=
      delta.created.end();
  delta.dropped.push_back({key, std::move(it->second), created_here});
  tables_.erase(it);
  return Status::OK();
}

Status StorageManager::OnDropIndex(const std::string& db,
                                   const std::string& table,
                                   const std::string& index) {
  if (undo_mode_) return Status::OK();
  return AppendDdl(kDdlDropIndex, db, table, index, "", nullptr).status();
}

Status StorageManager::OnCreateView(const std::string& db,
                                    const std::string& view,
                                    const std::string& sql) {
  if (undo_mode_) return Status::OK();
  return AppendDdl(kDdlCreateView, db, view, sql, "", nullptr).status();
}

Status StorageManager::OnDropView(const std::string& db,
                                  const std::string& view) {
  if (undo_mode_) return Status::OK();
  return AppendDdl(kDdlDropView, db, view, "", "", nullptr).status();
}

Result<std::unique_ptr<Index>> StorageManager::BuildIndex(
    TableStorage* storage, const std::string& index_name,
    const std::string& column_name, size_t column_index, Type column_type,
    bool log) {
  std::string path;
  if (log && !undo_mode_) {
    MSQL_ASSIGN_OR_RETURN(
        uint64_t lsn,
        AppendDdl(kDdlCreateIndex, storage->db(), storage->table(),
                  index_name, column_name, nullptr));
    path = BtreePath(storage->db(), storage->table(), index_name,
                     std::to_string(lsn));
  } else {
    path = BtreePath(storage->db(), storage->table(), index_name,
                     "u" + std::to_string(++unlogged_counter_));
  }
  auto index = std::make_unique<BtreeIndex>(index_name, column_index,
                                            column_type, this, path);
  MSQL_RETURN_IF_ERROR(index->OpenOrReset());
  MSQL_RETURN_IF_ERROR(storage->ScanLiveRows([&](RowId id, Row row) {
    return index->Insert(row[column_index], id);
  }));
  return std::unique_ptr<Index>(std::move(index));
}

void StorageManager::ApplyDelta(TxnId txn, bool commit) {
  auto it = deltas_.find(txn);
  if (it == deltas_.end()) return;
  TxnDelta& delta = it->second;
  if (commit) {
    // Creations stand; dropped incarnations are gone for good (their
    // files are never deleted, just closed and forgotten).
    delta.dropped.clear();
  } else {
    // Reverse order: a re-created name must vanish before the dropped
    // original is re-attached.
    for (auto key = delta.created.rbegin(); key != delta.created.rend();
         ++key) {
      tables_.erase(*key);
    }
    for (auto dropped = delta.dropped.rbegin();
         dropped != delta.dropped.rend(); ++dropped) {
      if (dropped->created_by_txn) {
        dropped->storage.reset();
      } else {
        tables_[dropped->key] = std::move(dropped->storage);
      }
    }
  }
  deltas_.erase(it);
}

Status StorageManager::OnCommit(TxnId txn) {
  if (begun_.count(txn) > 0) {
    std::string payload;
    AppendU64(&payload, txn);
    MSQL_RETURN_IF_ERROR(
        wal_.Append(storage::WalRecordType::kCommit, std::move(payload))
            .status());
    MSQL_RETURN_IF_ERROR(wal_.Flush());
    begun_.erase(txn);
  }
  pool_.ReleaseTxn(txn);
  ApplyDelta(txn, /*commit=*/true);
  return Status::OK();
}

Status StorageManager::OnAbort(TxnId txn) {
  if (begun_.count(txn) > 0) {
    std::string payload;
    AppendU64(&payload, txn);
    MSQL_RETURN_IF_ERROR(
        wal_.Append(storage::WalRecordType::kAbort, std::move(payload))
            .status());
    MSQL_RETURN_IF_ERROR(wal_.Flush());
    begun_.erase(txn);
  }
  pool_.ReleaseTxn(txn);
  ApplyDelta(txn, /*commit=*/false);
  return Status::OK();
}

Status StorageManager::OnPrepare(TxnId txn, uint64_t session,
                                 const std::string& db) {
  if (begun_.count(txn) == 0) {
    // Force BEGIN even for a read-only transaction: the prepared state
    // itself (session identity included) must survive a crash.
    std::string payload;
    AppendU64(&payload, txn);
    AppendU64(&payload, session);
    AppendStr(&payload, db);
    MSQL_RETURN_IF_ERROR(
        wal_.Append(storage::WalRecordType::kBegin, std::move(payload))
            .status());
    begun_.insert(txn);
  }
  std::string payload;
  AppendU64(&payload, txn);
  MSQL_RETURN_IF_ERROR(
      wal_.Append(storage::WalRecordType::kPrepare, std::move(payload))
          .status());
  MSQL_RETURN_IF_ERROR(wal_.Flush());
  pool_.ReleaseTxn(txn);
  return Status::OK();
}

Status StorageManager::Checkpoint(size_t max_pages) {
  obs::ScopedSpan span(tracer_, "storage.checkpoint", "storage");
  const int64_t writes_before = pool_.page_writes();
  MSQL_RETURN_IF_ERROR(wal_.Flush());
  MSQL_RETURN_IF_ERROR(pool_.FlushEligible(max_pages));
  std::string payload;
  AppendU64(&payload, 0);
  MSQL_RETURN_IF_ERROR(
      wal_.Append(storage::WalRecordType::kCheckpoint, std::move(payload))
          .status());
  Status flushed = wal_.Flush();
  span.Annotate("pages_written", pool_.page_writes() - writes_before);
  span.Annotate("flushed_lsn", static_cast<int64_t>(wal_.flushed_lsn()));
  return flushed;
}

void StorageManager::SimulateCrash() {
  pool_.DropAll();
  wal_.DropUnflushed();
  tables_.clear();
  deltas_.clear();
  begun_.clear();
  current_txn_ = 0;
  current_session_ = 0;
  current_db_.clear();
  undo_mode_ = false;
}

Result<RecoveryReport> StorageManager::Recover() {
  obs::ScopedSpan span(tracer_, "storage.recover", "storage");
  tables_.clear();
  deltas_.clear();
  begun_.clear();
  undo_mode_ = false;
  current_txn_ = 0;
  pool_.DropAll();

  MSQL_ASSIGN_OR_RETURN(std::vector<storage::WalRecord> records,
                        wal_.ReadAll());
  span.Annotate("wal_records", static_cast<int64_t>(records.size()));

  // Pass 1: transaction fates and identities. A transaction with no
  // outcome record was active at the crash — its records are discarded
  // (no-steal guarantees none of its pages reached disk, and any that
  // did after a PREPARE are repaired by replayed compensations).
  enum class Fate { kActive, kCommitted, kAborted, kPrepared };
  std::map<uint64_t, Fate> fate;
  struct TxnIdent {
    uint64_t session = 0;
    std::string db;
  };
  std::map<uint64_t, TxnIdent> ident;
  RecoveryReport report;

  for (const storage::WalRecord& rec : records) {
    Reader r{rec.payload};
    uint64_t txn = r.U64();
    if (!r.ok) return MalformedRecord(rec.lsn);
    report.max_txn_id = std::max<TxnId>(report.max_txn_id, txn);
    switch (rec.type) {
      case storage::WalRecordType::kBegin: {
        TxnIdent id;
        id.session = r.U64();
        id.db = r.Str();
        if (!r.ok) return MalformedRecord(rec.lsn);
        report.max_session_id = std::max(report.max_session_id, id.session);
        ident[txn] = std::move(id);
        fate.emplace(txn, Fate::kActive);
        break;
      }
      case storage::WalRecordType::kCommit:
        fate[txn] = Fate::kCommitted;
        break;
      case storage::WalRecordType::kAbort:
        fate[txn] = Fate::kAborted;
        break;
      case storage::WalRecordType::kPrepare:
        fate[txn] = Fate::kPrepared;
        break;
      default:
        fate.emplace(txn, Fate::kActive);
        break;
    }
  }

  auto applied = [&](uint64_t txn) {
    if (txn == 0) return true;
    Fate f = fate[txn];
    return f == Fate::kCommitted || f == Fate::kPrepared;
  };
  auto is_prepared = [&](uint64_t txn) {
    return txn != 0 && fate[txn] == Fate::kPrepared;
  };

  std::map<uint64_t, PreparedTxnImage> prepared;
  std::map<uint64_t, std::set<std::string>> prepared_locks;
  for (const auto& [txn, f] : fate) {
    if (f != Fate::kPrepared) continue;
    PreparedTxnImage image;
    image.txn_id = txn;
    image.session_id = ident[txn].session;
    image.db = ident[txn].db;
    prepared[txn] = std::move(image);
  }

  // Pass 2: catalog replay + LSN-guarded redo, in log order.
  for (const storage::WalRecord& rec : records) {
    Reader r{rec.payload};
    uint64_t txn = r.U64();
    switch (rec.type) {
      case storage::WalRecordType::kDdl: {
        uint8_t op = r.U8();
        std::string db = r.Str();
        std::string a = r.Str();
        std::string b = r.Str();
        std::string c = r.Str();
        if (!r.ok) return MalformedRecord(rec.lsn);
        if (!applied(txn)) break;
        switch (op) {
          case kDdlCreateDb:
            report.databases[db];
            break;
          case kDdlDropDb: {
            std::string prefix = db + ".";
            for (auto it = tables_.begin(); it != tables_.end();) {
              if (it->first.compare(0, prefix.size(), prefix) == 0) {
                it = tables_.erase(it);
              } else {
                ++it;
              }
            }
            report.databases.erase(db);
            break;
          }
          case kDdlCreateTable: {
            MSQL_ASSIGN_OR_RETURN(TableSchema schema,
                                  ReadSchema(&r, a, rec.lsn));
            auto ts = std::make_unique<TableStorage>(this, db, a,
                                                     HeapPath(db, a, rec.lsn));
            MSQL_RETURN_IF_ERROR(ts->OpenOrCreate());
            // The durable tail pointer may lag data pages that
            // committed rows already occupy; never append over them.
            MSQL_RETURN_IF_ERROR(ts->heap()->ResetTail());
            RecoveredTableInfo info;
            info.schema = std::move(schema);
            info.storage = ts.get();
            tables_[db + "." + a] = std::move(ts);
            report.databases[db].tables[a] = std::move(info);
            if (is_prepared(txn)) {
              UndoRecord u;
              u.kind = UndoRecord::Kind::kCreateTable;
              u.database = db;
              u.table = a;
              prepared[txn].undo.push_back(std::move(u));
              prepared_locks[txn].insert(db + "." + a);
            }
            break;
          }
          case kDdlDropTable:
            tables_.erase(db + "." + a);
            report.databases[db].tables.erase(a);
            break;
          case kDdlCreateIndex: {
            auto& table_info = report.databases[db].tables[a];
            table_info.indexes.push_back({b, c});
            if (is_prepared(txn)) {
              UndoRecord u;
              u.kind = UndoRecord::Kind::kCreateIndex;
              u.database = db;
              u.table = a;
              u.index_name = b;
              prepared[txn].undo.push_back(std::move(u));
              prepared_locks[txn].insert(db + "." + a);
            }
            break;
          }
          case kDdlDropIndex: {
            auto& indexes = report.databases[db].tables[a].indexes;
            indexes.erase(
                std::remove_if(indexes.begin(), indexes.end(),
                               [&](const RecoveredIndexInfo& info) {
                                 return info.name == b;
                               }),
                indexes.end());
            break;
          }
          case kDdlCreateView: {
            report.databases[db].views.push_back({a, b});
            if (is_prepared(txn)) {
              UndoRecord u;
              u.kind = UndoRecord::Kind::kCreateView;
              u.database = db;
              u.table = a;
              prepared[txn].undo.push_back(std::move(u));
            }
            break;
          }
          case kDdlDropView: {
            auto& views = report.databases[db].views;
            views.erase(std::remove_if(views.begin(), views.end(),
                                       [&](const RecoveredViewInfo& info) {
                                         return info.name == a;
                                       }),
                        views.end());
            break;
          }
          default:
            return MalformedRecord(rec.lsn);
        }
        break;
      }
      case storage::WalRecordType::kInsert:
      case storage::WalRecordType::kUpdate:
      case storage::WalRecordType::kDelete: {
        std::string db = r.Str();
        std::string table = r.Str();
        uint64_t rowid = r.U64();
        if (!r.ok) return MalformedRecord(rec.lsn);
        if (!applied(txn)) break;
        auto it = tables_.find(db + "." + table);
        // A compensation can reference a table whose creating
        // transaction was discarded; its data was discarded with it.
        if (it == tables_.end()) break;
        TableStorage* ts = it->second.get();
        if (rec.type == storage::WalRecordType::kInsert) {
          std::string bytes = r.Str();
          if (!r.ok) return MalformedRecord(rec.lsn);
          MSQL_RETURN_IF_ERROR(ts->heap()->RedoPut(rowid, rec.lsn, bytes));
          if (is_prepared(txn)) {
            UndoRecord u;
            u.kind = UndoRecord::Kind::kInsert;
            u.database = db;
            u.table = table;
            u.row_id = rowid;
            prepared[txn].undo.push_back(std::move(u));
            prepared_locks[txn].insert(db + "." + table);
          }
        } else if (rec.type == storage::WalRecordType::kUpdate) {
          std::string before = r.Str();
          std::string after = r.Str();
          if (!r.ok) return MalformedRecord(rec.lsn);
          MSQL_RETURN_IF_ERROR(ts->heap()->RedoPut(rowid, rec.lsn, after));
          if (is_prepared(txn)) {
            UndoRecord u;
            u.kind = UndoRecord::Kind::kUpdate;
            u.database = db;
            u.table = table;
            u.row_id = rowid;
            MSQL_ASSIGN_OR_RETURN(u.before, DeserializeRow(before));
            prepared[txn].undo.push_back(std::move(u));
            prepared_locks[txn].insert(db + "." + table);
          }
        } else {
          std::string before = r.Str();
          if (!r.ok) return MalformedRecord(rec.lsn);
          MSQL_RETURN_IF_ERROR(ts->heap()->RedoDelete(rowid, rec.lsn));
          if (is_prepared(txn)) {
            UndoRecord u;
            u.kind = UndoRecord::Kind::kDelete;
            u.database = db;
            u.table = table;
            u.row_id = rowid;
            MSQL_ASSIGN_OR_RETURN(u.before, DeserializeRow(before));
            prepared[txn].undo.push_back(std::move(u));
            prepared_locks[txn].insert(db + "." + table);
          }
        }
        break;
      }
      default:
        break;
    }
  }

  for (auto& [txn, image] : prepared) {
    image.lock_keys.assign(prepared_locks[txn].begin(),
                           prepared_locks[txn].end());
    // The eventual COMMIT/ROLLBACK must reach the WAL even if the
    // recovered transaction does nothing further.
    begun_.insert(txn);
    report.prepared.push_back(std::move(image));
  }
  return report;
}

}  // namespace msql::relational
