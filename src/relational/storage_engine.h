#ifndef MSQL_RELATIONAL_STORAGE_ENGINE_H_
#define MSQL_RELATIONAL_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/index.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/txn.h"
#include "relational/value.h"
#include "storage/btree.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace msql::relational {

class StorageManager;

/// How a LocalEngine persists its databases.
struct StorageConfig {
  /// Directory holding the WAL and every heap/index file.
  std::string root_dir;
  /// Buffer pool size in 4 KiB frames — the engine's entire page-cache
  /// memory budget, shared by all files of the root.
  size_t buffer_pool_pages = 64;
};

/// Paged persistence of one table incarnation (one heap file). A
/// "drop then re-create" of the same table name gets a fresh
/// TableStorage with a distinct file (stems embed the creating DDL
/// record's LSN), so an aborted re-create can never clobber the old
/// incarnation's data. Owned by the StorageManager; the Table object
/// holds a non-owning pointer.
class TableStorage {
 public:
  TableStorage(StorageManager* mgr, std::string db, std::string table,
               std::string path);
  ~TableStorage();

  TableStorage(const TableStorage&) = delete;
  TableStorage& operator=(const TableStorage&) = delete;

  /// Opens the heap file, formatting it when empty.
  Status OpenOrCreate();

  const std::string& db() const { return db_; }
  const std::string& table() const { return table_; }
  StorageManager* manager() { return mgr_; }
  storage::HeapFile* heap() { return heap_.get(); }

  // Logged mutations: WAL record first (attributed to the manager's
  // current transaction), then the heap change on the same LSN.
  Status LoggedInsert(RowId id, const Row& row);
  Status LoggedUpdate(RowId id, const Row& before, const Row& after);
  Status LoggedDelete(RowId id, const Row& before);

  Result<Row> ReadRow(RowId id) const;

  /// Deserializing scan over live rows in rowid order.
  Status ScanLiveRows(const std::function<Status(RowId, Row)>& fn) const;

 private:
  StorageManager* mgr_;
  std::string db_;
  std::string table_;
  std::string path_;
  std::unique_ptr<storage::DiskManager> disk_;
  uint32_t file_id_ = 0;
  std::unique_ptr<storage::HeapFile> heap_;
};

/// Page-backed secondary index: a B+-tree over order-preserving key
/// encodings with the rowid appended (multimap semantics through
/// unique composite keys). Carries no LSNs — after a crash the tree is
/// rebuilt wholesale from a heap scan, so runtime maintenance never
/// needs logging.
class BtreeIndex : public Index {
 public:
  BtreeIndex(std::string name, size_t column_index, Type column_type,
             StorageManager* mgr, std::string path);
  ~BtreeIndex() override;

  /// Opens the file and resets the tree to empty (callers repopulate).
  Status OpenOrReset();

  Status Insert(const Value& key, RowId id) override;
  Status Erase(const Value& key, RowId id) override;
  Result<std::vector<RowId>> LookupIds(const Value& key) const override;
  size_t distinct_keys() const override { return distinct_; }

 private:
  /// Any composite entry whose value part equals `prefix`?
  Result<bool> AnyWithPrefix(const std::string& prefix) const;

  Type column_type_;
  StorageManager* mgr_;
  std::string path_;
  std::unique_ptr<storage::DiskManager> disk_;
  uint32_t file_id_ = 0;
  std::unique_ptr<storage::BTree> tree_;
  /// Maintained incrementally (planner selectivity input); exact.
  size_t distinct_ = 0;
};

// -- Recovery report ---------------------------------------------------------

struct RecoveredIndexInfo {
  std::string name;
  std::string column;
};

struct RecoveredTableInfo {
  TableSchema schema;
  TableStorage* storage = nullptr;
  std::vector<RecoveredIndexInfo> indexes;
};

struct RecoveredViewInfo {
  std::string name;
  std::string sql;
};

struct RecoveredDatabaseInfo {
  std::map<std::string, RecoveredTableInfo> tables;
  std::vector<RecoveredViewInfo> views;
};

/// A transaction that crashed in the 2PC prepared state. The engine
/// re-creates its session and transaction, re-acquires its exclusive
/// locks and rebuilds its undo log from WAL before-images, so the
/// coordinator can still resolve it either way.
struct PreparedTxnImage {
  TxnId txn_id = 0;
  uint64_t session_id = 0;
  std::string db;
  /// Undo records in execution order (Transaction applies in reverse).
  std::vector<UndoRecord> undo;
  /// "db.table" resources to re-lock exclusively.
  std::vector<std::string> lock_keys;
};

struct RecoveryReport {
  std::map<std::string, RecoveredDatabaseInfo> databases;
  std::vector<PreparedTxnImage> prepared;
  TxnId max_txn_id = 0;
  uint64_t max_session_id = 0;
};

// -- Storage manager ---------------------------------------------------------

/// Durability brain of one LocalEngine: owns the buffer pool, the WAL
/// and every TableStorage, and turns engine/transaction events into
/// log records. Protocol invariants (see DESIGN.md §15):
///   - WAL before data: every heap change appends its logical record
///     first and stamps the record's LSN on the heap entry.
///   - No-steal: pages dirtied by a transaction cannot reach disk until
///     the transaction's outcome record is durable (pool ReleaseTxn is
///     called only after the WAL flush in OnCommit/OnAbort/OnPrepare),
///     so recovery is pure redo — no page-level undo exists.
///   - Compensation: logical undo performed during rollback is logged
///     as transaction-0 records (always redone), which keeps a
///     prepared-then-aborted transaction's flushed pages correct.
///   - The WAL is never truncated; recovery replays it from the start,
///     which also makes it the only catalog (DDL records rebuild the
///     schema; no separate catalog file can get out of sync).
class StorageManager {
 public:
  explicit StorageManager(StorageConfig config);
  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates the root directory if needed and opens the WAL.
  Status Open();

  const StorageConfig& config() const { return config_; }
  storage::BufferManager& pool() { return pool_; }
  storage::WriteAheadLog& wal() { return wal_; }
  void SetMetrics(obs::MetricsRegistry* metrics) {
    pool_.SetMetrics(metrics);
    wal_.SetMetrics(metrics);
  }
  /// Emits "storage.checkpoint"/"storage.recover" spans (and forwards
  /// to the pool's eviction and the WAL's flush spans). Nullptr stops.
  void SetTracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    pool_.SetTracer(tracer);
    wal_.SetTracer(tracer);
  }

  // -- Transaction context (set by the engine around execution) ----------

  void SetCurrentTxn(TxnId txn, uint64_t session, std::string db);
  void ClearCurrentTxn();
  /// During rollback, mutations are compensations: logged as
  /// transaction 0 (always redone) and DDL logging is suppressed.
  /// `txn` is the transaction being undone; compensations against
  /// incarnations that transaction itself created are not logged at
  /// all (replay discards the whole incarnation, and the table name
  /// binds to an older incarnation there, so such a record would
  /// corrupt it).
  void SetUndoMode(bool on, TxnId txn = 0) {
    undo_mode_ = on;
    undo_txn_ = on ? txn : 0;
  }
  bool undo_mode() const { return undo_mode_; }
  /// Transaction that page writes are attributed to right now.
  TxnId effective_txn() const { return undo_mode_ ? 0 : current_txn_; }

  // -- Transaction outcomes ----------------------------------------------

  /// Logs COMMIT, flushes, releases the no-steal holds and applies the
  /// transaction's buffered DDL (dropped storages are destroyed).
  /// Transactions that never logged anything skip the WAL entirely.
  Status OnCommit(TxnId txn);
  /// Logs ABORT (the caller has already applied undo — with undo mode
  /// set — so compensations precede this record), flushes, releases
  /// holds and reverses the buffered DDL.
  Status OnAbort(TxnId txn);
  /// Forces BEGIN if missing, logs PREPARE, flushes and releases the
  /// no-steal holds: a prepared transaction's effects are durable and
  /// its pages may reach disk (compensations handle a later abort).
  Status OnPrepare(TxnId txn, uint64_t session, const std::string& db);

  /// WAL flush, bounded page writeback, checkpoint record. `max_pages`
  /// caps the writeback so tests can crash mid-checkpoint.
  Status Checkpoint(size_t max_pages = SIZE_MAX);

  /// Power-cut simulation: the pool and the unflushed WAL tail vanish;
  /// completed page writes survive (see DESIGN.md §15 crash model).
  void SimulateCrash();

  /// Replays the entire WAL: rebuilds the catalog from DDL records,
  /// redoes committed/prepared/compensation DML under per-entry LSN
  /// guards, and reports prepared transactions for the engine to
  /// re-instate. Indexes are not populated here — the engine rebuilds
  /// them through Table::RestoreIndex.
  Result<RecoveryReport> Recover();

  // -- Catalog hooks (called from engine / Database / Table) -------------

  Status OnCreateDatabase(const std::string& db);
  Status OnDropDatabase(const std::string& db);

  /// Logs CREATE TABLE, creates the incarnation's heap file and
  /// registers it under the current transaction's DDL delta.
  Result<TableStorage*> CreateTableStorage(const std::string& db,
                                           const TableSchema& schema);
  /// Logs DROP TABLE and detaches the storage into the transaction's
  /// delta (the file is only discarded at commit, so rollback can
  /// re-attach it). No-op in undo mode.
  Status OnDropTable(const std::string& db, const std::string& table);

  Status OnDropIndex(const std::string& db, const std::string& table,
                     const std::string& index);
  Status OnCreateView(const std::string& db, const std::string& view,
                      const std::string& sql);
  Status OnDropView(const std::string& db, const std::string& view);

  /// Builds a paged index (logging CREATE INDEX when `log` and not in
  /// undo mode) and populates it from the table's live rows.
  Result<std::unique_ptr<Index>> BuildIndex(TableStorage* storage,
                                            const std::string& index_name,
                                            const std::string& column_name,
                                            size_t column_index,
                                            Type column_type, bool log);

  // -- DML logging (called by TableStorage) ------------------------------

  Result<uint64_t> LogInsert(const std::string& db, const std::string& table,
                             RowId id, const std::string& bytes);
  Result<uint64_t> LogUpdate(const std::string& db, const std::string& table,
                             RowId id, const std::string& before,
                             const std::string& after);
  Result<uint64_t> LogDelete(const std::string& db, const std::string& table,
                             RowId id, const std::string& before);

 private:
  struct DroppedStorage {
    std::string key;
    std::unique_ptr<TableStorage> storage;
    /// The same transaction also created it — destroy on abort too.
    bool created_by_txn = false;
  };
  struct TxnDelta {
    std::vector<std::string> created;
    std::vector<DroppedStorage> dropped;
  };

  /// Lazily logs BEGIN for the current transaction (so read-only
  /// transactions never touch the WAL).
  Status EnsureBegun();
  /// True while undoing `undo_txn_` and `db.table` currently binds to
  /// an incarnation that very transaction created: the compensation
  /// must stay out of the WAL (see SetUndoMode).
  bool UndoTargetsOwnIncarnation(const std::string& db,
                                 const std::string& table) const;
  Result<uint64_t> AppendDdl(uint8_t op, const std::string& db,
                             const std::string& a, const std::string& b,
                             const std::string& c,
                             const TableSchema* schema);
  /// Applies or reverses a transaction's buffered DDL delta.
  void ApplyDelta(TxnId txn, bool commit);
  std::string HeapPath(const std::string& db, const std::string& table,
                       uint64_t lsn) const;
  std::string BtreePath(const std::string& db, const std::string& table,
                        const std::string& index, const std::string& tag) const;

  StorageConfig config_;
  storage::BufferManager pool_;
  storage::WriteAheadLog wal_;
  obs::Tracer* tracer_ = nullptr;

  TxnId current_txn_ = 0;
  uint64_t current_session_ = 0;
  std::string current_db_;
  bool undo_mode_ = false;
  TxnId undo_txn_ = 0;
  /// Transactions with a durable-or-buffered BEGIN record.
  std::set<TxnId> begun_;

  std::map<TxnId, TxnDelta> deltas_;
  /// "db.table" → live storage (current incarnation).
  std::map<std::string, std::unique_ptr<TableStorage>> tables_;
  /// Distinct file stems for unlogged index builds (undo / rebuild).
  uint64_t unlogged_counter_ = 0;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_STORAGE_ENGINE_H_
