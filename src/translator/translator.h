#ifndef MSQL_TRANSLATOR_TRANSLATOR_H_
#define MSQL_TRANSLATOR_TRANSLATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dol/ast.h"
#include "mdbs/auxiliary_directory.h"
#include "mdbs/global_data_dictionary.h"
#include "msql/ast.h"
#include "msql/decomposer.h"
#include "msql/expander.h"

namespace msql::translator {

/// How one elementary query is executed in the plan.
enum class TaskMode {
  /// NOCOMMIT: runs under 2PC and parks prepared-to-commit.
  kTwoPhase,
  /// Autocommit with a registered COMPENSATION block (§3.3).
  kCompensable,
  /// Plain autocommit; outcome does not bind the global decision
  /// (NON-VITAL subqueries).
  kAutocommit,
  /// Single vital no-2PC database without COMP, ordered last: executed
  /// only after every other vital subquery is prepared (last-resource
  /// ordering; see DESIGN.md §5).
  kLastResource,
};

/// Plan-level description of one task.
struct PlanTask {
  std::string task;            // DOL task name
  std::string database;        // real database name
  std::string effective_name;  // alias in the MSQL scope
  std::string service;
  bool vital = false;
  bool retrieval = false;
  TaskMode mode = TaskMode::kAutocommit;
};

/// A translated evaluation plan: the DOL program plus the metadata the
/// coordinator needs to interpret the run.
struct Plan {
  dol::DolProgram program;
  std::vector<PlanTask> tasks;
  /// True when the plan answers a retrieval (its task results form the
  /// multitable).
  bool retrieval = false;
  /// Task whose result is the final answer of a decomposed
  /// multidatabase join ("" otherwise).
  std::string global_task;

  /// Task metadata by task name, or nullptr.
  const PlanTask* FindTask(const std::string& task) const;
};

/// DOLSTATUS convention used by every generated plan.
struct PlanStatus {
  static constexpr int kSuccess = 0;
  static constexpr int kAborted = 1;
  static constexpr int kIncorrect = 2;
};

/// MSQL → DOL translator (the "translator" box of Figure 1).
///
/// Vital-set enforcement (§3.2-§3.3): VITAL databases with 2PC run
/// NOCOMMIT; VITAL databases without 2PC need a COMP clause (they run
/// compensable) — except that a *single* such database without COMP is
/// scheduled as the last resource; two or more make failure atomicity
/// unenforceable and the plan is refused (kRefused), matching the
/// prototype's behaviour. NON-VITAL subqueries run in autocommit and
/// never affect the decision.
class Translator {
 public:
  Translator(const mdbs::AuxiliaryDirectory* ad,
             const mdbs::GlobalDataDictionary* gdd)
      : ad_(ad), gdd_(gdd) {}

  /// Plans one multiple query from its expansion.
  Result<Plan> TranslateQuery(const lang::ExpansionResult& expansion) const;

  /// Plans a multitransaction: one expansion per member query, plus the
  /// acceptable termination states (checked in order; the branch of the
  /// first reachable one commits its members and undoes everything
  /// else; if none is reachable everything is undone, §3.4).
  Result<Plan> TranslateMultiTransaction(
      const std::vector<lang::ExpansionResult>& expansions,
      const std::vector<lang::AcceptableState>& states) const;

  /// Plans a decomposed multidatabase join: subqueries in parallel,
  /// partial results TRANSFERred to the coordinator, the modified global
  /// query evaluated there, temporary tables dropped (§4.3).
  Result<Plan> TranslateDecomposedJoin(
      const lang::Decomposition& decomposition) const;

  /// Plans a cross-database data transfer ("data transfer between
  /// databases", §2): INSERT INTO <target-db>.<table> SELECT ... FROM
  /// <source-db>.<tables>. The SELECT runs at the source; its result is
  /// APPEND-transferred into the existing target table. Requires the
  /// source FROM clause to live in exactly one database, different from
  /// the target.
  Result<Plan> TranslateDataTransfer(
      const relational::InsertStmt& insert) const;

 private:
  struct ResolvedTask {
    const lang::ElementaryQuery* query;
    std::string service;
    std::string task_name;
    std::string alias;
    TaskMode mode;
    bool supports_2pc;
  };

  /// Looks up service + capabilities and classifies the task mode.
  Result<std::vector<ResolvedTask>> Resolve(
      const std::vector<lang::ElementaryQuery>& queries,
      bool multitransaction) const;

  /// Appends OPEN statements (one per distinct alias).
  void EmitOpens(const std::vector<ResolvedTask>& tasks,
                 dol::DolProgram* program) const;

  const mdbs::AuxiliaryDirectory* ad_;
  const mdbs::GlobalDataDictionary* gdd_;
};

}  // namespace msql::translator

#endif  // MSQL_TRANSLATOR_TRANSLATOR_H_
