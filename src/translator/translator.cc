#include "translator/translator.h"

#include <set>

#include "common/string_util.h"

namespace msql::translator {

using dol::AbortStmt;
using dol::BinaryCond;
using dol::CloseStmt;
using dol::CommitStmt;
using dol::CompensateStmt;
using dol::DolCondKind;
using dol::DolCondPtr;
using dol::DolProgram;
using dol::DolStmtPtr;
using dol::DolTaskState;
using dol::IfStmt;
using dol::OpenStmt;
using dol::ParallelStmt;
using dol::SetStatusStmt;
using dol::StateTestCond;
using dol::TaskStmt;
using dol::TransferStmt;
using lang::ElementaryQuery;
using relational::StatementKind;

namespace {

DolCondPtr StateIs(const std::string& task, DolTaskState state) {
  return std::make_unique<StateTestCond>(task, state);
}

DolCondPtr AndCombine(DolCondPtr left, DolCondPtr right) {
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  return std::make_unique<BinaryCond>(DolCondKind::kAnd, std::move(left),
                                      std::move(right));
}

DolCondPtr OrCombine(DolCondPtr left, DolCondPtr right) {
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  return std::make_unique<BinaryCond>(DolCondKind::kOr, std::move(left),
                                      std::move(right));
}

/// AND over `tasks` being in `state`; nullptr when the list is empty.
DolCondPtr AllInState(const std::vector<std::string>& tasks,
                      DolTaskState state) {
  DolCondPtr cond;
  for (const auto& t : tasks) {
    cond = AndCombine(std::move(cond), StateIs(t, state));
  }
  return cond;
}

std::unique_ptr<SetStatusStmt> SetStatus(int value) {
  auto stmt = std::make_unique<SetStatusStmt>();
  stmt->value = value;
  return stmt;
}

/// IF (task=state) THEN <one statement>.
DolStmtPtr IfInState(const std::string& task, DolTaskState state,
                     DolStmtPtr then_stmt) {
  auto if_stmt = std::make_unique<IfStmt>();
  if_stmt->condition = StateIs(task, state);
  if_stmt->then_branch.push_back(std::move(then_stmt));
  return if_stmt;
}

DolStmtPtr AbortOne(const std::string& task) {
  auto stmt = std::make_unique<AbortStmt>();
  stmt->tasks.push_back(task);
  return stmt;
}

DolStmtPtr CompensateOne(const std::string& task) {
  auto stmt = std::make_unique<CompensateStmt>();
  stmt->tasks.push_back(task);
  return stmt;
}

}  // namespace

const PlanTask* Plan::FindTask(const std::string& task) const {
  for (const auto& t : tasks) {
    if (EqualsIgnoreCase(t.task, task)) return &t;
  }
  return nullptr;
}

Result<std::vector<Translator::ResolvedTask>> Translator::Resolve(
    const std::vector<ElementaryQuery>& queries,
    bool multitransaction) const {
  std::vector<ResolvedTask> out;
  std::vector<const ResolvedTask*> last_resource;
  for (const auto& eq : queries) {
    MSQL_ASSIGN_OR_RETURN(const mdbs::GddDatabase* db,
                          gdd_->GetDatabase(eq.database));
    MSQL_ASSIGN_OR_RETURN(const mdbs::ServiceDescriptor* service,
                          ad_->GetService(db->service));
    ResolvedTask task;
    task.query = &eq;
    task.service = service->name;
    task.alias = eq.effective_name;
    task.task_name = "t_" + eq.effective_name;

    // A DDL verb that auto-commits on this service disables 2PC for this
    // particular statement (the per-verb modes recorded by INCORPORATE).
    bool verb_autocommits = false;
    switch (eq.statement->kind()) {
      case StatementKind::kCreateTable:
        verb_autocommits = service->ddl_modes.create_autocommits;
        break;
      case StatementKind::kInsert:
        verb_autocommits = service->ddl_modes.insert_autocommits;
        break;
      case StatementKind::kDropTable:
        verb_autocommits = service->ddl_modes.drop_autocommits;
        break;
      default:
        break;
    }
    task.supports_2pc =
        service->SupportsTwoPhaseCommit() && !verb_autocommits;

    bool retrieval = eq.statement->kind() == StatementKind::kSelect;
    bool has_comp = eq.compensation != nullptr;
    if (retrieval) {
      task.mode = TaskMode::kAutocommit;
    } else if (multitransaction) {
      // Every subquery of a multitransaction binds the decision.
      if (task.supports_2pc) {
        task.mode = TaskMode::kTwoPhase;
      } else if (has_comp) {
        task.mode = TaskMode::kCompensable;
      } else {
        return Status::Refused(
            "database '" + eq.effective_name +
            "' does not support 2PC and no COMP clause is given; "
            "compensation must be specified for all subqueries on such "
            "databases in a multitransaction");
      }
    } else if (!eq.vital) {
      task.mode = TaskMode::kAutocommit;
    } else if (task.supports_2pc) {
      task.mode = TaskMode::kTwoPhase;
    } else if (has_comp) {
      task.mode = TaskMode::kCompensable;
    } else {
      task.mode = TaskMode::kLastResource;
    }
    out.push_back(std::move(task));
  }
  for (const auto& t : out) {
    if (t.mode == TaskMode::kLastResource) last_resource.push_back(&t);
  }
  if (last_resource.size() > 1) {
    std::string names;
    for (const auto* t : last_resource) {
      if (!names.empty()) names += ", ";
      names += t->alias;
    }
    return Status::Refused(
        "vital set is not enforceable: databases {" + names +
        "} neither support 2PC nor provide COMP clauses; failure "
        "atomicity with respect to the vital set cannot be guaranteed");
  }
  return out;
}

void Translator::EmitOpens(const std::vector<ResolvedTask>& tasks,
                           DolProgram* program) const {
  std::set<std::string> opened;
  for (const auto& t : tasks) {
    if (!opened.insert(t.alias).second) continue;
    auto open = std::make_unique<OpenStmt>();
    open->database = t.query->database;
    open->service = t.service;
    open->alias = t.alias;
    program->statements.push_back(std::move(open));
  }
}

Result<Plan> Translator::TranslateQuery(
    const lang::ExpansionResult& expansion) const {
  if (expansion.queries.empty()) {
    return Status::InvalidArgument(
        "multiple query is pertinent on no database");
  }
  MSQL_ASSIGN_OR_RETURN(auto resolved,
                        Resolve(expansion.queries, /*multitransaction=*/false));

  Plan plan;
  bool retrieval =
      expansion.queries[0].statement->kind() == StatementKind::kSelect;
  plan.retrieval = retrieval;

  EmitOpens(resolved, &plan.program);

  // Wave 1: every task except the last-resource one, in parallel.
  auto wave = std::make_unique<ParallelStmt>();
  const ResolvedTask* last_resource = nullptr;
  std::vector<std::string> two_phase_tasks;
  std::vector<std::string> compensable_tasks;
  std::vector<std::string> vital_retrievals;
  for (const auto& t : resolved) {
    if (t.mode == TaskMode::kLastResource) {
      last_resource = &t;
      continue;
    }
    auto task = std::make_unique<TaskStmt>();
    task->name = t.task_name;
    task->nocommit = t.mode == TaskMode::kTwoPhase;
    task->target_alias = t.alias;
    task->body_sql = t.query->statement->ToSql();
    if (t.query->compensation != nullptr) {
      task->compensation_sql = t.query->compensation->ToSql();
    }
    wave->body.push_back(std::move(task));
    if (t.mode == TaskMode::kTwoPhase) two_phase_tasks.push_back(t.task_name);
    if (t.mode == TaskMode::kCompensable) {
      compensable_tasks.push_back(t.task_name);
    }
    if (retrieval && t.query->vital) vital_retrievals.push_back(t.task_name);
  }
  plan.program.statements.push_back(std::move(wave));

  if (retrieval) {
    // Retrieval decision: success iff every vital retrieval committed.
    DolCondPtr cond = AllInState(vital_retrievals, DolTaskState::kCommitted);
    if (cond == nullptr) {
      plan.program.statements.push_back(SetStatus(PlanStatus::kSuccess));
    } else {
      auto decide = std::make_unique<IfStmt>();
      decide->condition = std::move(cond);
      decide->then_branch.push_back(SetStatus(PlanStatus::kSuccess));
      decide->else_branch.push_back(SetStatus(PlanStatus::kAborted));
      plan.program.statements.push_back(std::move(decide));
    }
  } else {
    // Readiness of the regular vital subqueries.
    DolCondPtr ready =
        AndCombine(AllInState(two_phase_tasks, DolTaskState::kPrepared),
                   AllInState(compensable_tasks, DolTaskState::kCommitted));

    // Wave 2: the last-resource task runs only when everything else is
    // ready, so its (unilateral) commit can act as the global decision.
    if (last_resource != nullptr) {
      auto task = std::make_unique<TaskStmt>();
      task->name = last_resource->task_name;
      task->nocommit = false;
      task->target_alias = last_resource->alias;
      task->body_sql = last_resource->query->statement->ToSql();
      if (ready == nullptr) {
        plan.program.statements.push_back(std::move(task));
      } else {
        auto guard = std::make_unique<IfStmt>();
        guard->condition = ready->Clone();
        guard->then_branch.push_back(std::move(task));
        plan.program.statements.push_back(std::move(guard));
      }
    }

    DolCondPtr success = ready == nullptr ? nullptr : ready->Clone();
    if (last_resource != nullptr) {
      success =
          AndCombine(std::move(success),
                     StateIs(last_resource->task_name,
                             DolTaskState::kCommitted));
    }

    // Success branch: commit the prepared subqueries, then verify that
    // every one of them actually committed (a failed COMMIT after the
    // decision leaves the execution "incorrect").
    std::vector<DolStmtPtr> then_branch;
    if (!two_phase_tasks.empty()) {
      auto commit = std::make_unique<CommitStmt>();
      commit->tasks = two_phase_tasks;
      then_branch.push_back(std::move(commit));
      auto verify = std::make_unique<IfStmt>();
      verify->condition =
          AllInState(two_phase_tasks, DolTaskState::kCommitted);
      verify->then_branch.push_back(SetStatus(PlanStatus::kSuccess));
      // A commit the engine could not resolve (lost-request exhausted
      // its re-sends) leaves its task known-prepared: roll those back
      // before reporting the execution incorrect so no locks leak.
      for (const auto& t : two_phase_tasks) {
        verify->else_branch.push_back(
            IfInState(t, DolTaskState::kPrepared, AbortOne(t)));
      }
      verify->else_branch.push_back(SetStatus(PlanStatus::kIncorrect));
      then_branch.push_back(std::move(verify));
    } else {
      then_branch.push_back(SetStatus(PlanStatus::kSuccess));
    }

    // Failure branch: roll back what is prepared, compensate what has
    // committed, report abort.
    std::vector<DolStmtPtr> else_branch;
    for (const auto& t : two_phase_tasks) {
      else_branch.push_back(
          IfInState(t, DolTaskState::kPrepared, AbortOne(t)));
    }
    for (const auto& t : compensable_tasks) {
      else_branch.push_back(
          IfInState(t, DolTaskState::kCommitted, CompensateOne(t)));
    }
    else_branch.push_back(SetStatus(PlanStatus::kAborted));

    if (success == nullptr) {
      // No vital subqueries at all: always successful (§3.2.1).
      for (auto& s : then_branch) {
        plan.program.statements.push_back(std::move(s));
      }
    } else {
      auto decide = std::make_unique<IfStmt>();
      decide->condition = std::move(success);
      decide->then_branch = std::move(then_branch);
      decide->else_branch = std::move(else_branch);
      plan.program.statements.push_back(std::move(decide));
    }
  }

  // CLOSE all channels.
  auto close = std::make_unique<CloseStmt>();
  {
    std::set<std::string> seen;
    for (const auto& t : resolved) {
      if (seen.insert(t.alias).second) close->aliases.push_back(t.alias);
    }
  }
  plan.program.statements.push_back(std::move(close));

  for (const auto& t : resolved) {
    PlanTask info;
    info.task = t.task_name;
    info.database = t.query->database;
    info.effective_name = t.alias;
    info.service = t.service;
    info.vital = t.query->vital;
    info.retrieval = retrieval;
    info.mode = t.mode;
    plan.tasks.push_back(std::move(info));
  }
  return plan;
}

Result<Plan> Translator::TranslateMultiTransaction(
    const std::vector<lang::ExpansionResult>& expansions,
    const std::vector<lang::AcceptableState>& states) const {
  if (expansions.empty()) {
    return Status::InvalidArgument("multitransaction has no queries");
  }
  // Resolve per query; enforce federation-unique effective names.
  std::vector<std::vector<ResolvedTask>> waves;
  std::set<std::string> names;
  for (const auto& expansion : expansions) {
    MSQL_ASSIGN_OR_RETURN(
        auto resolved, Resolve(expansion.queries, /*multitransaction=*/true));
    for (const auto& t : resolved) {
      if (!names.insert(t.alias).second) {
        return Status::InvalidArgument(
            "database or alias '" + t.alias +
            "' is used by two queries of the multitransaction; aliases "
            "must make the names unique");
      }
    }
    waves.push_back(std::move(resolved));
  }

  Plan plan;
  plan.retrieval = false;
  std::map<std::string, const ResolvedTask*> by_alias;
  std::vector<const ResolvedTask*> all_tasks;
  for (const auto& wave : waves) {
    for (const auto& t : wave) {
      by_alias[t.alias] = &t;
      all_tasks.push_back(&t);
    }
  }
  {
    // OPEN everything up front.
    std::vector<ResolvedTask> flattened;
    for (const auto& wave : waves) {
      for (const auto& t : wave) {
        ResolvedTask copy = t;
        flattened.push_back(std::move(copy));
      }
    }
    EmitOpens(flattened, &plan.program);
  }

  // One parallel wave per member query, in statement order.
  for (const auto& wave : waves) {
    auto par = std::make_unique<ParallelStmt>();
    for (const auto& t : wave) {
      auto task = std::make_unique<TaskStmt>();
      task->name = t.task_name;
      task->nocommit = t.mode == TaskMode::kTwoPhase;
      task->target_alias = t.alias;
      task->body_sql = t.query->statement->ToSql();
      if (t.query->compensation != nullptr) {
        task->compensation_sql = t.query->compensation->ToSql();
      }
      par->body.push_back(std::move(task));
    }
    plan.program.statements.push_back(std::move(par));
  }

  // Cleanup statements for a set of non-member tasks.
  auto emit_cleanup = [](const std::vector<const ResolvedTask*>& tasks,
                         const std::set<std::string>& members,
                         std::vector<DolStmtPtr>* out) {
    for (const auto* t : tasks) {
      if (members.count(t->alias) > 0) continue;
      if (t->mode == TaskMode::kTwoPhase) {
        out->push_back(IfInState(t->task_name, DolTaskState::kPrepared,
                                 AbortOne(t->task_name)));
      } else if (t->mode == TaskMode::kCompensable) {
        out->push_back(IfInState(t->task_name, DolTaskState::kCommitted,
                                 CompensateOne(t->task_name)));
      }
      // Autocommit retrievals have no effects to undo.
    }
  };

  // Build the decision cascade from the last state inward.
  std::vector<DolStmtPtr> fallback;
  emit_cleanup(all_tasks, /*members=*/{}, &fallback);
  fallback.push_back(SetStatus(PlanStatus::kAborted));

  for (auto it = states.rbegin(); it != states.rend(); ++it) {
    std::set<std::string> members;
    DolCondPtr cond;
    bool reachable = true;
    for (const auto& db : it->databases) {
      std::string key = ToLower(db);
      auto found = by_alias.find(key);
      if (found == by_alias.end()) {
        if (names.count(key) == 0) {
          return Status::InvalidArgument(
              "acceptable state names unknown database or alias '" + db +
              "'");
        }
        reachable = false;  // database had no pertinent subquery
        break;
      }
      members.insert(key);
      const ResolvedTask* t = found->second;
      cond = AndCombine(
          std::move(cond),
          OrCombine(StateIs(t->task_name, DolTaskState::kPrepared),
                    StateIs(t->task_name, DolTaskState::kCommitted)));
    }
    if (!reachable) continue;

    std::vector<DolStmtPtr> branch;
    // Commit the prepared members.
    std::vector<std::string> to_commit;
    for (const auto& m : members) {
      const ResolvedTask* t = by_alias.at(m);
      if (t->mode == TaskMode::kTwoPhase) to_commit.push_back(t->task_name);
    }
    if (!to_commit.empty()) {
      auto commit = std::make_unique<CommitStmt>();
      commit->tasks = to_commit;
      branch.push_back(std::move(commit));
    }
    // Undo everything outside the state.
    emit_cleanup(all_tasks, members, &branch);
    if (!to_commit.empty()) {
      auto verify = std::make_unique<IfStmt>();
      verify->condition = AllInState(to_commit, DolTaskState::kCommitted);
      verify->then_branch.push_back(SetStatus(PlanStatus::kSuccess));
      for (const auto& t : to_commit) {
        verify->else_branch.push_back(
            IfInState(t, DolTaskState::kPrepared, AbortOne(t)));
      }
      verify->else_branch.push_back(SetStatus(PlanStatus::kIncorrect));
      branch.push_back(std::move(verify));
    } else {
      branch.push_back(SetStatus(PlanStatus::kSuccess));
    }

    auto decide = std::make_unique<IfStmt>();
    decide->condition = std::move(cond);
    decide->then_branch = std::move(branch);
    decide->else_branch = std::move(fallback);
    fallback.clear();
    fallback.push_back(std::move(decide));
  }
  for (auto& s : fallback) plan.program.statements.push_back(std::move(s));

  auto close = std::make_unique<CloseStmt>();
  for (const auto* t : all_tasks) close->aliases.push_back(t->alias);
  plan.program.statements.push_back(std::move(close));

  for (const auto* t : all_tasks) {
    PlanTask info;
    info.task = t->task_name;
    info.database = t->query->database;
    info.effective_name = t->alias;
    info.service = t->service;
    info.vital = t->query->vital;
    info.retrieval = t->query->statement->kind() == StatementKind::kSelect;
    info.mode = t->mode;
    plan.tasks.push_back(std::move(info));
  }
  return plan;
}

Result<Plan> Translator::TranslateDecomposedJoin(
    const lang::Decomposition& decomposition) const {
  Plan plan;
  plan.retrieval = true;
  plan.global_task = "qglobal";

  // Channel per database.
  std::vector<std::string> subquery_tasks;
  for (const auto& sub : decomposition.subqueries) {
    MSQL_ASSIGN_OR_RETURN(const mdbs::GddDatabase* db,
                          gdd_->GetDatabase(sub.database));
    auto open = std::make_unique<OpenStmt>();
    open->database = sub.database;
    open->service = db->service;
    open->alias = sub.database;
    plan.program.statements.push_back(std::move(open));
  }

  // Parallel wave: ship-whole subqueries run directly; a semi-join
  // subquery is deferred — the wave instead runs its key-extraction
  // SELECT DISTINCT at the provider (coordinator) database.
  auto wave = std::make_unique<ParallelStmt>();
  for (const auto& sub : decomposition.subqueries) {
    if (sub.semi_join) {
      auto keys = std::make_unique<TaskStmt>();
      keys->name = "k_" + sub.database;
      keys->target_alias = sub.key_provider_db;
      keys->body_sql = sub.key_select->ToSql();
      wave->body.push_back(std::move(keys));
      subquery_tasks.push_back("t_" + sub.database);
      continue;
    }
    auto task = std::make_unique<TaskStmt>();
    task->name = "t_" + sub.database;
    task->target_alias = sub.database;
    task->body_sql = sub.select->ToSql();
    subquery_tasks.push_back(task->name);
    wave->body.push_back(std::move(task));
  }
  plan.program.statements.push_back(std::move(wave));

  // Semi-join reduction phase: once a key extraction commits, install
  // the keys at the remote site, run the reduced subquery there, then
  // drop the key table. If the extraction failed, t_<db> never runs and
  // the decide condition below resolves to ABORTED.
  for (const auto& sub : decomposition.subqueries) {
    if (!sub.semi_join) continue;
    auto guard = std::make_unique<IfStmt>();
    guard->condition =
        StateIs("k_" + sub.database, DolTaskState::kCommitted);
    auto transfer = std::make_unique<TransferStmt>();
    transfer->task = "k_" + sub.database;
    transfer->target_alias = sub.database;
    transfer->table = sub.key_table;
    for (const auto& col : sub.key_schema.columns()) {
      TransferStmt::ColumnSpec spec;
      spec.name = col.name;
      spec.type_name = std::string(TypeName(col.type));
      spec.width = col.width;
      transfer->columns.push_back(std::move(spec));
    }
    guard->then_branch.push_back(std::move(transfer));
    auto task = std::make_unique<TaskStmt>();
    task->name = "t_" + sub.database;
    task->target_alias = sub.database;
    task->body_sql = sub.select->ToSql();
    guard->then_branch.push_back(std::move(task));
    auto drop_keys = std::make_unique<TaskStmt>();
    drop_keys->name = "dropk_" + sub.database;
    drop_keys->target_alias = sub.database;
    drop_keys->body_sql = "DROP TABLE " + sub.key_table;
    guard->then_branch.push_back(std::move(drop_keys));
    plan.program.statements.push_back(std::move(guard));
  }

  // Collection phase at the coordinator, guarded on all partials done.
  std::vector<DolStmtPtr> collect;
  for (const auto& sub : decomposition.subqueries) {
    auto transfer = std::make_unique<TransferStmt>();
    transfer->task = "t_" + sub.database;
    transfer->target_alias = decomposition.coordinator;
    transfer->table = sub.temp_table;
    for (const auto& col : sub.temp_schema.columns()) {
      TransferStmt::ColumnSpec spec;
      spec.name = col.name;
      spec.type_name = std::string(TypeName(col.type));
      spec.width = col.width;
      transfer->columns.push_back(std::move(spec));
    }
    collect.push_back(std::move(transfer));
  }
  {
    auto global = std::make_unique<TaskStmt>();
    global->name = plan.global_task;
    global->target_alias = decomposition.coordinator;
    global->body_sql = decomposition.global_query->ToSql();
    collect.push_back(std::move(global));
  }
  for (const auto& sub : decomposition.subqueries) {
    auto drop = std::make_unique<TaskStmt>();
    drop->name = "drop_" + sub.database;
    drop->target_alias = decomposition.coordinator;
    drop->body_sql = "DROP TABLE " + sub.temp_table;
    collect.push_back(std::move(drop));
  }
  {
    auto verify = std::make_unique<IfStmt>();
    verify->condition = StateIs(plan.global_task, DolTaskState::kCommitted);
    verify->then_branch.push_back(SetStatus(PlanStatus::kSuccess));
    verify->else_branch.push_back(SetStatus(PlanStatus::kAborted));
    collect.push_back(std::move(verify));
  }

  auto decide = std::make_unique<IfStmt>();
  decide->condition = AllInState(subquery_tasks, DolTaskState::kCommitted);
  decide->then_branch = std::move(collect);
  decide->else_branch.push_back(SetStatus(PlanStatus::kAborted));
  plan.program.statements.push_back(std::move(decide));

  auto close = std::make_unique<CloseStmt>();
  for (const auto& sub : decomposition.subqueries) {
    close->aliases.push_back(sub.database);
  }
  plan.program.statements.push_back(std::move(close));

  for (const auto& sub : decomposition.subqueries) {
    if (sub.semi_join) {
      PlanTask keys;
      keys.task = "k_" + sub.database;
      keys.database = sub.key_provider_db;
      keys.effective_name = sub.key_provider_db;
      keys.retrieval = true;
      keys.mode = TaskMode::kAutocommit;
      plan.tasks.push_back(std::move(keys));
    }
    PlanTask info;
    info.task = "t_" + sub.database;
    info.database = sub.database;
    info.effective_name = sub.database;
    info.retrieval = true;
    info.mode = TaskMode::kAutocommit;
    plan.tasks.push_back(std::move(info));
  }
  return plan;
}

Result<Plan> Translator::TranslateDataTransfer(
    const relational::InsertStmt& insert) const {
  if (insert.select_source == nullptr) {
    return Status::InvalidArgument(
        "data transfer requires an INSERT ... SELECT form");
  }
  std::string target_db = ToLower(insert.table.database);
  if (target_db.empty()) {
    return Status::InvalidArgument(
        "data transfer requires a database-qualified INSERT target");
  }
  // The source select must live in exactly one database.
  std::string source_db;
  for (const auto& ref : insert.select_source->from) {
    std::string db = ToLower(ref.database);
    if (db.empty()) {
      return Status::InvalidArgument(
          "data-transfer SELECT requires database-qualified tables");
    }
    if (source_db.empty()) {
      source_db = db;
    } else if (source_db != db) {
      return Status::InvalidArgument(
          "data-transfer SELECT must read a single source database "
          "(decompose the join into a temporary table first)");
    }
  }
  if (source_db.empty()) {
    return Status::InvalidArgument("data-transfer SELECT has no FROM");
  }
  if (source_db == target_db) {
    return Status::InvalidArgument(
        "source and target database are the same; run a local "
        "INSERT ... SELECT instead");
  }
  // Target table (and named columns) must be known to the GDD.
  MSQL_ASSIGN_OR_RETURN(const relational::TableSchema* target_schema,
                        gdd_->GetTable(target_db, insert.table.table));
  for (const auto& col : insert.columns) {
    if (!target_schema->HasColumn(col)) {
      return Status::NotFound("column '" + col + "' not in target table '" +
                              target_db + "." + insert.table.table + "'");
    }
  }
  MSQL_ASSIGN_OR_RETURN(const mdbs::GddDatabase* source_entry,
                        gdd_->GetDatabase(source_db));
  MSQL_ASSIGN_OR_RETURN(const mdbs::GddDatabase* target_entry,
                        gdd_->GetDatabase(target_db));

  Plan plan;
  plan.retrieval = false;
  {
    auto open_src = std::make_unique<OpenStmt>();
    open_src->database = source_db;
    open_src->service = source_entry->service;
    open_src->alias = source_db;
    plan.program.statements.push_back(std::move(open_src));
    auto open_dst = std::make_unique<OpenStmt>();
    open_dst->database = target_db;
    open_dst->service = target_entry->service;
    open_dst->alias = target_db;
    plan.program.statements.push_back(std::move(open_dst));
  }
  {
    // The select runs locally at the source: strip the db qualifiers.
    auto local_select = insert.select_source->CloneSelect();
    for (auto& ref : local_select->from) ref.database.clear();
    auto task = std::make_unique<TaskStmt>();
    task->name = "t_extract";
    task->target_alias = source_db;
    task->body_sql = local_select->ToSql();
    plan.program.statements.push_back(std::move(task));
  }
  {
    auto transfer = std::make_unique<TransferStmt>();
    transfer->task = "t_extract";
    transfer->target_alias = target_db;
    transfer->table = ToLower(insert.table.table);
    transfer->append = true;
    for (const auto& col : insert.columns) {
      TransferStmt::ColumnSpec spec;
      spec.name = col;
      transfer->columns.push_back(std::move(spec));
    }
    auto guard = std::make_unique<IfStmt>();
    guard->condition = StateIs("t_extract", DolTaskState::kCommitted);
    guard->then_branch.push_back(std::move(transfer));
    guard->then_branch.push_back(SetStatus(PlanStatus::kSuccess));
    guard->else_branch.push_back(SetStatus(PlanStatus::kAborted));
    plan.program.statements.push_back(std::move(guard));
  }
  {
    auto close = std::make_unique<CloseStmt>();
    close->aliases = {source_db, target_db};
    plan.program.statements.push_back(std::move(close));
  }
  PlanTask info;
  info.task = "t_extract";
  info.database = source_db;
  info.effective_name = source_db;
  info.service = source_entry->service;
  info.retrieval = true;
  info.mode = TaskMode::kAutocommit;
  plan.tasks.push_back(std::move(info));
  return plan;
}

}  // namespace msql::translator
