#ifndef MSQL_COMMON_STRING_UTIL_H_
#define MSQL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace msql {

/// ASCII lower-casing (SQL identifiers are case-insensitive in this
/// implementation; they are canonicalized to lower case on entry).
std::string ToLower(std::string_view s);

/// ASCII upper-casing (used by keyword printers).
std::string ToUpper(std::string_view s);

/// True if the two strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// SQL LIKE-style match where '%' matches any run of characters.
///
/// This is the wildcard used by MSQL *implicit semantic variables*
/// (`%code`, `flight%`, `rate%`): '%' stands for any sequence of zero or
/// more characters; all other characters match themselves
/// case-insensitively. '_' is NOT special (the paper only defines '%').
bool WildcardMatch(std::string_view pattern, std::string_view text);

/// True if `s` contains the MSQL multiple-identifier wildcard '%'.
bool HasWildcard(std::string_view s);

}  // namespace msql

#endif  // MSQL_COMMON_STRING_UTIL_H_
