#ifndef MSQL_COMMON_STATUS_H_
#define MSQL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace msql {

/// Machine-readable category of a Status.
///
/// The codes mirror the failure classes the paper distinguishes: syntax
/// problems in MSQL/DOL text, catalog (AD/GDD) lookup failures, local
/// execution errors reported by an LDBMS, transaction-protocol violations,
/// and the global `kRefused` condition raised when a query's vital set is
/// not executable (two or more VITAL no-2PC databases without COMP, §3.3).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input, bad parameters
  kParseError,        // lexer/parser rejection of MSQL, SQL or DOL text
  kNotFound,          // missing database/table/column/service
  kAlreadyExists,     // duplicate creation
  kExecutionError,    // local engine failed to run a statement
  kTransactionError,  // protocol violation (commit w/o prepare, etc.)
  kRefused,           // plan-time refusal: vital set not enforceable
  kAborted,           // operation rolled back (deadlock, injected failure)
  kUnavailable,       // site or service unreachable
  kBusy,              // would block on a lock; retry once the holder ends
  kInternal,          // invariant breakage inside the MDBS itself
  kCorrupted,         // engine state damaged (failed rollback, bad page)
};

/// Human-readable name of a StatusCode ("OK", "ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: a code plus an optional message.
///
/// This is the only error channel in the library; no exceptions cross
/// public API boundaries. Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status TransactionError(std::string msg) {
    return Status(StatusCode::kTransactionError, std::move(msg));
  }
  static Status Refused(std::string msg) {
    return Status(StatusCode::kRefused, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corrupted(std::string msg) {
    return Status(StatusCode::kCorrupted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace msql

/// Propagates a non-OK Status to the caller.
#define MSQL_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::msql::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // MSQL_COMMON_STATUS_H_
