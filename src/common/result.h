#ifndef MSQL_COMMON_RESULT_H_
#define MSQL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace msql {

/// Either a value of type T or a non-OK Status (Arrow/absl idiom).
///
/// A Result is never both: constructing from an OK status is an internal
/// error. Access to the value when `!ok()` asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value — lets functions `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status — lets functions `return status;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// OK when a value is held, the stored error otherwise.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

}  // namespace msql

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds
/// the value to `lhs`. `lhs` may include a declaration, e.g.
/// MSQL_ASSIGN_OR_RETURN(auto plan, translator.Translate(q));
#define MSQL_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  MSQL_ASSIGN_OR_RETURN_IMPL_(                                 \
      MSQL_RESULT_CONCAT_(_msql_result_, __LINE__), lhs, rexpr)

#define MSQL_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define MSQL_RESULT_CONCAT_(a, b) MSQL_RESULT_CONCAT_IMPL_(a, b)
#define MSQL_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // MSQL_COMMON_RESULT_H_
