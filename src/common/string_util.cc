#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace msql {

namespace {
char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
char UpperChar(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), UpperChar);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer match with backtracking over the last '%'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos;  // position of last '%' in pattern
  size_t star_t = 0;                     // text position when '%' was seen
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '%' ||
         LowerChar(pattern[p]) == LowerChar(text[t]))) {
      if (pattern[p] == '%') {
        star = p;
        star_t = t;
        ++p;
      } else {
        ++p;
        ++t;
      }
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool HasWildcard(std::string_view s) {
  return s.find('%') != std::string_view::npos;
}

}  // namespace msql
