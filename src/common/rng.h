#ifndef MSQL_COMMON_RNG_H_
#define MSQL_COMMON_RNG_H_

#include <cstdint>

namespace msql {

/// Deterministic 64-bit PRNG (SplitMix64) for workload generation and
/// failure injection. Deterministic seeds keep tests and benches
/// reproducible across platforms — std::mt19937 distributions are not
/// guaranteed identical across standard libraries, so we avoid them.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace msql

#endif  // MSQL_COMMON_RNG_H_
