#include "common/status.h"

namespace msql {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kTransactionError:
      return "TransactionError";
    case StatusCode::kRefused:
      return "Refused";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorrupted:
      return "Corrupted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace msql
