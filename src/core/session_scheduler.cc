#include "core/session_scheduler.h"

#include <algorithm>
#include <functional>
#include <set>

namespace msql::core {

FederationServer::FederationServer(MultidatabaseSystem* system,
                                   ServerConfig config)
    : system_(system), config_(config) {}

uint64_t FederationServer::Submit(std::string msql_text) {
  auto session = std::make_unique<Session>();
  session->id = sessions_.size() + 1;
  session->text = std::move(msql_text);
  session->result.session_id = session->id;
  sessions_.push_back(std::move(session));
  return sessions_.back()->id;
}

Result<std::vector<SessionResult>> FederationServer::RunAll() {
  netsim::Environment& env = system_->environment();
  // Local engines must wait on lock conflicts (reporting kBusy + the
  // blockers) instead of aborting, for the duration of the batch.
  using WaitPolicy = relational::LockManager::WaitPolicy;
  std::vector<std::pair<relational::LockManager*, WaitPolicy>> saved;
  for (const auto& name : env.ServiceNames()) {
    auto lam = env.GetLam(name);
    if (!lam.ok()) continue;
    relational::LockManager& locks = (*lam)->engine()->lock_manager();
    saved.emplace_back(&locks, locks.wait_policy());
    locks.set_wait_policy(WaitPolicy::kWait);
  }
  auto results = RunBatch();
  for (auto& [locks, policy] : saved) locks->set_wait_policy(policy);
  return results;
}

Result<std::vector<SessionResult>> FederationServer::RunBatch() {
  clock_ = 0;
  while (true) {
    AdmitEligible();
    // Pick the ready session with the earliest effective call time
    // (ties go to the lowest session id): calls reach the netsim in
    // global time order, which keeps per-service admission queues FIFO.
    Session* next = nullptr;
    int64_t next_at = 0;
    bool any_parked = false;
    // Sessions are admitted in order and mostly finish in order, so the
    // live window is [watermark_, next_unadmitted_): everything below
    // the watermark is done, everything at or above next_unadmitted_ is
    // still waiting for admission. Keeps the per-step scan proportional
    // to the admitted set, not the whole batch.
    while (watermark_ < sessions_.size() &&
           sessions_[watermark_]->state == SessionState::kDone) {
      ++watermark_;
    }
    for (size_t i = watermark_; i < next_unadmitted_; ++i) {
      Session& s = *sessions_[i];
      if (s.state == SessionState::kParked) any_parked = true;
      if (s.state != SessionState::kReady) continue;
      const dol::DolEngine::PendingRpc* rpc = s.engine->pending();
      if (config_.conflict_aware && s.summary != nullptr) {
        ObservePhase(s, *rpc);
      }
      int64_t at = std::max(rpc->at, s.resume_at);
      if (next == nullptr || at < next_at) {
        next = &s;
        next_at = at;
      }
    }
    if (next == nullptr) {
      if (any_parked) {
        // Nothing runnable: every admitted session is blocked on locks.
        BreakStall();
        continue;
      }
      // Admit more — including deferred sessions, which can always run
      // once the sessions they were held against have finished.
      if (next_unadmitted_ < sessions_.size() || !deferred_.empty()) {
        continue;
      }
      break;  // batch complete
    }
    clock_ = std::max(clock_, next_at);
    Step(*next, next_at);
    // Lock-wait timeout sweep on the advanced clock.
    if (config_.lock_wait_timeout_micros > 0) {
      for (size_t i = watermark_; i < next_unadmitted_; ++i) {
        Session& s = *sessions_[i];
        if (s.state == SessionState::kParked &&
            clock_ - s.parked_since >= config_.lock_wait_timeout_micros) {
          AbortParked(s,
                      "lock wait timeout: blocked for " +
                          std::to_string(clock_ - s.parked_since) +
                          "us at service '" + s.parked_service + "'",
                      /*deadlock=*/false);
        }
      }
    }
    if (monitor_ != nullptr && monitor_->NeedsSample(clock_)) {
      SampleMonitor();
    }
  }
  shed_active_ = false;
  std::vector<SessionResult> results;
  results.reserve(sessions_.size());
  for (auto& entry : sessions_) results.push_back(std::move(entry->result));
  sessions_.clear();
  local_owner_.clear();
  next_unadmitted_ = 0;
  watermark_ = 0;
  active_ = 0;
  deferred_.clear();
  graph_ = analysis::ConflictGraph();
  graph_dirty_ = false;
  return results;
}

void FederationServer::AdmitEligible() {
  // Adaptive shedding narrows admission to one-at-a-time: the active
  // set drains, but one session always runs so the batch keeps making
  // progress and every shed session still terminates.
  const bool shed = ShedActive();
  auto may_admit = [&]() {
    if (shed) return active_ < 1;
    return config_.max_admitted <= 0 || active_ < config_.max_admitted;
  };
  // Deferred sessions first (they were submitted earlier): once a risky
  // peer finishes, the deferral reason may be gone. Only worth
  // re-checking when the admitted set changed.
  if (graph_dirty_ && !deferred_.empty()) {
    std::vector<size_t> still_deferred;
    for (size_t index : deferred_) {
      Session& s = *sessions_[index];
      if (!may_admit()) {
        still_deferred.push_back(index);
        continue;
      }
      std::vector<uint64_t> against;
      if (graph_.WouldRiskDeadlock(*s.summary, &against)) {
        s.deferred_against.insert(against.begin(), against.end());
        ++s.result.admission_deferrals;
        still_deferred.push_back(index);
        continue;
      }
      Admit(s);
    }
    deferred_ = std::move(still_deferred);
    graph_dirty_ = false;
  }
  // Fill the remaining slots in submit order.
  while (next_unadmitted_ < sessions_.size() && may_admit()) {
    Session& s = *sessions_[next_unadmitted_];
    Consider(s);
    if (config_.conflict_aware && s.summary != nullptr) {
      std::vector<uint64_t> against;
      if (graph_.WouldRiskDeadlock(*s.summary, &against)) {
        s.deferred_against.insert(against.begin(), against.end());
        ++s.result.admission_deferrals;
        deferred_.push_back(next_unadmitted_++);
        continue;
      }
    }
    ++next_unadmitted_;
    Admit(s);
  }
}

void FederationServer::ObservePhase(Session& s,
                                    const dol::DolEngine::PendingRpc& rpc) {
  using netsim::LamRequestType;
  bool acquiring = true;
  switch (rpc.request.type) {
    case LamRequestType::kPrepare:
    case LamRequestType::kCommit:
    case LamRequestType::kRollback:
    case LamRequestType::kQueryTxnState:
    case LamRequestType::kCloseSession:
      acquiring = false;
      break;
    default:
      // OPEN/BEGIN/EXECUTE (and the introspection verbs, conservatively)
      // may still take new table locks.
      break;
  }
  if (!acquiring && !s.quiesced) {
    s.quiesced = true;
    graph_.Quiesce(s.id);
    graph_dirty_ = true;
  } else if (acquiring && s.quiesced) {
    s.quiesced = false;
    graph_.Reactivate(s.id);
  }
}

void FederationServer::SwapSpans(Session& s) {
  s.span_stack = system_->environment().tracer().ExchangeParentStack(
      std::move(s.span_stack));
}

void FederationServer::Consider(Session& s) {
  if (s.considered) return;
  s.considered = true;
  SwapSpans(s);
  obs::Tracer& tracer = system_->environment().tracer();
  s.root_span = tracer.StartSpan("session:" + std::to_string(s.id),
                                 "server", clock_);
  if (s.root_span != 0) tracer.PushParent(s.root_span);
  auto prepared = system_->Prepare(s.text);
  if (!prepared.ok()) {
    s.prepare_status = prepared.status();
    SwapSpans(s);
    return;
  }
  if (!prepared->immediate.has_value()) {
    s.prepare_status = system_->VerifyPreparedPlan(prepared->plan);
    if (s.prepare_status.ok()) {
      s.summary = std::make_shared<analysis::AccessSummary>(
          analysis::SummarizePlan(prepared->plan));
    }
  }
  if (s.prepare_status.ok()) s.prepared = std::move(*prepared);
  SwapSpans(s);
}

void FederationServer::Admit(Session& s) {
  Consider(s);
  s.state = SessionState::kReady;
  ++active_;
  s.result.admit_micros = clock_;
  s.resume_at = clock_;
  if (s.shed_since >= 0) {
    s.result.shed_wait_micros += clock_ - s.shed_since;
    s.shed_since = -1;
  }
  SwapSpans(s);
  if (!s.prepare_status.ok()) {
    s.result.status = s.prepare_status;
    s.result.finish_micros = clock_;
    CloseSession(s);
    return;
  }
  if (s.prepared->immediate.has_value()) {
    // Refused at prepare time: nothing to run.
    ExecutionReport report = *std::move(s.prepared->immediate);
    system_->LogInput(s.prepared->kind, report);
    s.result.report = std::move(report);
    s.result.finish_micros = clock_;
    CloseSession(s);
    return;
  }
  if (s.summary != nullptr) {
    s.result.predicted_conflicts =
        static_cast<int64_t>(graph_.Contending(*s.summary).size());
    s.result.summary = s.summary;
    graph_.Admit(s.id, s.summary);
    graph_dirty_ = true;
  }
  s.result.avoided_deadlocks =
      static_cast<int64_t>(s.deferred_against.size());
  s.engine = std::make_unique<dol::DolEngine>(&system_->environment(),
                                              system_->retry_policy());
  Status begun = s.engine->BeginRun(s.prepared->plan.program, clock_);
  if (!begun.ok()) {
    s.result.status = begun;
    s.result.finish_micros = clock_;
    CloseSession(s);
    return;
  }
  if (s.engine->done()) {  // a program with no remote calls
    Finish(s, s.engine->TakeResult());
    return;
  }
  SwapSpans(s);
}

void FederationServer::Step(Session& s, int64_t at) {
  netsim::Environment& env = system_->environment();
  const dol::DolEngine::PendingRpc& rpc = *s.engine->pending();
  // Copy what post-delivery bookkeeping needs: Deliver invalidates rpc.
  const std::string service = rpc.service;
  const netsim::LamRequestType verb = rpc.request.type;
  const relational::SessionId local_session = rpc.request.session;

  SwapSpans(s);
  auto outcome = env.Call(service, rpc.request, at);
  if (outcome.ok() &&
      outcome->response.status.code() == StatusCode::kBusy) {
    // The statement would block on another session's locks: withhold
    // the response from the engine and park the session until a
    // lock-releasing verb completes at this service. The retry simply
    // re-issues the same request — the local executor acquires every
    // lock before its first mutation, so re-execution is safe.
    SwapSpans(s);
    ++s.result.busy_probes;
    ++s.result.lock_waits;
    s.state = SessionState::kParked;
    s.parked_service = service;
    s.parked_since = outcome->timing.end_micros;
    s.waits_for.clear();
    for (relational::SessionId blocker : outcome->response.blocked_by) {
      auto it = local_owner_.find({service, blocker});
      if (it != local_owner_.end() && it->second != s.id) {
        s.waits_for.push_back(it->second);
        // Oracle record: every runtime blocker pair must be a
        // statically predicted conflict (tests/conflict_oracle_test).
        auto& observed = s.result.observed_blockers;
        if (std::find(observed.begin(), observed.end(), it->second) ==
            observed.end()) {
          observed.push_back(it->second);
        }
      }
    }
    if (config_.deadlock_detection) {
      Session* victim = FindDeadlockVictim(s);
      if (victim != nullptr) {
        AbortParked(*victim,
                    "deadlock victim: aborted to break a waits-for cycle",
                    /*deadlock=*/true);
      }
    }
    return;
  }

  const bool ok_response = outcome.ok() && outcome->response.status.ok();
  const relational::SessionId opened =
      outcome.ok() ? outcome->response.session : 0;
  const int64_t end = outcome.ok() ? outcome->timing.end_micros : at;
  s.engine->Deliver(std::move(outcome));
  if (s.engine->done()) {
    Finish(s, s.engine->TakeResult());
  } else {
    SwapSpans(s);
  }

  // Maintain the (service, local session) -> federation session map the
  // waits-for graph is built from.
  if (verb == netsim::LamRequestType::kOpenSession && ok_response &&
      opened != 0) {
    local_owner_[{service, opened}] = s.id;
  } else if (verb == netsim::LamRequestType::kCloseSession) {
    local_owner_.erase({service, local_session});
  }

  // A completed lock-releasing verb may have freed parked sessions: a
  // finished EXEC committed (autocommit) or aborted its statement's
  // transaction, COMMIT/ROLLBACK ended an explicit one.
  switch (verb) {
    case netsim::LamRequestType::kExecute:
    case netsim::LamRequestType::kCommit:
    case netsim::LamRequestType::kRollback:
    case netsim::LamRequestType::kCloseSession:
      WakeParked(service, end);
      break;
    default:
      break;
  }
}

void FederationServer::WakeParked(const std::string& service, int64_t now) {
  // Parked sessions are always admitted, so they live in the
  // [watermark_, next_unadmitted_) window (see RunBatch).
  for (size_t i = watermark_; i < next_unadmitted_; ++i) {
    Session& s = *sessions_[i];
    if (s.state != SessionState::kParked || s.parked_service != service) {
      continue;
    }
    s.state = SessionState::kReady;
    s.resume_at = std::max(s.resume_at, now);
    s.result.lock_wait_micros += std::max<int64_t>(0, now - s.parked_since);
    s.waits_for.clear();
  }
}

FederationServer::Session* FederationServer::FindDeadlockVictim(Session& s) {
  // Waits-for edges only change when a session parks, so any new cycle
  // passes through the session that just parked: search for a path
  // leading back to it.
  std::set<uint64_t> visited;
  std::vector<Session*> path;
  std::function<bool(Session&)> walk = [&](Session& node) -> bool {
    path.push_back(&node);
    for (uint64_t target : node.waits_for) {
      if (target == s.id) return true;
      if (visited.count(target) > 0) continue;
      visited.insert(target);
      Session& next = *sessions_[target - 1];
      if (next.state == SessionState::kParked && walk(next)) return true;
    }
    path.pop_back();
    return false;
  };
  if (!walk(s)) return nullptr;
  Session* victim = nullptr;
  for (Session* node : path) {
    if (victim == nullptr || node->id > victim->id) victim = node;
  }
  return victim;
}

void FederationServer::BreakStall() {
  Session* victim = nullptr;
  for (size_t i = watermark_; i < next_unadmitted_; ++i) {
    Session* s = sessions_[i].get();
    if (s->state == SessionState::kParked &&
        (victim == nullptr || s->id > victim->id)) {
      victim = s;
    }
  }
  if (victim != nullptr) {
    AbortParked(*victim,
                "lock wait stalled: every admitted session is blocked; "
                "aborted to restore progress",
                /*deadlock=*/false);
  }
}

void FederationServer::AbortParked(Session& s, const std::string& reason,
                                   bool deadlock) {
  const dol::DolEngine::PendingRpc& rpc = *s.engine->pending();
  const std::string service = rpc.service;
  netsim::Environment& env = system_->environment();
  // Release what the blocked statement's transaction already holds at
  // the contended site. Elsewhere the session's own DOL recovery path
  // (ABORT prepared tasks, compensate committed ones) cleans up as for
  // any aborted subtransaction; the status is ignored because there may
  // be nothing to roll back.
  auto lam = env.GetLam(service);
  if (lam.ok()) {
    (void)(*lam)->engine()->Rollback(rpc.request.session);
  }
  const int64_t now = std::max(clock_, s.parked_since);
  s.result.lock_wait_micros += std::max<int64_t>(0, now - s.parked_since);
  if (deadlock) {
    s.result.deadlock_victim = true;
  } else {
    s.result.lock_timeout = true;
  }
  s.state = SessionState::kReady;
  s.resume_at = now;
  s.waits_for.clear();

  netsim::CallOutcome aborted;
  aborted.response.status = Status::Aborted(reason);
  aborted.response.txn_state = relational::TxnState::kAborted;
  aborted.timing.start_micros = s.parked_since;
  aborted.timing.end_micros = now;
  SwapSpans(s);
  s.engine->Deliver(Result<netsim::CallOutcome>(std::move(aborted)));
  if (s.engine->done()) {
    Finish(s, s.engine->TakeResult());
  } else {
    SwapSpans(s);
  }
  // The rollback freed this session's locks at `service`.
  WakeParked(service, now);
}

void FederationServer::Finish(Session& s, Result<dol::DolRunResult> run) {
  int64_t end = clock_;
  if (run.ok()) end = s.result.admit_micros + run->makespan_micros;
  const lang::MsqlInput::Kind kind = s.prepared->kind;
  auto report =
      system_->FinishPreparedRun(std::move(*s.prepared), std::move(run));
  if (!report.ok()) {
    s.result.status = report.status();
  } else {
    system_->LogInput(kind, *report);
    s.result.report = std::move(*report);
  }
  s.result.finish_micros = end;
  // The server learns the outcome when the final response lands, so
  // sessions waiting on admission cannot start before that instant.
  clock_ = std::max(clock_, end);
  CloseSession(s);
}

void FederationServer::CloseSession(Session& s) {
  // Destroy the engine while the session's span context is current so
  // any abandoned in-flight spans unwind onto the right stack.
  s.engine.reset();
  obs::Tracer& tracer = system_->environment().tracer();
  if (s.root_span != 0) {
    tracer.Annotate(s.root_span, "outcome",
                    s.result.report.has_value()
                        ? GlobalOutcomeName(s.result.report->outcome)
                        : "error");
    if (s.result.deadlock_victim) {
      tracer.Annotate(s.root_span, "deadlock_victim", "true");
    }
    if (s.result.lock_timeout) {
      tracer.Annotate(s.root_span, "lock_timeout", "true");
    }
    tracer.PopParent();
    tracer.EndSpan(s.root_span, s.result.finish_micros);
  }
  SwapSpans(s);
  s.state = SessionState::kDone;
  --active_;
  graph_.Remove(s.id);
  graph_dirty_ = true;
  s.result.makespan_micros =
      s.result.finish_micros - s.result.admit_micros;
  RecordSessionSample(s);
}

bool FederationServer::ShedActive() const {
  return config_.adaptive_admission && monitor_ != nullptr &&
         monitor_->shedding();
}

void FederationServer::SampleMonitor() {
  monitor_->SetGauge("sessions.active", static_cast<double>(active_));
  const size_t waiting =
      sessions_.size() - next_unadmitted_ + deferred_.size();
  monitor_->SetGauge("sessions.waiting", static_cast<double>(waiting));
  monitor_->AdvanceTo(clock_);
  if (!config_.adaptive_admission) return;
  const bool shed = monitor_->shedding();
  if (shed == shed_active_) return;
  shed_active_ = shed;
  if (!shed) return;
  // Stamp the decision trail of every session the engagement holds
  // back. O(waiting), but only on the rare shed transitions.
  auto mark = [this](Session& s) {
    if (s.shed_since < 0) {
      s.shed_since = clock_;
      s.result.admission_shed = true;
    }
  };
  for (size_t i = next_unadmitted_; i < sessions_.size(); ++i) {
    mark(*sessions_[i]);
  }
  for (size_t index : deferred_) mark(*sessions_[index]);
}

void FederationServer::RecordSessionSample(const Session& s) {
  if (monitor_ == nullptr) return;
  obs::Monitor::SessionSample sample;
  sample.finish_micros = s.result.finish_micros;
  sample.makespan_micros = s.result.makespan_micros;
  sample.ok = s.result.status.ok() && s.result.report.has_value() &&
              s.result.report->outcome == GlobalOutcome::kSuccess;
  sample.deadlock_victim = s.result.deadlock_victim;
  sample.lock_timeout = s.result.lock_timeout;
  sample.was_shed = s.result.admission_shed;
  monitor_->RecordSession(sample);
}

}  // namespace msql::core
