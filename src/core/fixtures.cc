#include "core/fixtures.h"

#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace msql::core {

using relational::CapabilityProfile;

namespace {

/// Routes used by the generator; the first is the §3.2 update target.
constexpr const char* kRoutes[][2] = {
    {"Houston", "San Antonio"}, {"Houston", "Dallas"},
    {"Austin", "Houston"},      {"Dallas", "El Paso"},
    {"San Antonio", "Austin"},
};
constexpr int kRouteCount = 5;
constexpr const char* kDays[] = {"mon", "tue", "wed", "thu", "fri"};

std::string FlightRows(const std::string& prefix, int count, Rng* rng) {
  std::string sql;
  for (int i = 0; i < count; ++i) {
    // Guarantee Houston → San Antonio coverage in the first two rows.
    int route = i < 2 ? 0 : static_cast<int>(rng->NextBelow(kRouteCount));
    double rate = 100.0 + static_cast<double>(rng->NextBelow(200));
    if (!sql.empty()) sql += ", ";
    sql += "(" + std::to_string(100 + i) + ", '" +
           std::string(kRoutes[route][0]) + "', '" +
           std::to_string(7 + static_cast<int>(rng->NextBelow(12))) +
           ":00', '" + std::string(kRoutes[route][1]) + "', '" +
           std::to_string(9 + static_cast<int>(rng->NextBelow(12))) +
           ":00', '" + kDays[rng->NextBelow(5)] + "', " +
           std::to_string(rate) + ")";
    (void)prefix;
  }
  return sql;
}

std::string SeatRows(int count, Rng* rng) {
  std::string sql;
  for (int i = 0; i < count; ++i) {
    // Most seats are FREE; a sprinkle are TAKEN.
    bool taken = i >= 2 && rng->NextBool(0.3);
    if (!sql.empty()) sql += ", ";
    sql += "(" + std::to_string(i + 1) + ", '" +
           (i % 4 == 0 ? "window" : "aisle") + "', '" +
           (taken ? "TAKEN" : "FREE") + "', " +
           (taken ? "'smith'" : "NULL") + ")";
  }
  return sql;
}

std::string CarRows(int count, bool with_rate, Rng* rng) {
  std::string sql;
  const char* types[] = {"sedan", "compact", "suv", "van"};
  for (int i = 0; i < count; ++i) {
    bool rented = i >= 2 && rng->NextBool(0.3);
    if (!sql.empty()) sql += ", ";
    sql += "(" + std::to_string(i + 1) + ", '" +
           types[rng->NextBelow(4)] + "', ";
    if (with_rate) {
      sql += std::to_string(30 + static_cast<int>(rng->NextBelow(40))) +
             ".0, ";
    }
    sql += std::string("'") + (rented ? "rented" : "available") + "', " +
           (rented ? "'03-01-92', '03-14-92', 'jones'"
                   : "NULL, NULL, NULL") +
           ")";
  }
  return sql;
}

}  // namespace

std::string PaperServiceOf(const std::string& database) {
  return ToLower(database) + "_svc";
}

Result<std::unique_ptr<MultidatabaseSystem>> BuildPaperFederation(
    const PaperFederationOptions& options) {
  auto sys = std::make_unique<MultidatabaseSystem>();
  netsim::LinkParams link;
  link.latency_micros = options.link_latency_micros;
  sys->environment().network().set_default_link(link);

  struct Db {
    const char* name;
    CapabilityProfile profile;
  };
  CapabilityProfile continental_profile =
      options.continental_autocommit_only ? CapabilityProfile::SybaseLike()
                                          : CapabilityProfile::OracleLike();
  // NOCONNECT engines serve exactly one database; give continental the
  // CONNECT ability regardless so the database name resolves uniformly.
  continental_profile.supports_multiple_databases = true;
  const Db dbs[] = {
      {"continental", continental_profile},
      {"delta", CapabilityProfile::IngresLike()},
      {"united", CapabilityProfile::OracleLike()},
      {"avis", CapabilityProfile::IngresLike()},
      {"national", CapabilityProfile::OracleLike()},
  };

  Rng rng(options.seed);
  for (const auto& db : dbs) {
    std::string service = PaperServiceOf(db.name);
    MSQL_RETURN_IF_ERROR(
        sys->AddService(service, "site_" + std::string(db.name), db.profile));
    MSQL_ASSIGN_OR_RETURN(auto* engine, sys->GetEngine(service));
    MSQL_RETURN_IF_ERROR(engine->CreateDatabase(db.name));
  }

  // Appendix schemas + deterministic data. ("from"/"to" of the paper's
  // car tables are spelled cfrom/cto — FROM is reserved in the SQL
  // dialect; see DESIGN.md.)
  MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
      PaperServiceOf("continental"), "continental",
      "CREATE TABLE flights (flnu INTEGER, source TEXT, dep TEXT, "
      "destination TEXT, arr TEXT, day TEXT, rate REAL);"
      "CREATE TABLE f838 (seatnu INTEGER, seatty TEXT, seatstatus TEXT, "
      "clientname TEXT);"
      "INSERT INTO flights VALUES " +
          FlightRows("c", options.flights_per_airline, &rng) + ";" +
          "INSERT INTO f838 VALUES " +
          SeatRows(options.seats_per_airline, &rng)));
  MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
      PaperServiceOf("delta"), "delta",
      "CREATE TABLE flight (fnu INTEGER, source TEXT, dest TEXT, dep TEXT, "
      "arr TEXT, day TEXT, rate REAL);"
      "CREATE TABLE fnu747 (snu INTEGER, sty TEXT, sstat TEXT, "
      "passname TEXT);"));
  {
    // Delta's flight table has (fnu, source, dest, dep, arr, day, rate):
    // reuse the generator but permute dep/dest columns via INSERT list.
    Rng delta_rng(options.seed ^ 0xD31A);
    MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
        PaperServiceOf("delta"), "delta",
        "INSERT INTO flight (fnu, source, dep, dest, arr, day, rate) "
        "VALUES " +
            FlightRows("d", options.flights_per_airline, &delta_rng) + ";" +
            "INSERT INTO fnu747 VALUES " +
            SeatRows(options.seats_per_airline, &delta_rng)));
  }
  {
    Rng united_rng(options.seed ^ 0x0717ED);
    MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
        PaperServiceOf("united"), "united",
        "CREATE TABLE flight (fn INTEGER, sour TEXT, dest TEXT, depa TEXT, "
        "arri TEXT, day TEXT, rates REAL);"
        "CREATE TABLE fn727 (sn INTEGER, st TEXT, sst TEXT, pasna TEXT);"
        "INSERT INTO flight (fn, sour, depa, dest, arri, day, rates) "
        "VALUES " +
            FlightRows("u", options.flights_per_airline, &united_rng) +
            ";" + "INSERT INTO fn727 VALUES " +
            SeatRows(options.seats_per_airline, &united_rng)));
  }
  {
    Rng avis_rng(options.seed ^ 0xA715);
    MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
        PaperServiceOf("avis"), "avis",
        "CREATE TABLE cars (code INTEGER, cartype TEXT, rate REAL, "
        "carst TEXT, cfrom TEXT, cto TEXT, client TEXT);"
        "INSERT INTO cars VALUES " +
            CarRows(options.cars_per_company, /*with_rate=*/true,
                    &avis_rng)));
  }
  {
    Rng national_rng(options.seed ^ 0x9A7107A1);
    MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
        PaperServiceOf("national"), "national",
        "CREATE TABLE vehicle (vcode INTEGER, vty TEXT, vstat TEXT, "
        "cfrom TEXT, cto TEXT, client TEXT);"
        "INSERT INTO vehicle VALUES " +
            CarRows(options.cars_per_company, /*with_rate=*/false,
                    &national_rng)));
  }

  if (options.incorporate_and_import) {
    for (const auto& db : dbs) {
      std::string service = PaperServiceOf(db.name);
      std::string commit_word =
          db.profile.supports_two_phase_commit ? "NOCOMMIT" : "COMMIT";
      MSQL_ASSIGN_OR_RETURN(
          auto incorporate_report,
          sys->Execute("INCORPORATE SERVICE " + service + " SITE site_" +
                       std::string(db.name) +
                       " CONNECTMODE CONNECT COMMITMODE " + commit_word +
                       " CREATE " + commit_word + " INSERT " + commit_word +
                       " DROP " + commit_word));
      (void)incorporate_report;
      MSQL_ASSIGN_OR_RETURN(
          auto import_report,
          sys->Execute("IMPORT DATABASE " + std::string(db.name) +
                       " FROM SERVICE " + service));
      (void)import_report;
    }
  }
  return sys;
}

Result<std::unique_ptr<MultidatabaseSystem>> BuildSyntheticFederation(
    const SyntheticFederationOptions& options) {
  auto sys = std::make_unique<MultidatabaseSystem>();
  netsim::LinkParams link;
  link.latency_micros = options.link_latency_micros;
  sys->environment().network().set_default_link(link);

  Rng rng(options.seed);
  int autocommit_stride =
      options.autocommit_fraction > 0.0
          ? static_cast<int>(1.0 / options.autocommit_fraction)
          : 0;
  for (int i = 0; i < options.n_databases; ++i) {
    std::string db = "db" + std::to_string(i);
    std::string service = db + "_svc";
    bool autocommit_only =
        autocommit_stride > 0 && (i % autocommit_stride) == 0;
    CapabilityProfile profile = autocommit_only
                                    ? CapabilityProfile::SybaseLike()
                                    : CapabilityProfile::IngresLike();
    profile.supports_multiple_databases = true;
    MSQL_RETURN_IF_ERROR(
        sys->AddService(service, "site_" + db, std::move(profile)));
    MSQL_ASSIGN_OR_RETURN(auto* engine, sys->GetEngine(service));
    MSQL_RETURN_IF_ERROR(engine->CreateDatabase(db));

    std::string table = "flight" + std::to_string(i);
    std::string rows;
    for (int r = 0; r < options.rows_per_table; ++r) {
      int route = r < 2 ? 0 : static_cast<int>(rng.NextBelow(kRouteCount));
      if (!rows.empty()) rows += ", ";
      rows += "(" + std::to_string(r) + ", '" +
              std::string(kRoutes[route][0]) + "', '" +
              std::string(kRoutes[route][1]) + "', " +
              std::to_string(100 + static_cast<int>(rng.NextBelow(300))) +
              ".0, '" + kDays[rng.NextBelow(5)] + "')";
    }
    MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
        service, db,
        "CREATE TABLE " + table +
            " (fno INTEGER, source TEXT, dest TEXT, rate REAL, day TEXT);"
            "INSERT INTO " + table + " VALUES " + rows));

    std::string commit_word = autocommit_only ? "COMMIT" : "NOCOMMIT";
    MSQL_ASSIGN_OR_RETURN(
        auto incorporate_report,
        sys->Execute("INCORPORATE SERVICE " + service + " SITE site_" + db +
                     " CONNECTMODE CONNECT COMMITMODE " + commit_word +
                     " CREATE " + commit_word + " INSERT " + commit_word +
                     " DROP " + commit_word));
    (void)incorporate_report;
    MSQL_ASSIGN_OR_RETURN(auto import_report,
                          sys->Execute("IMPORT DATABASE " + db +
                                       " FROM SERVICE " + service));
    (void)import_report;
  }
  return sys;
}

}  // namespace msql::core
