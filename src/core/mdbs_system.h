#ifndef MSQL_CORE_MDBS_SYSTEM_H_
#define MSQL_CORE_MDBS_SYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/conflict_analyzer.h"
#include "analysis/diagnostics.h"
#include "common/result.h"
#include "dol/engine.h"
#include "mdbs/auxiliary_directory.h"
#include "mdbs/catalog_ops.h"
#include "mdbs/global_data_dictionary.h"
#include "msql/ast.h"
#include "msql/cost_model.h"
#include "msql/expander.h"
#include "msql/multitable.h"
#include "netsim/environment.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "translator/translator.h"

namespace msql::core {

/// Global outcome of one MSQL input (§3.2.1): success iff all VITAL
/// subqueries committed; aborted iff all were rolled back or
/// compensated; incorrect when VITAL outcomes diverged irreparably;
/// refused when the plan could not guarantee the requested consistency.
enum class GlobalOutcome { kSuccess, kAborted, kIncorrect, kRefused };

std::string_view GlobalOutcomeName(GlobalOutcome outcome);

/// How one scoped database's subquery ended (§3.2.1): the per-task
/// verdict the global outcome was decided from. Also the row format of
/// the query log's `verdicts` field.
struct DatabaseVerdict {
  std::string database;  // effective name in the USE scope
  std::string service;
  std::string task;      // DOL task name
  bool vital = false;
  dol::DolTaskState state = dol::DolTaskState::kNotRun;
};

/// Everything the coordinator reports about one executed MSQL input.
struct ExecutionReport {
  GlobalOutcome outcome = GlobalOutcome::kSuccess;
  /// Refusal / abort detail (OK for clean successes).
  Status detail;
  /// DOLSTATUS the program ended with (the MSQL return code, §4.1).
  int dol_status = 0;
  /// Retrieval answer of a multiple query: one table per database.
  lang::Multitable multitable;
  /// Answer of a decomposed multidatabase join (single merged table).
  relational::ResultSet join_result;
  bool is_join = false;
  /// Full task-level trace of the run.
  dol::DolRunResult run;
  /// The generated DOL program text (what §4.3 prints).
  std::string dol_text;
  /// Scope databases discarded as non-pertinent during disambiguation.
  std::vector<std::string> non_pertinent;
  /// Rows moved by a cross-database data transfer (INSERT ... SELECT).
  int64_t rows_transferred = 0;
  /// Interdatabase triggers fired by this input (in firing order).
  std::vector<std::string> fired_triggers;
  /// Re-sends the DOL engine performed under the retry policy.
  int64_t retries_performed = 0;
  /// kQueryTxnState re-probes issued to resolve timed-out calls.
  int64_t reprobes_performed = 0;
  /// Services whose NON-VITAL subqueries were lost to unavailability:
  /// the run degraded (their answers/effects are missing) but the
  /// global outcome was not affected (§3.2.1).
  std::vector<std::string> degraded_services;
  /// Per-database verdicts of the plan's tasks, in plan order (empty
  /// for inputs that never reach a plan, e.g. refusals and DDL).
  std::vector<DatabaseVerdict> verdicts;
  /// Non-fatal findings of the static checker (warnings/notes; errors
  /// abort execution before a report exists).
  std::vector<analysis::Diagnostic> diagnostics;
  /// Indented text tree of this input's trace spans (DESIGN.md §9).
  /// Filled only when the environment tracer is enabled and this is the
  /// outermost MSQL input — nested view/trigger executions appear as
  /// subtrees of the outer input instead of reporting their own.
  std::string trace_text;
  /// Local physical plans of this input's SELECT tasks, one block per
  /// task in task-name order (the shell's `\plan`). Filled only when
  /// plan collection is on (MultidatabaseSystem::set_collect_plans).
  std::string plan_text;
  /// EXPLAIN ANALYZE rendering of this input (DESIGN.md §11): phase
  /// breakdown, per-site attribution, 2PC latency, critical path.
  /// Filled only when profile collection is on
  /// (MultidatabaseSystem::set_collect_profiles, which needs the
  /// tracer) and this is the outermost input.
  std::string profile_text;
  /// Cost breakdown of a decomposed multidatabase join: the chosen
  /// coordinator, per-subquery movement strategy (ship-whole vs.
  /// semi-join) and estimated transfer costs — or the reason the
  /// optimizer fell back to the paper heuristics. Filled only while the
  /// cost-based optimizer is enabled (set_cost_based_optimizer).
  std::string cost_text;
};

/// What `Analyze` (the `msql_lint` / `\check` path) reports about one
/// MSQL input without executing it: static diagnostics, the would-be
/// DOL program, and whether the translator would refuse the input.
struct AnalysisReport {
  /// "query", "multitransaction", "incorporate", ... (MsqlInput kind).
  std::string kind;
  /// Checker (MS1xx) findings plus, when translation succeeds, the DOL
  /// verifier's (DL2xx) verdict over the generated plan.
  analysis::DiagnosticList diagnostics;
  /// Generated DOL program text ("" when not translatable).
  std::string dol_text;
  bool translated = false;
  /// The plan was refused (unenforceable vital set etc.): the input is
  /// well-formed but the requested consistency cannot be guaranteed.
  bool refused = false;
  Status refusal;
  /// Hard failure past the static checks (expansion/translation error
  /// the checker did not anticipate).
  Status error;
  /// Predicted per-site read/write sets and acquisition order of the
  /// generated plan (present iff `translated`). Feeds the DL3xx
  /// conflict diagnostics, `msql_lint --conflicts` and the scheduler's
  /// conflict-aware admission.
  std::optional<analysis::AccessSummary> summary;
  /// Cost breakdown of a would-be decomposed join (see
  /// ExecutionReport::cost_text).
  std::string cost_text;
};

/// A frontend-compiled MSQL input: the translated DOL plan plus
/// everything needed to assemble its ExecutionReport once a driver has
/// run the plan. Produced by Prepare/PrepareInput, consumed by
/// FinishPreparedRun. The serial entry points use this split
/// internally; the concurrent federation server uses it to prepare each
/// session's input at admission, step the plan through
/// DolEngine::BeginRun/Deliver interleaved with other sessions, and
/// assemble the report when the program completes.
struct PreparedInput {
  lang::MsqlInput::Kind kind = lang::MsqlInput::Kind::kQuery;
  translator::Plan plan;
  /// Scope databases discarded as non-pertinent during disambiguation.
  std::vector<std::string> non_pertinent;
  /// Non-fatal checker findings to surface on the final report.
  std::vector<analysis::Diagnostic> warnings;
  /// Expansion behind a plain query plan (GDD sync + trigger source).
  std::optional<lang::ExpansionResult> expansion;
  /// Expansions behind a multitransaction plan (GDD sync).
  std::vector<lang::ExpansionResult> mt_expansions;
  /// INSERT..SELECT data transfer: fix up rows_transferred post-run.
  bool data_transfer = false;
  /// Fire interdatabase triggers after the run (plain query path only).
  bool fire_triggers = false;
  /// Cost breakdown of a decomposed join, forwarded to the report.
  std::string cost_text;
  /// Input resolved entirely at prepare time (refusals): nothing to
  /// run, report this as-is.
  std::optional<ExecutionReport> immediate;
};

/// The multidatabase system of Figure 1: MSQL front end, translator,
/// DOL engine and catalog, wired to a simulated multi-service
/// environment. One instance = one federation.
class MultidatabaseSystem {
 public:
  explicit MultidatabaseSystem(std::string coordinator_site = "mdbs");

  MultidatabaseSystem(const MultidatabaseSystem&) = delete;
  MultidatabaseSystem& operator=(const MultidatabaseSystem&) = delete;

  netsim::Environment& environment() { return env_; }
  mdbs::AuxiliaryDirectory& auxiliary_directory() { return ad_; }
  mdbs::GlobalDataDictionary& gdd() { return gdd_; }

  /// Retry discipline applied by the DOL engine to every plan run.
  void set_retry_policy(dol::RetryPolicy policy) {
    retry_policy_ = policy;
  }
  const dol::RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Creates an engine with `profile`, wraps it in a LAM at `site` and
  /// registers the service (the INCORPORATE statement still has to be
  /// run to make the federation aware of it).
  Status AddService(std::string_view service, std::string_view site,
                    relational::CapabilityProfile profile,
                    netsim::LamCostModel cost_model = {});

  /// Direct engine access (seeding data, injecting failures in tests).
  Result<relational::LocalEngine*> GetEngine(std::string_view service);

  /// Toggles local plan collection on every registered service: each
  /// SELECT task's result then carries its planner rendering, which
  /// RunPlan gathers into ExecutionReport::plan_text.
  void set_collect_plans(bool on);
  bool collect_plans() const { return collect_plans_; }

  /// Toggles per-input profiling (ExecutionReport::profile_text). The
  /// profiler reads the input's span subtree, so it only produces
  /// output while the environment tracer is enabled.
  void set_collect_profiles(bool on) { collect_profiles_ = on; }
  bool collect_profiles() const { return collect_profiles_; }

  /// Toggles the cost-based distributed optimizer for decomposed joins
  /// (DESIGN.md §14). On by default, but each query silently falls back
  /// to the paper heuristics until fresh ANALYZE statistics exist for
  /// every involved table, so behavior only changes after ANALYZE runs.
  /// Off = the provable paper-heuristic path, pinned by the distopt
  /// differential tests.
  void set_cost_based_optimizer(bool on) { cost_based_optimizer_ = on; }
  bool cost_based_optimizer() const { return cost_based_optimizer_; }

  /// Structured JSONL audit log of executed inputs (DESIGN.md §11).
  /// Disabled by default; the shell's `\qlog` and tests enable it.
  obs::QueryLog& query_log() { return query_log_; }
  const obs::QueryLog& query_log() const { return query_log_; }

  /// Runs a ';'-separated sequence of local SQL statements directly on
  /// one service's database (bootstrap helper for examples/tests; this
  /// bypasses the federation exactly like a local DBA would).
  Status RunLocalSql(std::string_view service, std::string_view database,
                     std::string_view sql_script);

  // -- MSQL entry points ----------------------------------------------------

  /// Parses and executes exactly one MSQL input item.
  Result<ExecutionReport> Execute(std::string_view msql_text);

  /// Parses and executes a script; stops at the first hard error.
  Result<std::vector<ExecutionReport>> ExecuteScript(
      std::string_view msql_text);

  /// Statically analyzes exactly one MSQL input without executing it:
  /// runs the MS1xx semantic checker and, when the input translates,
  /// the DL2xx plan verifier over the generated DOL. The session scope
  /// is left untouched.
  Result<AnalysisReport> Analyze(std::string_view msql_text);

  /// Analyzes a script. Catalog-shaping inputs (INCORPORATE, IMPORT,
  /// CREATE MULTIDATABASE/VIEW/TRIGGER, ...) are *executed* so later
  /// queries are checked against the catalogs they would see; queries
  /// and multitransactions are analyzed only.
  Result<std::vector<AnalysisReport>> AnalyzeScript(
      std::string_view msql_text);

  Result<ExecutionReport> ExecuteQuery(const lang::MsqlQuery& query);
  Result<ExecutionReport> ExecuteMultiTransaction(
      const lang::MultiTransaction& mt);

  // -- Prepared execution (the concurrent server's protocol) ---------------

  /// Parses exactly one MSQL input and runs the whole front end on it
  /// (scope resolution, checking, expansion, translation), yielding a
  /// plan an external driver can run later. Only queries and
  /// multitransactions are preparable — catalog-shaping inputs and view
  /// queries execute serially (kUnimplemented).
  Result<PreparedInput> Prepare(std::string_view msql_text);
  /// Same, for an already-parsed input.
  Result<PreparedInput> PrepareInput(const lang::MsqlInput& input);

  /// Translator-bug oracle: every prepared plan must pass the DOL
  /// verifier before it is allowed near the federation. A rejection
  /// here is a defect in the translator, not in the user's program.
  Status VerifyPreparedPlan(const translator::Plan& plan);

  /// Assembles the ExecutionReport of a prepared input whose plan a
  /// driver has run (`run` being DolEngine::Run/TakeResult output),
  /// including post-run GDD maintenance and trigger firing.
  Result<ExecutionReport> FinishPreparedRun(PreparedInput prepared,
                                            Result<dol::DolRunResult> run);

  /// Appends one query-log record for an executed input (no-op while
  /// the log is disabled). Only top-level inputs are logged — nested
  /// view/trigger executions are part of their outer input's record.
  void LogInput(lang::MsqlInput::Kind kind, const ExecutionReport& report);
  Status ExecuteIncorporate(const lang::IncorporateStmt& stmt);
  Result<std::vector<std::string>> ExecuteImport(const lang::ImportStmt& stmt);
  Result<std::vector<std::string>> ExecuteAnalyze(const lang::AnalyzeStmt& stmt);

  /// Snapshots the cost-based optimizer's inputs: fresh GDD statistics,
  /// per-link transfer parameters from the netsim topology and observed
  /// mean latencies from the health registry (DESIGN.md §14).
  lang::CostContext BuildCostContext() const;

  // -- Multidatabases, views, triggers (§2 extensions) ---------------------

  Status ExecuteCreateMultidatabase(const lang::CreateMultidatabaseStmt& s);
  Status ExecuteDropMultidatabase(const lang::DropMultidatabaseStmt& s);

  /// Registers a multidatabase view (stored multiple query).
  Status ExecuteCreateView(const lang::CreateViewStmt& s);
  Status ExecuteDropView(const lang::DropViewStmt& s);
  bool HasView(std::string_view name) const;

  /// Registers an interdatabase trigger.
  Status ExecuteCreateTrigger(const lang::CreateTriggerStmt& s);
  Status ExecuteDropTrigger(const lang::DropTriggerStmt& s);
  std::vector<std::string> TriggerNames() const;

  /// The session's current scope (set by the last USE).
  const lang::UseClause& current_scope() const { return current_scope_; }

 private:
  /// Applies USE CURRENT inheritance and records the new current scope.
  Result<lang::MsqlQuery> ResolveScope(const lang::MsqlQuery& query);

  /// Dispatches one parsed input (body of Execute, minus the tracing).
  Result<ExecutionReport> ExecuteInput(const lang::MsqlInput& input);

  /// Untraced bodies of ExecuteQuery/ExecuteMultiTransaction; the public
  /// entry points wrap them in the input-level "frontend" span.
  Result<ExecutionReport> ExecuteQueryImpl(const lang::MsqlQuery& query);
  Result<ExecutionReport> ExecuteMultiTransactionImpl(
      const lang::MultiTransaction& mt);

  /// Closes the input-level span at the run's simulated makespan; at the
  /// outermost input it renders the input's trace (and, when profile
  /// collection is on, its profile) into the report and advances the
  /// tracer's session offset so the next input lays out after this one
  /// on the simulated timeline.
  void FinishInputSpan(obs::ScopedSpan* span, bool top_level,
                       ExecutionReport* report);

  /// Snapshot of the metrics counters, taken at top-level input entry so
  /// the profiler can attribute counter growth to the input.
  void SnapshotProfileCounters(bool top_level);

  /// Analyzes one parsed input (helper of Analyze/AnalyzeScript).
  Result<AnalysisReport> AnalyzeInput(const lang::MsqlInput& input);
  Result<AnalysisReport> AnalyzeQuery(const lang::MsqlQuery& query);
  Result<AnalysisReport> AnalyzeMultiTransaction(
      const lang::MultiTransaction& mt);

  /// Front halves of the two preparable input kinds: everything up to
  /// (and including) translation.
  Result<PreparedInput> PrepareQuery(const lang::MsqlQuery& query);
  Result<PreparedInput> PrepareMultiTransaction(
      const lang::MultiTransaction& mt);

  /// Turns a finished (or failed) DOL run of `plan` into the raw
  /// ExecutionReport: outcome/dol_status mapping, per-database verdicts,
  /// degradation notes and retrieval assembly. Pure function of its
  /// arguments — FinishPreparedRun layers the catalog side effects on
  /// top.
  ExecutionReport AssembleRunReport(const translator::Plan& plan,
                                    std::vector<std::string> non_pertinent,
                                    Result<dol::DolRunResult> run);

  /// Applies committed DDL tasks to the GDD so it keeps mirroring the
  /// local conceptual schemas.
  Status SyncGddAfterDdl(const translator::Plan& plan,
                         const dol::DolRunResult& run,
                         const lang::ExpansionResult& expansion);

  /// Accumulates committed DML rows-affected into the GDD's per-table
  /// write-churn counters, so heavy churn stales ANALYZE snapshots and
  /// re-engages the per-query heuristic fallback.
  void RecordDmlChurn(const lang::ExpansionResult& expansion,
                      const dol::DolRunResult& run);

  /// Runs a query whose FROM names a multidatabase view: evaluates the
  /// stored definition, then applies the outer query to each element of
  /// the resulting multitable at the MDBS level.
  Result<ExecutionReport> ExecuteViewQuery(const lang::MsqlQuery& query,
                                           const std::string& view_name);

  /// Fires interdatabase triggers matching the committed DML tasks of
  /// `expansion`, appending fired names to `report`.
  Status FireTriggers(const lang::ExpansionResult& expansion,
                      ExecutionReport* report);

  netsim::Environment env_;
  mdbs::AuxiliaryDirectory ad_;
  mdbs::GlobalDataDictionary gdd_;
  dol::RetryPolicy retry_policy_;
  lang::UseClause current_scope_;
  std::map<std::string, std::shared_ptr<const lang::MsqlQuery>> views_;
  std::map<std::string, lang::CreateTriggerStmt> triggers_;
  /// Re-entrancy guards for views-over-views and trigger cascades.
  int view_depth_ = 0;
  int trigger_depth_ = 0;
  bool collect_plans_ = false;
  bool collect_profiles_ = false;
  bool cost_based_optimizer_ = true;
  /// Counter values at top-level input entry (profile delta baseline).
  std::map<std::string, int64_t, std::less<>> profile_counters_before_;
  obs::QueryLog query_log_;
};

}  // namespace msql::core

#endif  // MSQL_CORE_MDBS_SYSTEM_H_
