#ifndef MSQL_CORE_FIXTURES_H_
#define MSQL_CORE_FIXTURES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/mdbs_system.h"

namespace msql::core {

/// Parameters of the paper's example federation (Appendix schemas).
struct PaperFederationOptions {
  /// Rows in each airline's flight table.
  int flights_per_airline = 8;
  /// Rows in each airline's seat table.
  int seats_per_airline = 12;
  /// Rows in each rental company's car table.
  int cars_per_company = 10;
  /// §3.3 variant: Continental's service provides automatic commit only
  /// (no prepared-to-commit state), so its VITAL subqueries need COMP.
  bool continental_autocommit_only = false;
  /// Per-message one-way link latency to every LDBS site.
  int64_t link_latency_micros = 1000;
  /// Deterministic data seed.
  uint64_t seed = 42;
  /// When true, INCORPORATE + IMPORT are run so the federation is ready
  /// for MSQL queries (on by default).
  bool incorporate_and_import = true;
};

/// Builds the five-database federation of the Appendix:
///
///   continental (airline):  flights(flnu, source, dep, destination,
///                                    arr, day, rate)
///                           f838(seatnu, seatty, seatstatus, clientname)
///   delta (airline):        flight(fnu, source, dest, dep, arr, day, rate)
///                           fnu747(snu, sty, sstat, passname)
///   united (airline):       flight(fn, sour, dest, depa, arri, day, rates)
///                           fn727(sn, st, sst, pasna)
///   avis (car rental):      cars(code, cartype, rate, carst, cfrom,
///                                cto, client)
///   national (car rental):  vehicle(vcode, vty, vstat, cfrom, cto, client)
///
/// Each database runs on its own service "<db>_svc" at site
/// "site_<db>", with deliberately heterogeneous capability profiles:
/// continental/united are Oracle-like (2PC, DDL auto-commits prior
/// work), delta/avis Ingres-like (2PC, DDL rollbackable), national
/// Oracle-like; the §3.3 option downgrades continental to
/// automatic-commit-only (Sybase-like). Data is deterministic in
/// `seed`: every airline carries Houston → San Antonio flights (the
/// §3.2 update targets), seat tables have FREE seats (the §3.4
/// reservations), and both rental companies have available cars.
Result<std::unique_ptr<MultidatabaseSystem>> BuildPaperFederation(
    const PaperFederationOptions& options = {});

/// Service name of a paper database ("continental" → "continental_svc").
std::string PaperServiceOf(const std::string& database);

/// Scalable synthetic-federation parameters for benches: `n_databases`
/// clones of an airline-style schema, each with `rows_per_table` rows,
/// names db0..db<n-1> with tables flight0..flight<n-1> (distinct names
/// so '%' expansion has real work to do when asked).
struct SyntheticFederationOptions {
  int n_databases = 4;
  int rows_per_table = 64;
  /// Fraction of services that are autocommit-only (no 2PC), rotated
  /// deterministically across the federation.
  double autocommit_fraction = 0.0;
  int64_t link_latency_micros = 1000;
  uint64_t seed = 7;
};

/// Builds a synthetic federation for parameter sweeps. Database i is
/// "db<i>" on service "db<i>_svc"; it holds table "flight<i>"
/// (fno INTEGER, source TEXT, dest TEXT, rate REAL, day TEXT) — note
/// all tables match the wildcard pattern "flight%".
Result<std::unique_ptr<MultidatabaseSystem>> BuildSyntheticFederation(
    const SyntheticFederationOptions& options = {});

}  // namespace msql::core

#endif  // MSQL_CORE_FIXTURES_H_
