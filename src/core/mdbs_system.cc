#include "core/mdbs_system.h"

#include <algorithm>

#include "analysis/dol_verifier.h"
#include "analysis/msql_checker.h"
#include "common/string_util.h"
#include "msql/decomposer.h"
#include "msql/expander.h"
#include "msql/parser.h"
#include "relational/sql/parser.h"

namespace msql::core {

using lang::ExpansionResult;
using lang::MsqlQuery;
using lang::UseClause;
using relational::StatementKind;

std::string_view GlobalOutcomeName(GlobalOutcome outcome) {
  switch (outcome) {
    case GlobalOutcome::kSuccess: return "SUCCESS";
    case GlobalOutcome::kAborted: return "ABORTED";
    case GlobalOutcome::kIncorrect: return "INCORRECT";
    case GlobalOutcome::kRefused: return "REFUSED";
  }
  return "UNKNOWN";
}

namespace {

std::string_view InputKindName(lang::MsqlInput::Kind kind) {
  switch (kind) {
    case lang::MsqlInput::Kind::kQuery: return "query";
    case lang::MsqlInput::Kind::kMultiTransaction: return "multitransaction";
    case lang::MsqlInput::Kind::kIncorporate: return "incorporate";
    case lang::MsqlInput::Kind::kImport: return "import";
    case lang::MsqlInput::Kind::kAnalyze: return "analyze";
    case lang::MsqlInput::Kind::kCreateMultidatabase:
      return "create multidatabase";
    case lang::MsqlInput::Kind::kDropMultidatabase:
      return "drop multidatabase";
    case lang::MsqlInput::Kind::kCreateView: return "create view";
    case lang::MsqlInput::Kind::kDropView: return "drop view";
    case lang::MsqlInput::Kind::kCreateTrigger: return "create trigger";
    case lang::MsqlInput::Kind::kDropTrigger: return "drop trigger";
  }
  return "input";
}

}  // namespace

void MultidatabaseSystem::FinishInputSpan(obs::ScopedSpan* span,
                                          bool top_level,
                                          ExecutionReport* report) {
  if (!span->active()) return;
  obs::Tracer& tracer = env_.tracer();
  span->Annotate("outcome", GlobalOutcomeName(report->outcome));
  uint64_t root = span->id();
  span->End(report->run.makespan_micros);
  if (top_level) {
    report->trace_text = obs::ExportTextTree(tracer, root);
    if (collect_profiles_) {
      obs::ProfileInputs inputs;
      inputs.root = root;
      inputs.outcome = std::string(GlobalOutcomeName(report->outcome));
      inputs.makespan_micros = report->run.makespan_micros;
      inputs.messages = report->run.messages;
      inputs.bytes = report->run.bytes;
      inputs.retries = report->run.retries;
      inputs.reprobes = report->run.reprobes;
      // Join the run's per-task record with the vital flags the verdicts
      // carry and the row counters the local planner reported.
      for (const auto& [name, task] : report->run.tasks) {
        obs::TaskProfile tp;
        tp.name = name;
        tp.service = task.service;
        tp.database = task.database;
        tp.state = std::string(dol::DolTaskStateName(task.state));
        for (const auto& verdict : report->verdicts) {
          if (verdict.task == name) tp.vital = verdict.vital;
        }
        tp.start_micros = task.start_micros;
        tp.end_micros = task.end_micros;
        tp.rows_returned = static_cast<int64_t>(task.result.rows.size());
        tp.rows_affected = task.result.rows_affected;
        tp.rows_scanned = task.result.rows_scanned;
        tp.rows_evaluated = task.result.rows_evaluated;
        inputs.tasks.push_back(std::move(tp));
      }
      inputs.counters_before = profile_counters_before_;
      inputs.metrics = &env_.metrics();
      report->profile_text =
          obs::RenderProfileText(obs::BuildQueryProfile(tracer, inputs));
    }
    tracer.set_sim_offset_micros(tracer.sim_offset_micros() +
                                 report->run.makespan_micros);
  }
}

void MultidatabaseSystem::SnapshotProfileCounters(bool top_level) {
  if (top_level && collect_profiles_) {
    profile_counters_before_ = env_.metrics().CounterSnapshot();
  }
}

void MultidatabaseSystem::LogInput(lang::MsqlInput::Kind kind,
                                   const ExecutionReport& report) {
  if (!query_log_.enabled()) return;
  obs::QueryLogRecord record;
  record.kind = std::string(InputKindName(kind));
  record.outcome = std::string(GlobalOutcomeName(report.outcome));
  record.dol_status = report.dol_status;
  if (!report.detail.ok()) record.detail = report.detail.ToString();
  record.makespan_micros = report.run.makespan_micros;
  record.messages = report.run.messages;
  record.bytes = report.run.bytes;
  record.retries = report.retries_performed;
  record.reprobes = report.reprobes_performed;
  if (report.is_join) {
    record.rows_returned =
        static_cast<int64_t>(report.join_result.rows.size());
  } else {
    record.rows_returned =
        static_cast<int64_t>(report.multitable.TotalRows());
  }
  record.rows_transferred = report.rows_transferred;
  for (const auto& verdict : report.verdicts) {
    obs::QueryLogRecord::Verdict v;
    v.database = verdict.database;
    v.service = verdict.service;
    v.task = verdict.task;
    v.state = std::string(dol::DolTaskStateName(verdict.state));
    v.vital = verdict.vital;
    record.verdicts.push_back(std::move(v));
    if (verdict.state == dol::DolTaskState::kCompensated) {
      record.compensations.push_back(verdict.task);
    }
  }
  record.degraded_services = report.degraded_services;
  record.non_pertinent = report.non_pertinent;
  record.fired_triggers = report.fired_triggers;
  query_log_.Append(std::move(record));
}

MultidatabaseSystem::MultidatabaseSystem(std::string coordinator_site)
    : env_(std::move(coordinator_site)) {}

Status MultidatabaseSystem::AddService(std::string_view service,
                                       std::string_view site,
                                       relational::CapabilityProfile profile,
                                       netsim::LamCostModel cost_model) {
  auto engine = std::make_unique<relational::LocalEngine>(
      std::string(service), std::move(profile));
  engine->set_collect_plan_text(collect_plans_);
  return env_.AddService(service, site, std::move(engine), cost_model);
}

Result<relational::LocalEngine*> MultidatabaseSystem::GetEngine(
    std::string_view service) {
  MSQL_ASSIGN_OR_RETURN(netsim::Lam * lam, env_.GetLam(service));
  return lam->engine();
}

void MultidatabaseSystem::set_collect_plans(bool on) {
  collect_plans_ = on;
  for (const auto& name : env_.ServiceNames()) {
    auto lam = env_.GetLam(name);
    if (lam.ok()) (*lam)->engine()->set_collect_plan_text(on);
  }
}

Status MultidatabaseSystem::RunLocalSql(std::string_view service,
                                        std::string_view database,
                                        std::string_view sql_script) {
  MSQL_ASSIGN_OR_RETURN(relational::LocalEngine * engine,
                        GetEngine(service));
  MSQL_ASSIGN_OR_RETURN(auto statements,
                        relational::ParseSqlScript(sql_script));
  MSQL_ASSIGN_OR_RETURN(relational::SessionId session,
                        engine->OpenSession(database));
  for (const auto& stmt : statements) {
    auto result = engine->ExecuteStatement(session, *stmt);
    if (!result.ok()) {
      (void)engine->CloseSession(session);
      return result.status();
    }
  }
  return engine->CloseSession(session);
}

Result<MsqlQuery> MultidatabaseSystem::ResolveScope(const MsqlQuery& query) {
  MsqlQuery resolved = query.CloneQuery();
  // Virtual databases: a USE entry naming a multidatabase stands for its
  // members (VITAL distributes over them; aliases cannot rename a set).
  {
    std::vector<lang::UseEntry> expanded;
    for (const auto& entry : resolved.use.entries) {
      if (!gdd_.HasMultidatabase(entry.database)) {
        expanded.push_back(entry);
        continue;
      }
      if (!entry.alias.empty()) {
        return Status::InvalidArgument(
            "multidatabase '" + entry.database +
            "' cannot be aliased in a USE scope");
      }
      MSQL_ASSIGN_OR_RETURN(const std::vector<std::string>* members,
                            gdd_.GetMultidatabase(entry.database));
      for (const auto& member : *members) {
        lang::UseEntry member_entry;
        member_entry.database = member;
        member_entry.vital = entry.vital;
        expanded.push_back(std::move(member_entry));
      }
    }
    resolved.use.entries = std::move(expanded);
  }
  if (resolved.use.current) {
    // Inherit the session scope, then append the newly named databases
    // that are not already in it.
    std::vector<lang::UseEntry> merged = current_scope_.entries;
    for (const auto& entry : resolved.use.entries) {
      bool exists = false;
      for (const auto& have : merged) {
        if (EqualsIgnoreCase(have.EffectiveName(), entry.EffectiveName())) {
          exists = true;
          break;
        }
      }
      if (!exists) merged.push_back(entry);
    }
    resolved.use.entries = std::move(merged);
    resolved.use.current = false;
  }
  if (resolved.use.entries.empty()) {
    return Status::InvalidArgument(
        "no query scope: issue a USE statement naming the databases");
  }
  current_scope_ = resolved.use;
  return resolved;
}

Result<ExecutionReport> MultidatabaseSystem::Execute(
    std::string_view msql_text) {
  obs::Tracer& tracer = env_.tracer();
  const bool top_level = tracer.enabled() && tracer.current_parent() == 0;
  SnapshotProfileCounters(top_level);
  obs::ScopedSpan exec_span(&tracer, "msql.execute", "frontend", 0);
  Result<lang::MsqlInput> parsed = [&] {
    obs::ScopedSpan parse_span(&tracer, "msql.parse", "frontend", 0);
    return lang::MsqlParser::ParseOne(msql_text);
  }();
  MSQL_RETURN_IF_ERROR(parsed.status());
  lang::MsqlInput& input = *parsed;
  exec_span.Annotate("kind", InputKindName(input.kind));
  auto report = ExecuteInput(input);
  if (report.ok()) {
    FinishInputSpan(&exec_span, top_level, &*report);
    LogInput(input.kind, *report);
  }
  return report;
}

Result<ExecutionReport> MultidatabaseSystem::ExecuteInput(
    const lang::MsqlInput& input) {
  switch (input.kind) {
    case lang::MsqlInput::Kind::kQuery:
      return ExecuteQuery(*input.query);
    case lang::MsqlInput::Kind::kMultiTransaction:
      return ExecuteMultiTransaction(*input.multitransaction);
    case lang::MsqlInput::Kind::kIncorporate: {
      MSQL_RETURN_IF_ERROR(ExecuteIncorporate(*input.incorporate));
      ExecutionReport report;
      report.outcome = GlobalOutcome::kSuccess;
      return report;
    }
    case lang::MsqlInput::Kind::kImport: {
      MSQL_ASSIGN_OR_RETURN(auto imported, ExecuteImport(*input.import));
      (void)imported;
      ExecutionReport report;
      report.outcome = GlobalOutcome::kSuccess;
      return report;
    }
    case lang::MsqlInput::Kind::kAnalyze: {
      MSQL_ASSIGN_OR_RETURN(auto analyzed, ExecuteAnalyze(*input.analyze));
      (void)analyzed;
      ExecutionReport report;
      report.outcome = GlobalOutcome::kSuccess;
      return report;
    }
    case lang::MsqlInput::Kind::kCreateMultidatabase:
      MSQL_RETURN_IF_ERROR(
          ExecuteCreateMultidatabase(*input.create_multidatabase));
      return ExecutionReport{};
    case lang::MsqlInput::Kind::kDropMultidatabase:
      MSQL_RETURN_IF_ERROR(
          ExecuteDropMultidatabase(*input.drop_multidatabase));
      return ExecutionReport{};
    case lang::MsqlInput::Kind::kCreateView:
      MSQL_RETURN_IF_ERROR(ExecuteCreateView(*input.create_view));
      return ExecutionReport{};
    case lang::MsqlInput::Kind::kDropView:
      MSQL_RETURN_IF_ERROR(ExecuteDropView(*input.drop_view));
      return ExecutionReport{};
    case lang::MsqlInput::Kind::kCreateTrigger:
      MSQL_RETURN_IF_ERROR(ExecuteCreateTrigger(*input.create_trigger));
      return ExecutionReport{};
    case lang::MsqlInput::Kind::kDropTrigger:
      MSQL_RETURN_IF_ERROR(ExecuteDropTrigger(*input.drop_trigger));
      return ExecutionReport{};
  }
  return Status::Internal("unhandled MSQL input kind");
}

Result<std::vector<ExecutionReport>> MultidatabaseSystem::ExecuteScript(
    std::string_view msql_text) {
  MSQL_ASSIGN_OR_RETURN(auto inputs,
                        lang::MsqlParser::ParseScript(msql_text));
  std::vector<ExecutionReport> reports;
  for (const auto& input : inputs) {
    switch (input.kind) {
      case lang::MsqlInput::Kind::kQuery: {
        MSQL_ASSIGN_OR_RETURN(auto report, ExecuteQuery(*input.query));
        LogInput(input.kind, report);
        reports.push_back(std::move(report));
        break;
      }
      case lang::MsqlInput::Kind::kMultiTransaction: {
        MSQL_ASSIGN_OR_RETURN(auto report,
                              ExecuteMultiTransaction(*input.multitransaction));
        LogInput(input.kind, report);
        reports.push_back(std::move(report));
        break;
      }
      case lang::MsqlInput::Kind::kIncorporate:
        MSQL_RETURN_IF_ERROR(ExecuteIncorporate(*input.incorporate));
        reports.emplace_back();
        break;
      case lang::MsqlInput::Kind::kImport: {
        MSQL_ASSIGN_OR_RETURN(auto imported, ExecuteImport(*input.import));
        (void)imported;
        reports.emplace_back();
        break;
      }
      case lang::MsqlInput::Kind::kAnalyze: {
        MSQL_ASSIGN_OR_RETURN(auto analyzed,
                              ExecuteAnalyze(*input.analyze));
        (void)analyzed;
        reports.emplace_back();
        break;
      }
      case lang::MsqlInput::Kind::kCreateMultidatabase:
        MSQL_RETURN_IF_ERROR(
            ExecuteCreateMultidatabase(*input.create_multidatabase));
        reports.emplace_back();
        break;
      case lang::MsqlInput::Kind::kDropMultidatabase:
        MSQL_RETURN_IF_ERROR(
            ExecuteDropMultidatabase(*input.drop_multidatabase));
        reports.emplace_back();
        break;
      case lang::MsqlInput::Kind::kCreateView:
        MSQL_RETURN_IF_ERROR(ExecuteCreateView(*input.create_view));
        reports.emplace_back();
        break;
      case lang::MsqlInput::Kind::kDropView:
        MSQL_RETURN_IF_ERROR(ExecuteDropView(*input.drop_view));
        reports.emplace_back();
        break;
      case lang::MsqlInput::Kind::kCreateTrigger:
        MSQL_RETURN_IF_ERROR(ExecuteCreateTrigger(*input.create_trigger));
        reports.emplace_back();
        break;
      case lang::MsqlInput::Kind::kDropTrigger:
        MSQL_RETURN_IF_ERROR(ExecuteDropTrigger(*input.drop_trigger));
        reports.emplace_back();
        break;
    }
  }
  return reports;
}

Status MultidatabaseSystem::ExecuteIncorporate(
    const lang::IncorporateStmt& stmt) {
  mdbs::ServiceDescriptor descriptor;
  descriptor.name = stmt.service;
  descriptor.site = stmt.site;
  descriptor.connect_mode = stmt.connect_mode;
  descriptor.autocommit_only = stmt.autocommit_only;
  descriptor.ddl_modes.create_autocommits = stmt.create_autocommits;
  descriptor.ddl_modes.insert_autocommits = stmt.insert_autocommits;
  descriptor.ddl_modes.drop_autocommits = stmt.drop_autocommits;
  return mdbs::IncorporateService(&env_, &ad_, std::move(descriptor));
}

Result<std::vector<std::string>> MultidatabaseSystem::ExecuteImport(
    const lang::ImportStmt& stmt) {
  mdbs::ImportSpec spec;
  spec.database = stmt.database;
  spec.service = stmt.service;
  spec.table = stmt.table;
  spec.view = stmt.view;
  spec.columns = stmt.columns;
  return mdbs::ImportDatabase(&env_, ad_, &gdd_, spec);
}

Result<std::vector<std::string>> MultidatabaseSystem::ExecuteAnalyze(
    const lang::AnalyzeStmt& stmt) {
  mdbs::AnalyzeSpec spec;
  spec.database = stmt.database;
  spec.table = stmt.table;
  return mdbs::AnalyzeDatabase(&env_, ad_, &gdd_, spec);
}

lang::CostContext MultidatabaseSystem::BuildCostContext() const {
  lang::CostContext ctx;
  ctx.mdbs_site = env_.coordinator_site();
  for (const auto& db_name : gdd_.DatabaseNames()) {
    auto db = gdd_.GetDatabase(db_name);
    if (!db.ok()) continue;
    auto entry = env_.GetServiceEntry((*db)->service);
    if (entry.ok()) {
      const std::string& site = (*entry)->site_name;
      ctx.site_of_db[db_name] = site;
      const netsim::LinkParams to =
          env_.network().GetLink(ctx.mdbs_site, site);
      ctx.links[{ctx.mdbs_site, site}] =
          lang::LinkCost{to.latency_micros, to.micros_per_kb};
      const netsim::LinkParams from =
          env_.network().GetLink(site, ctx.mdbs_site);
      ctx.links[{site, ctx.mdbs_site}] =
          lang::LinkCost{from.latency_micros, from.micros_per_kb};
    }
    // Median, not mean: bulk catalog calls (IMPORT/ANALYZE responses
    // carry whole schemas or scans) would otherwise inflate a healthy
    // site's observed latency and skew movement decisions against it.
    const obs::SiteHealth* health = env_.health().Get((*db)->service);
    if (health != nullptr && health->latency().count() > 0) {
      ctx.observed_latency_micros[db_name] =
          static_cast<double>(health->latency().Quantile(0.5));
    }
    // Only fresh snapshots enter the context: a missing entry is the
    // decomposer's signal to fall back to the paper heuristics.
    for (const auto& [table_name, stats] : (*db)->stats) {
      if (!gdd_.TableStatsFresh(db_name, table_name)) continue;
      lang::TableCostStats ts;
      ts.row_count = stats.row_count;
      ts.avg_row_bytes = stats.avg_row_bytes;
      for (const auto& [col_name, col] : stats.columns) {
        ts.columns[col_name] = lang::ColumnCostStats{
            col.distinct_values, col.avg_width_bytes};
      }
      ctx.stats[{db_name, table_name}] = std::move(ts);
    }
  }
  return ctx;
}

Result<ExecutionReport> MultidatabaseSystem::ExecuteQuery(
    const MsqlQuery& query) {
  obs::Tracer& tracer = env_.tracer();
  const bool top_level = tracer.enabled() && tracer.current_parent() == 0;
  SnapshotProfileCounters(top_level);
  obs::ScopedSpan query_span(&tracer, "msql.query", "frontend", 0);
  auto report = ExecuteQueryImpl(query);
  if (report.ok()) FinishInputSpan(&query_span, top_level, &*report);
  return report;
}

Result<ExecutionReport> MultidatabaseSystem::ExecuteQueryImpl(
    const MsqlQuery& query) {
  // A SELECT whose single FROM table names a multidatabase view is
  // answered from the view definition (before scope resolution — the
  // stored query carries its own USE).
  if (query.body->kind() == StatementKind::kSelect) {
    const auto& select =
        static_cast<const relational::SelectStmt&>(*query.body);
    if (select.from.size() == 1 && select.from[0].database.empty() &&
        views_.count(ToLower(select.from[0].table)) > 0) {
      return ExecuteViewQuery(query, ToLower(select.from[0].table));
    }
  }

  MSQL_ASSIGN_OR_RETURN(PreparedInput prepared, PrepareQuery(query));
  if (prepared.immediate.has_value()) return *std::move(prepared.immediate);
  MSQL_RETURN_IF_ERROR(VerifyPreparedPlan(prepared.plan));
  dol::DolEngine engine(&env_, retry_policy_);
  auto run = engine.Run(prepared.plan.program);
  return FinishPreparedRun(std::move(prepared), std::move(run));
}

Result<PreparedInput> MultidatabaseSystem::Prepare(
    std::string_view msql_text) {
  MSQL_ASSIGN_OR_RETURN(auto inputs, lang::MsqlParser::ParseScript(msql_text));
  if (inputs.size() != 1) {
    return Status::InvalidArgument(
        "Prepare expects exactly one MSQL input, got " +
        std::to_string(inputs.size()));
  }
  return PrepareInput(inputs[0]);
}

Result<PreparedInput> MultidatabaseSystem::PrepareInput(
    const lang::MsqlInput& input) {
  switch (input.kind) {
    case lang::MsqlInput::Kind::kQuery:
      return PrepareQuery(*input.query);
    case lang::MsqlInput::Kind::kMultiTransaction:
      return PrepareMultiTransaction(*input.multitransaction);
    default:
      return Status::InvalidArgument(
          "only queries and multitransactions can be prepared for "
          "concurrent execution");
  }
}

Result<PreparedInput> MultidatabaseSystem::PrepareQuery(
    const MsqlQuery& query) {
  // View queries re-enter the serial front end per multitable element;
  // they do not compile down to a single plan.
  if (query.body->kind() == StatementKind::kSelect) {
    const auto& select =
        static_cast<const relational::SelectStmt&>(*query.body);
    if (select.from.size() == 1 && select.from[0].database.empty() &&
        views_.count(ToLower(select.from[0].table)) > 0) {
      return Status::InvalidArgument(
          "multidatabase view queries execute serially and cannot be "
          "prepared");
    }
  }

  PreparedInput prepared;
  prepared.kind = lang::MsqlInput::Kind::kQuery;
  MSQL_ASSIGN_OR_RETURN(MsqlQuery resolved, ResolveScope(query));
  translator::Translator translator(&ad_, &gdd_);

  // Multidatabase join: decompose instead of expanding.
  if (resolved.body->kind() == StatementKind::kSelect) {
    const auto& select =
        static_cast<const relational::SelectStmt&>(*resolved.body);
    if (lang::Decomposer::IsMultidatabase(select)) {
      lang::Decomposer decomposer(&gdd_);
      lang::CostContext cost_context;
      if (cost_based_optimizer_) {
        cost_context = BuildCostContext();
        decomposer.set_cost_based(true);
        decomposer.set_cost_context(&cost_context);
      }
      obs::ScopedSpan decompose_span(&env_.tracer(), "msql.decompose",
                                     "frontend", 0);
      MSQL_ASSIGN_OR_RETURN(auto decomposition,
                            decomposer.Decompose(select));
      decompose_span.End();
      prepared.cost_text = decomposition.cost_text;
      obs::ScopedSpan translate_span(&env_.tracer(), "msql.translate",
                                     "frontend", 0);
      MSQL_ASSIGN_OR_RETURN(
          prepared.plan, translator.TranslateDecomposedJoin(decomposition));
      translate_span.End();
      return prepared;
    }
  }

  // Cross-database data transfer: INSERT INTO db1.t SELECT ... FROM db2.s.
  if (resolved.body->kind() == StatementKind::kInsert) {
    const auto& insert =
        static_cast<const relational::InsertStmt&>(*resolved.body);
    bool qualified_select = false;
    if (insert.select_source != nullptr) {
      for (const auto& ref : insert.select_source->from) {
        if (!ref.database.empty()) qualified_select = true;
      }
    }
    if (qualified_select && !insert.table.database.empty()) {
      obs::ScopedSpan translate_span(&env_.tracer(), "msql.translate",
                                     "frontend", 0);
      MSQL_ASSIGN_OR_RETURN(prepared.plan,
                            translator.TranslateDataTransfer(insert));
      translate_span.End();
      prepared.data_transfer = true;
      return prepared;
    }
  }

  // Static semantic check (DESIGN.md §8) before expansion burns any
  // simulated-network round trips. An unenforceable vital set (MS111)
  // is a refusal — the run-time translator path reports it the same
  // way — while any other error is a hard failure.
  obs::ScopedSpan check_span(&env_.tracer(), "msql.check", "frontend", 0);
  analysis::DiagnosticList diags = analysis::CheckQuery(resolved, gdd_, ad_);
  check_span.End();
  if (diags.has_errors()) {
    if (diags.Find(analysis::diag::kVitalSetUnenforceable) != nullptr) {
      ExecutionReport report;
      report.outcome = GlobalOutcome::kRefused;
      report.detail = Status::Refused(diags.RenderAll());
      prepared.immediate = std::move(report);
      return prepared;
    }
    return diags.ToStatus();
  }

  lang::Expander expander(&gdd_);
  obs::ScopedSpan expand_span(&env_.tracer(), "msql.expand", "frontend", 0);
  MSQL_ASSIGN_OR_RETURN(ExpansionResult expansion,
                        expander.Expand(resolved));
  expand_span.End();

  // A VITAL database with no pertinent subquery makes the requested
  // consistency unobtainable: refuse, like any unenforceable vital set.
  for (const auto& entry : resolved.use.entries) {
    if (!entry.vital) continue;
    for (const auto& skipped : expansion.non_pertinent) {
      if (EqualsIgnoreCase(skipped, entry.EffectiveName())) {
        ExecutionReport report;
        report.outcome = GlobalOutcome::kRefused;
        report.detail = Status::Refused(
            "VITAL database '" + entry.EffectiveName() +
            "' has no pertinent subquery in this multiple query");
        report.non_pertinent = expansion.non_pertinent;
        prepared.immediate = std::move(report);
        return prepared;
      }
    }
  }

  obs::ScopedSpan translate_span(&env_.tracer(), "msql.translate",
                                 "frontend", 0);
  auto plan = translator.TranslateQuery(expansion);
  translate_span.End();
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kRefused) {
      ExecutionReport report;
      report.outcome = GlobalOutcome::kRefused;
      report.detail = plan.status();
      report.non_pertinent = expansion.non_pertinent;
      prepared.immediate = std::move(report);
      return prepared;
    }
    return plan.status();
  }
  prepared.plan = std::move(*plan);
  prepared.non_pertinent = expansion.non_pertinent;
  prepared.warnings = diags.items();  // surviving findings are warnings
  prepared.fire_triggers = true;
  prepared.expansion = std::move(expansion);
  return prepared;
}

Result<ExecutionReport> MultidatabaseSystem::ExecuteMultiTransaction(
    const lang::MultiTransaction& mt) {
  obs::Tracer& tracer = env_.tracer();
  const bool top_level = tracer.enabled() && tracer.current_parent() == 0;
  SnapshotProfileCounters(top_level);
  obs::ScopedSpan mt_span(&tracer, "msql.multitransaction", "frontend", 0);
  auto report = ExecuteMultiTransactionImpl(mt);
  if (report.ok()) FinishInputSpan(&mt_span, top_level, &*report);
  return report;
}

Result<ExecutionReport> MultidatabaseSystem::ExecuteMultiTransactionImpl(
    const lang::MultiTransaction& mt) {
  MSQL_ASSIGN_OR_RETURN(PreparedInput prepared, PrepareMultiTransaction(mt));
  if (prepared.immediate.has_value()) return *std::move(prepared.immediate);
  MSQL_RETURN_IF_ERROR(VerifyPreparedPlan(prepared.plan));
  dol::DolEngine engine(&env_, retry_policy_);
  auto run = engine.Run(prepared.plan.program);
  return FinishPreparedRun(std::move(prepared), std::move(run));
}

Result<PreparedInput> MultidatabaseSystem::PrepareMultiTransaction(
    const lang::MultiTransaction& mt) {
  PreparedInput prepared;
  prepared.kind = lang::MsqlInput::Kind::kMultiTransaction;
  translator::Translator translator(&ad_, &gdd_);
  lang::Expander expander(&gdd_);
  std::vector<ExpansionResult> expansions;
  std::vector<analysis::Diagnostic> warnings;
  for (const auto& query : mt.queries) {
    MSQL_ASSIGN_OR_RETURN(MsqlQuery resolved, ResolveScope(query));
    obs::ScopedSpan check_span(&env_.tracer(), "msql.check", "frontend", 0);
    analysis::DiagnosticList diags =
        analysis::CheckQuery(resolved, gdd_, ad_);
    check_span.End();
    if (diags.has_errors()) {
      if (diags.Find(analysis::diag::kVitalSetUnenforceable) != nullptr) {
        ExecutionReport report;
        report.outcome = GlobalOutcome::kRefused;
        report.detail = Status::Refused(diags.RenderAll());
        prepared.immediate = std::move(report);
        return prepared;
      }
      return diags.ToStatus();
    }
    for (const auto& d : diags.items()) warnings.push_back(d);
    obs::ScopedSpan expand_span(&env_.tracer(), "msql.expand", "frontend", 0);
    MSQL_ASSIGN_OR_RETURN(ExpansionResult expansion,
                          expander.Expand(resolved));
    expand_span.End();
    expansions.push_back(std::move(expansion));
  }
  obs::ScopedSpan translate_span(&env_.tracer(), "msql.translate",
                                 "frontend", 0);
  auto plan =
      translator.TranslateMultiTransaction(expansions, mt.acceptable_states);
  translate_span.End();
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kRefused) {
      ExecutionReport report;
      report.outcome = GlobalOutcome::kRefused;
      report.detail = plan.status();
      prepared.immediate = std::move(report);
      return prepared;
    }
    return plan.status();
  }
  std::vector<std::string> non_pertinent;
  for (const auto& expansion : expansions) {
    non_pertinent.insert(non_pertinent.end(),
                         expansion.non_pertinent.begin(),
                         expansion.non_pertinent.end());
  }
  prepared.plan = std::move(*plan);
  prepared.non_pertinent = std::move(non_pertinent);
  prepared.warnings = std::move(warnings);
  prepared.mt_expansions = std::move(expansions);
  return prepared;
}

Status MultidatabaseSystem::VerifyPreparedPlan(
    const translator::Plan& plan) {
  // Translator-bug oracle: every generated plan must pass the DOL
  // verifier before it is allowed near the federation. A rejection here
  // is a defect in the translator, not in the user's program.
  obs::ScopedSpan verify_span(&env_.tracer(), "msql.verify", "frontend", 0);
  analysis::DiagnosticList verdict = analysis::VerifyPlan(plan);
  if (verdict.has_errors()) {
    return Status::Internal(
        "translator emitted a DOL plan the verifier rejects "
        "(translator bug):\n" +
        verdict.RenderAll() + "\n--- plan ---\n" + plan.program.ToDol());
  }
  return Status::OK();
}

ExecutionReport MultidatabaseSystem::AssembleRunReport(
    const translator::Plan& plan, std::vector<std::string> non_pertinent,
    Result<dol::DolRunResult> run) {
  ExecutionReport report;
  report.dol_text = plan.program.ToDol();
  report.non_pertinent = std::move(non_pertinent);

  if (!run.ok()) {
    // Program-level failure (failed compensation, protocol violation):
    // the multidatabase state may be incorrect.
    report.outcome = GlobalOutcome::kIncorrect;
    report.detail = run.status();
    report.dol_status = translator::PlanStatus::kIncorrect;
    return report;
  }
  report.run = std::move(*run);
  report.dol_status = report.run.dol_status;
  report.retries_performed = report.run.retries;
  report.reprobes_performed = report.run.reprobes;
  switch (report.dol_status) {
    case translator::PlanStatus::kSuccess:
      report.outcome = GlobalOutcome::kSuccess;
      break;
    case translator::PlanStatus::kAborted:
      report.outcome = GlobalOutcome::kAborted;
      break;
    default:
      report.outcome = GlobalOutcome::kIncorrect;
      break;
  }

  // Per-database verdicts: how each planned task ended (the query log's
  // audit row and the profiler's vital-flag source).
  for (const auto& planned : plan.tasks) {
    DatabaseVerdict verdict;
    verdict.database = planned.effective_name;
    verdict.service = planned.service;
    verdict.task = planned.task;
    verdict.vital = planned.vital;
    const dol::TaskOutcome* task = report.run.FindTask(planned.task);
    if (task != nullptr) verdict.state = task->state;
    report.verdicts.push_back(std::move(verdict));
  }

  // Graceful degradation (§3.2.1): a NON-VITAL subquery lost to
  // unavailability never binds the decision, but the report names the
  // missing services so a degraded run is diagnosable.
  for (const auto& planned : plan.tasks) {
    if (planned.vital) continue;
    const dol::TaskOutcome* task = report.run.FindTask(planned.task);
    if (task == nullptr || task->state != dol::DolTaskState::kAborted) {
      continue;
    }
    if (task->last_status.code() == StatusCode::kUnavailable) {
      report.degraded_services.push_back(planned.service);
    }
  }
  if (report.detail.ok() &&
      (!report.degraded_services.empty() ||
       !report.run.failed_channels.empty())) {
    std::string note = "degraded run:";
    for (const auto& svc : report.degraded_services) {
      note += " service '" + svc + "' unavailable;";
    }
    for (const auto& [alias, status] : report.run.failed_channels) {
      note += " channel '" + alias + "' open failed (" +
              status.ToString() + ");";
    }
    report.detail = Status::Unavailable(std::move(note));
  }

  // Assemble retrieval results.
  if (plan.retrieval) {
    if (!plan.global_task.empty()) {
      report.is_join = true;
      const dol::TaskOutcome* task = report.run.FindTask(plan.global_task);
      if (task != nullptr &&
          task->state == dol::DolTaskState::kCommitted) {
        report.join_result = task->result;
      }
    } else {
      for (const auto& planned : plan.tasks) {
        const dol::TaskOutcome* task = report.run.FindTask(planned.task);
        if (task == nullptr ||
            task->state != dol::DolTaskState::kCommitted) {
          continue;
        }
        lang::Multitable::Element element;
        element.database = planned.effective_name;
        element.table = task->result;
        report.multitable.elements.push_back(std::move(element));
      }
    }
  }

  // Gather the local physical plans the SELECT tasks reported (plan
  // collection on). The tasks map is name-sorted, so the rendering is
  // deterministic.
  for (const auto& [name, task] : report.run.tasks) {
    if (task.result.plan_text.empty()) continue;
    report.plan_text += "task " + name + ":\n" + task.result.plan_text;
  }
  return report;
}

Result<ExecutionReport> MultidatabaseSystem::FinishPreparedRun(
    PreparedInput prepared, Result<dol::DolRunResult> run) {
  const bool ran = run.ok();
  ExecutionReport report = AssembleRunReport(
      prepared.plan, std::move(prepared.non_pertinent), std::move(run));
  if (prepared.data_transfer) {
    const dol::TaskOutcome* extract = report.run.FindTask("t_extract");
    if (extract != nullptr) {
      report.rows_transferred =
          static_cast<int64_t>(extract->result.rows.size());
    }
    report.multitable.elements.clear();  // not a retrieval answer
  }
  report.diagnostics = std::move(prepared.warnings);
  report.cost_text = std::move(prepared.cost_text);
  if (ran && prepared.expansion.has_value()) {
    MSQL_RETURN_IF_ERROR(
        SyncGddAfterDdl(prepared.plan, report.run, *prepared.expansion));
    RecordDmlChurn(*prepared.expansion, report.run);
  }
  for (const auto& expansion : prepared.mt_expansions) {
    MSQL_RETURN_IF_ERROR(SyncGddAfterDdl(translator::Plan{}, report.run,
                                         expansion));
    if (ran) RecordDmlChurn(expansion, report.run);
  }
  if (prepared.fire_triggers && prepared.expansion.has_value()) {
    MSQL_RETURN_IF_ERROR(FireTriggers(*prepared.expansion, &report));
  }
  return report;
}

Status MultidatabaseSystem::SyncGddAfterDdl(
    const translator::Plan& plan, const dol::DolRunResult& run,
    const ExpansionResult& expansion) {
  (void)plan;
  for (const auto& eq : expansion.queries) {
    StatementKind kind = eq.statement->kind();
    if (kind != StatementKind::kCreateTable &&
        kind != StatementKind::kDropTable) {
      continue;
    }
    const dol::TaskOutcome* task = run.FindTask("t_" + eq.effective_name);
    if (task == nullptr || task->state != dol::DolTaskState::kCommitted) {
      continue;
    }
    if (kind == StatementKind::kCreateTable) {
      const auto& create =
          static_cast<const relational::CreateTableStmt&>(*eq.statement);
      std::vector<relational::ColumnDef> cols;
      for (const auto& spec : create.columns) {
        relational::ColumnDef def;
        def.name = spec.name;
        MSQL_ASSIGN_OR_RETURN(def.type,
                              relational::TypeFromName(spec.type_name));
        def.width = spec.width;
        cols.push_back(std::move(def));
      }
      MSQL_ASSIGN_OR_RETURN(
          auto schema,
          relational::TableSchema::Create(create.table.table,
                                          std::move(cols)));
      MSQL_RETURN_IF_ERROR(gdd_.PutTable(eq.database, std::move(schema)));
    } else {
      const auto& drop =
          static_cast<const relational::DropTableStmt&>(*eq.statement);
      MSQL_RETURN_IF_ERROR(gdd_.RemoveTable(eq.database, drop.table.table));
    }
  }
  return Status::OK();
}

void MultidatabaseSystem::RecordDmlChurn(
    const lang::ExpansionResult& expansion, const dol::DolRunResult& run) {
  for (const auto& eq : expansion.queries) {
    StatementKind kind = eq.statement->kind();
    const std::string* table = nullptr;
    switch (kind) {
      case StatementKind::kInsert:
        table = &static_cast<const relational::InsertStmt&>(*eq.statement)
                     .table.table;
        break;
      case StatementKind::kUpdate:
        table = &static_cast<const relational::UpdateStmt&>(*eq.statement)
                     .table.table;
        break;
      case StatementKind::kDelete:
        table = &static_cast<const relational::DeleteStmt&>(*eq.statement)
                     .table.table;
        break;
      default:
        continue;
    }
    const dol::TaskOutcome* task = run.FindTask("t_" + eq.effective_name);
    if (task == nullptr || task->state != dol::DolTaskState::kCommitted) {
      continue;
    }
    // Even a no-op DML statement proves the snapshot can drift; count at
    // least one row so repeated writes eventually trip the threshold.
    gdd_.RecordWriteChurn(eq.database, *table,
                          std::max<int64_t>(task->result.rows_affected, 1));
  }
}

Status MultidatabaseSystem::ExecuteCreateMultidatabase(
    const lang::CreateMultidatabaseStmt& s) {
  if (views_.count(ToLower(s.name)) > 0) {
    return Status::AlreadyExists("'" + s.name + "' already names a view");
  }
  return gdd_.CreateMultidatabase(s.name, s.members);
}

Status MultidatabaseSystem::ExecuteDropMultidatabase(
    const lang::DropMultidatabaseStmt& s) {
  return gdd_.DropMultidatabase(s.name);
}

Status MultidatabaseSystem::ExecuteCreateView(
    const lang::CreateViewStmt& s) {
  std::string key = ToLower(s.name);
  if (views_.count(key) > 0) {
    return Status::AlreadyExists("multidatabase view '" + key +
                                 "' already exists");
  }
  if (gdd_.HasDatabase(key) || gdd_.HasMultidatabase(key)) {
    return Status::AlreadyExists("'" + key +
                                 "' already names a (multi)database");
  }
  if (s.definition->use.current) {
    return Status::InvalidArgument(
        "a multidatabase view definition must carry its own USE scope");
  }
  views_.emplace(key, s.definition);
  return Status::OK();
}

Status MultidatabaseSystem::ExecuteDropView(const lang::DropViewStmt& s) {
  if (views_.erase(ToLower(s.name)) == 0) {
    return Status::NotFound("multidatabase view '" + s.name +
                            "' does not exist");
  }
  return Status::OK();
}

bool MultidatabaseSystem::HasView(std::string_view name) const {
  return views_.count(ToLower(name)) > 0;
}

Status MultidatabaseSystem::ExecuteCreateTrigger(
    const lang::CreateTriggerStmt& s) {
  std::string key = ToLower(s.name);
  if (triggers_.count(key) > 0) {
    return Status::AlreadyExists("trigger '" + key + "' already exists");
  }
  if (!gdd_.HasTable(s.database, s.table)) {
    return Status::NotFound("trigger target '" + s.database + "." +
                            s.table + "' is not in the GDD");
  }
  lang::CreateTriggerStmt stored = s;
  stored.name = key;
  stored.database = ToLower(s.database);
  stored.table = ToLower(s.table);
  triggers_.emplace(key, std::move(stored));
  return Status::OK();
}

Status MultidatabaseSystem::ExecuteDropTrigger(
    const lang::DropTriggerStmt& s) {
  if (triggers_.erase(ToLower(s.name)) == 0) {
    return Status::NotFound("trigger '" + s.name + "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> MultidatabaseSystem::TriggerNames() const {
  std::vector<std::string> out;
  out.reserve(triggers_.size());
  for (const auto& [name, trigger] : triggers_) out.push_back(name);
  return out;
}

namespace {

/// Table name a committed DML statement wrote to ("" for non-DML).
std::string DmlTargetTable(const relational::Statement& stmt) {
  switch (stmt.kind()) {
    case StatementKind::kUpdate:
      return static_cast<const relational::UpdateStmt&>(stmt).table.table;
    case StatementKind::kInsert:
      return static_cast<const relational::InsertStmt&>(stmt).table.table;
    case StatementKind::kDelete:
      return static_cast<const relational::DeleteStmt&>(stmt).table.table;
    default:
      return "";
  }
}

bool EventMatches(lang::TriggerEvent event, StatementKind kind) {
  switch (event) {
    case lang::TriggerEvent::kUpdate:
      return kind == StatementKind::kUpdate;
    case lang::TriggerEvent::kInsert:
      return kind == StatementKind::kInsert;
    case lang::TriggerEvent::kDelete:
      return kind == StatementKind::kDelete;
  }
  return false;
}

}  // namespace

Status MultidatabaseSystem::FireTriggers(
    const lang::ExpansionResult& expansion, ExecutionReport* report) {
  if (triggers_.empty()) return Status::OK();
  constexpr int kMaxTriggerDepth = 4;
  // Snapshot the matching triggers first: an action may itself CREATE or
  // DROP triggers, which must not perturb this firing round (the action
  // holds a shared_ptr, so a dropped trigger's query stays alive).
  struct Pending {
    std::string name;
    std::shared_ptr<lang::MsqlQuery> action;
  };
  std::vector<Pending> pending;
  for (const auto& eq : expansion.queries) {
    std::string table = DmlTargetTable(*eq.statement);
    if (table.empty()) continue;
    const dol::TaskOutcome* task =
        report->run.FindTask("t_" + eq.effective_name);
    if (task == nullptr || task->state != dol::DolTaskState::kCommitted) {
      continue;
    }
    for (const auto& [name, trigger] : triggers_) {
      if (trigger.database == eq.database && trigger.table == table &&
          EventMatches(trigger.event, eq.statement->kind())) {
        pending.push_back(Pending{name, trigger.action});
      }
    }
  }
  for (const auto& fire : pending) {
    if (trigger_depth_ >= kMaxTriggerDepth) {
      return Status::InvalidArgument(
          "interdatabase trigger cascade exceeds depth " +
          std::to_string(kMaxTriggerDepth) + " at trigger '" + fire.name +
          "'");
    }
    ++trigger_depth_;
    auto action_report = ExecuteQuery(*fire.action);
    --trigger_depth_;
    MSQL_RETURN_IF_ERROR(action_report.status());
    report->fired_triggers.push_back(fire.name);
    // Triggers fired by the action itself are reported too.
    for (const auto& nested : action_report->fired_triggers) {
      report->fired_triggers.push_back(nested);
    }
  }
  return Status::OK();
}

Result<ExecutionReport> MultidatabaseSystem::ExecuteViewQuery(
    const MsqlQuery& query, const std::string& view_name) {
  constexpr int kMaxViewDepth = 8;
  if (view_depth_ >= kMaxViewDepth) {
    return Status::InvalidArgument(
        "multidatabase views nest deeper than " +
        std::to_string(kMaxViewDepth) + " (cycle through '" + view_name +
        "'?)");
  }
  auto view_it = views_.find(view_name);
  if (view_it == views_.end()) {
    return Status::NotFound("view '" + view_name + "' vanished");
  }
  ++view_depth_;
  auto base = ExecuteQuery(*view_it->second);
  --view_depth_;
  MSQL_RETURN_IF_ERROR(base.status());
  if (base->outcome != GlobalOutcome::kSuccess) {
    return base;  // propagate the failed retrieval as-is
  }

  // Apply the outer query to every element of the view's multitable:
  // each element becomes a scratch table in a local throwaway engine and
  // the (rewritten) outer SELECT runs against it at the MDBS itself.
  const auto& outer =
      static_cast<const relational::SelectStmt&>(*query.body);
  ExecutionReport report;
  report.outcome = GlobalOutcome::kSuccess;
  report.dol_text = base->dol_text;
  report.run = std::move(base->run);

  for (auto& element : base->multitable.elements) {
    relational::LocalEngine scratch(
        "mdbs_view", relational::CapabilityProfile::IngresLike());
    MSQL_RETURN_IF_ERROR(scratch.CreateDatabase("v"));
    MSQL_ASSIGN_OR_RETURN(relational::Database * db,
                          scratch.GetDatabase("v"));
    // Infer the scratch schema from the element's values (first non-NULL
    // value decides; all-NULL columns degrade to TEXT).
    std::vector<relational::ColumnDef> cols;
    for (size_t c = 0; c < element.table.columns.size(); ++c) {
      relational::ColumnDef def;
      def.name = element.table.columns[c];
      def.type = relational::Type::kText;
      for (const auto& row : element.table.rows) {
        if (c < row.size() && !row[c].is_null()) {
          def.type = row[c].type();
          break;
        }
      }
      cols.push_back(std::move(def));
    }
    MSQL_ASSIGN_OR_RETURN(
        auto schema,
        relational::TableSchema::Create("mdbs_view_data", std::move(cols)));
    MSQL_RETURN_IF_ERROR(db->CreateTable(std::move(schema)));
    MSQL_ASSIGN_OR_RETURN(relational::Table * table,
                          db->GetTable("mdbs_view_data"));
    for (const auto& row : element.table.rows) {
      MSQL_RETURN_IF_ERROR(table->Insert(row).status());
    }
    // Rewrite the outer FROM: the view name becomes an alias of the
    // scratch table so qualified references keep working.
    auto local = outer.CloneSelect();
    local->from[0].database.clear();
    local->from[0].table = "mdbs_view_data";
    if (local->from[0].alias.empty()) local->from[0].alias = view_name;
    MSQL_ASSIGN_OR_RETURN(relational::SessionId session,
                          scratch.OpenSession("v"));
    auto result = scratch.ExecuteStatement(session, *local);
    MSQL_RETURN_IF_ERROR(result.status());
    lang::Multitable::Element out_element;
    out_element.database = element.database;
    out_element.table = std::move(*result);
    report.multitable.elements.push_back(std::move(out_element));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Static analysis entry points (msql_lint, shell \check / \explain)
// ---------------------------------------------------------------------------

Result<AnalysisReport> MultidatabaseSystem::Analyze(
    std::string_view msql_text) {
  obs::Tracer& tracer = env_.tracer();
  obs::ScopedSpan analyze_span(&tracer, "msql.analyze", "frontend", 0);
  Result<lang::MsqlInput> parsed = [&] {
    obs::ScopedSpan parse_span(&tracer, "msql.parse", "frontend", 0);
    return lang::MsqlParser::ParseOne(msql_text);
  }();
  MSQL_RETURN_IF_ERROR(parsed.status());
  analyze_span.Annotate("kind", InputKindName(parsed->kind));
  return AnalyzeInput(*parsed);
}

Result<std::vector<AnalysisReport>> MultidatabaseSystem::AnalyzeScript(
    std::string_view msql_text) {
  MSQL_ASSIGN_OR_RETURN(auto inputs,
                        lang::MsqlParser::ParseScript(msql_text));
  std::vector<AnalysisReport> reports;
  for (const auto& input : inputs) {
    obs::ScopedSpan analyze_span(&env_.tracer(), "msql.analyze", "frontend",
                                 0);
    analyze_span.Annotate("kind", InputKindName(input.kind));
    MSQL_ASSIGN_OR_RETURN(auto report, AnalyzeInput(input));
    reports.push_back(std::move(report));
  }
  // Cross-input pass: inputs of one script are what a deployment runs as
  // concurrent sessions, so check every translated pair for lock-order
  // inversion (DL301). The warning lands on the later input.
  for (size_t j = 1; j < reports.size(); ++j) {
    if (!reports[j].summary) continue;
    for (size_t i = 0; i < j; ++i) {
      if (!reports[i].summary) continue;
      reports[j].diagnostics.Append(analysis::CheckPlanPair(
          *reports[i].summary, *reports[j].summary, i + 1, j + 1));
    }
  }
  return reports;
}

Result<AnalysisReport> MultidatabaseSystem::AnalyzeInput(
    const lang::MsqlInput& input) {
  switch (input.kind) {
    case lang::MsqlInput::Kind::kQuery:
      return AnalyzeQuery(*input.query);
    case lang::MsqlInput::Kind::kMultiTransaction:
      return AnalyzeMultiTransaction(*input.multitransaction);
    default: {
      // Catalog-shaping inputs are executed so later inputs of the same
      // script are checked against the catalogs they would see. They
      // produce no plan, hence nothing further to verify.
      AnalysisReport report;
      switch (input.kind) {
        case lang::MsqlInput::Kind::kIncorporate:
          report.kind = "incorporate";
          report.error = ExecuteIncorporate(*input.incorporate);
          break;
        case lang::MsqlInput::Kind::kImport: {
          report.kind = "import";
          auto imported = ExecuteImport(*input.import);
          if (!imported.ok()) report.error = imported.status();
          break;
        }
        case lang::MsqlInput::Kind::kAnalyze: {
          report.kind = "analyze";
          auto analyzed = ExecuteAnalyze(*input.analyze);
          if (!analyzed.ok()) report.error = analyzed.status();
          break;
        }
        case lang::MsqlInput::Kind::kCreateMultidatabase:
          report.kind = "create multidatabase";
          report.error =
              ExecuteCreateMultidatabase(*input.create_multidatabase);
          break;
        case lang::MsqlInput::Kind::kDropMultidatabase:
          report.kind = "drop multidatabase";
          report.error = ExecuteDropMultidatabase(*input.drop_multidatabase);
          break;
        case lang::MsqlInput::Kind::kCreateView:
          report.kind = "create view";
          report.error = ExecuteCreateView(*input.create_view);
          break;
        case lang::MsqlInput::Kind::kDropView:
          report.kind = "drop view";
          report.error = ExecuteDropView(*input.drop_view);
          break;
        case lang::MsqlInput::Kind::kCreateTrigger:
          report.kind = "create trigger";
          report.error = ExecuteCreateTrigger(*input.create_trigger);
          break;
        case lang::MsqlInput::Kind::kDropTrigger:
          report.kind = "drop trigger";
          report.error = ExecuteDropTrigger(*input.drop_trigger);
          break;
        default:
          report.kind = "input";
          break;
      }
      return report;
    }
  }
}

Result<AnalysisReport> MultidatabaseSystem::AnalyzeQuery(
    const MsqlQuery& query) {
  AnalysisReport report;
  report.kind = "query";

  // Views carry their own USE; analyzing the outer query against the
  // view name would mis-report the view as an unknown table.
  if (query.body->kind() == StatementKind::kSelect) {
    const auto& select =
        static_cast<const relational::SelectStmt&>(*query.body);
    if (select.from.size() == 1 && select.from[0].database.empty() &&
        views_.count(ToLower(select.from[0].table)) > 0) {
      report.kind = "view query";
      return report;
    }
  }

  // Analysis must not move the session scope: restore it afterwards.
  UseClause saved = current_scope_;
  auto resolved_or = ResolveScope(query);
  current_scope_ = std::move(saved);
  if (!resolved_or.ok()) {
    report.error = resolved_or.status();
    return report;
  }
  MsqlQuery resolved = std::move(*resolved_or);
  translator::Translator translator(&ad_, &gdd_);

  // The dispatch mirrors ExecuteQuery: joins and data transfers skip
  // the expansion-path checker (their identifiers are db-qualified).
  if (resolved.body->kind() == StatementKind::kSelect) {
    const auto& select =
        static_cast<const relational::SelectStmt&>(*resolved.body);
    if (lang::Decomposer::IsMultidatabase(select)) {
      report.kind = "decomposed join";
      lang::Decomposer decomposer(&gdd_);
      lang::CostContext cost_context;
      if (cost_based_optimizer_) {
        cost_context = BuildCostContext();
        decomposer.set_cost_based(true);
        decomposer.set_cost_context(&cost_context);
      }
      auto decomposition = decomposer.Decompose(select);
      if (!decomposition.ok()) {
        report.error = decomposition.status();
        return report;
      }
      report.cost_text = (*decomposition).cost_text;
      auto plan = translator.TranslateDecomposedJoin(*decomposition);
      if (!plan.ok()) {
        report.error = plan.status();
        return report;
      }
      report.translated = true;
      report.dol_text = plan->program.ToDol();
      report.diagnostics.Append(analysis::VerifyPlan(*plan));
      report.summary = analysis::SummarizePlan(*plan);
      report.diagnostics.Append(
          analysis::AnalyzeConflicts(*plan, *report.summary));
      return report;
    }
  }
  if (resolved.body->kind() == StatementKind::kInsert) {
    const auto& insert =
        static_cast<const relational::InsertStmt&>(*resolved.body);
    bool qualified_select = false;
    if (insert.select_source != nullptr) {
      for (const auto& ref : insert.select_source->from) {
        if (!ref.database.empty()) qualified_select = true;
      }
    }
    if (qualified_select && !insert.table.database.empty()) {
      report.kind = "data transfer";
      auto plan = translator.TranslateDataTransfer(insert);
      if (!plan.ok()) {
        report.error = plan.status();
        return report;
      }
      report.translated = true;
      report.dol_text = plan->program.ToDol();
      report.diagnostics.Append(analysis::VerifyPlan(*plan));
      report.summary = analysis::SummarizePlan(*plan);
      report.diagnostics.Append(
          analysis::AnalyzeConflicts(*plan, *report.summary));
      return report;
    }
  }

  obs::ScopedSpan check_span(&env_.tracer(), "msql.check", "frontend", 0);
  report.diagnostics = analysis::CheckQuery(resolved, gdd_, ad_);
  check_span.End();
  if (report.diagnostics.Find(analysis::diag::kVitalSetUnenforceable) !=
      nullptr) {
    report.refused = true;
    report.refusal =
        Status::Refused(report.diagnostics.RenderAll());
    return report;
  }
  if (report.diagnostics.has_errors()) return report;

  lang::Expander expander(&gdd_);
  obs::ScopedSpan expand_span(&env_.tracer(), "msql.expand", "frontend", 0);
  auto expansion = expander.Expand(resolved);
  expand_span.End();
  if (!expansion.ok()) {
    report.error = expansion.status();
    return report;
  }
  for (const auto& entry : resolved.use.entries) {
    if (!entry.vital) continue;
    for (const auto& skipped : expansion->non_pertinent) {
      if (EqualsIgnoreCase(skipped, entry.EffectiveName())) {
        report.refused = true;
        report.refusal = Status::Refused(
            "VITAL database '" + entry.EffectiveName() +
            "' has no pertinent subquery in this multiple query");
        return report;
      }
    }
  }
  obs::ScopedSpan translate_span(&env_.tracer(), "msql.translate",
                                 "frontend", 0);
  auto plan = translator.TranslateQuery(*expansion);
  translate_span.End();
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kRefused) {
      report.refused = true;
      report.refusal = plan.status();
    } else {
      report.error = plan.status();
    }
    return report;
  }
  report.translated = true;
  report.dol_text = plan->program.ToDol();
  obs::ScopedSpan verify_span(&env_.tracer(), "msql.verify", "frontend", 0);
  report.diagnostics.Append(analysis::VerifyPlan(*plan));
  report.summary = analysis::SummarizePlan(*plan);
  report.diagnostics.Append(
      analysis::AnalyzeConflicts(*plan, *report.summary));
  verify_span.End();
  return report;
}

Result<AnalysisReport> MultidatabaseSystem::AnalyzeMultiTransaction(
    const lang::MultiTransaction& mt) {
  AnalysisReport report;
  report.kind = "multitransaction";
  UseClause saved = current_scope_;
  lang::Expander expander(&gdd_);
  std::vector<ExpansionResult> expansions;
  for (const auto& query : mt.queries) {
    auto resolved = ResolveScope(query);
    if (!resolved.ok()) {
      current_scope_ = saved;
      report.error = resolved.status();
      return report;
    }
    report.diagnostics.Append(
        analysis::CheckQuery(*resolved, gdd_, ad_));
    if (report.diagnostics.has_errors()) break;
    auto expansion = expander.Expand(*resolved);
    if (!expansion.ok()) {
      current_scope_ = saved;
      report.error = expansion.status();
      return report;
    }
    expansions.push_back(std::move(*expansion));
  }
  current_scope_ = saved;
  if (report.diagnostics.Find(analysis::diag::kVitalSetUnenforceable) !=
      nullptr) {
    report.refused = true;
    report.refusal = Status::Refused(report.diagnostics.RenderAll());
    return report;
  }
  if (report.diagnostics.has_errors()) return report;

  translator::Translator translator(&ad_, &gdd_);
  auto plan =
      translator.TranslateMultiTransaction(expansions, mt.acceptable_states);
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kRefused) {
      report.refused = true;
      report.refusal = plan.status();
    } else {
      report.error = plan.status();
    }
    return report;
  }
  report.translated = true;
  report.dol_text = plan->program.ToDol();
  report.diagnostics.Append(analysis::VerifyPlan(*plan));
  report.summary = analysis::SummarizePlan(*plan);
  report.diagnostics.Append(
      analysis::AnalyzeConflicts(*plan, *report.summary));
  return report;
}

}  // namespace msql::core
