#ifndef MSQL_CORE_SESSION_SCHEDULER_H_
#define MSQL_CORE_SESSION_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"

namespace msql::core {

/// Knobs of the concurrent federation server.
struct ServerConfig {
  /// Sessions allowed past admission at once (0 = unlimited). Waiting
  /// sessions are admitted in submit order as running ones finish.
  int max_admitted = 0;
  /// Longest simulated time a session may sit parked on one lock wait
  /// before the scheduler force-aborts it (0 = no timeout).
  int64_t lock_wait_timeout_micros = 5'000'000;
  /// Build the waits-for graph from kBusy blocker reports and abort the
  /// largest-id session of any cycle immediately, instead of waiting
  /// for the lock-wait timeout to fire.
  bool deadlock_detection = true;
};

/// Everything the server reports about one submitted session.
struct SessionResult {
  uint64_t session_id = 0;
  /// Hard error before/around the run (parse, prepare, verifier).
  Status status;
  /// The input's report when it ran (or was refused at prepare time).
  std::optional<ExecutionReport> report;
  int64_t submit_micros = 0;
  int64_t admit_micros = 0;
  int64_t finish_micros = 0;
  /// finish - admit on the shared simulated clock.
  int64_t makespan_micros = 0;
  /// Total simulated time spent parked on lock conflicts.
  int64_t lock_wait_micros = 0;
  /// Number of times the session parked on a lock conflict.
  int64_t lock_waits = 0;
  /// kBusy probes issued against busy locks (initial parks + retries
  /// that found the lock still held).
  int64_t busy_probes = 0;
  /// The session was aborted as a deadlock victim.
  bool deadlock_victim = false;
  /// The session was force-aborted by the lock-wait timeout or the
  /// stall breaker.
  bool lock_timeout = false;
};

/// Discrete-event scheduler that interleaves N MSQL sessions on the
/// federation's shared simulated clock — the "server" the paper's MDBS
/// would run as.
///
/// Each submitted input is compiled at admission
/// (MultidatabaseSystem::Prepare) and its DOL program stepped through
/// DolEngine::BeginRun/Deliver. At every step the scheduler issues the
/// earliest pending RPC across all sessions, so calls hit the netsim in
/// global time order and per-service admission queues see a meaningful
/// arrival order. Lock conflicts surface as kBusy responses, which park
/// the session (the response is withheld from its engine) until a
/// lock-releasing verb completes at that service; the kBusy blocker
/// lists feed a waits-for graph whose cycles are broken by aborting the
/// largest-id member, surfaced as a normal ABORTED outcome through the
/// victim's own DOL recovery path.
class FederationServer {
 public:
  explicit FederationServer(MultidatabaseSystem* system,
                            ServerConfig config = {});

  FederationServer(const FederationServer&) = delete;
  FederationServer& operator=(const FederationServer&) = delete;

  /// Queues one MSQL input (a query or multitransaction) as a session.
  /// Returns the 1-based session id within the current batch.
  uint64_t Submit(std::string msql_text);

  /// Runs every submitted session to completion, interleaving their
  /// plans on the shared simulated clock. Engines' lock managers run
  /// under WaitPolicy::kWait for the duration (restored afterwards).
  /// Returns per-session results in submit order. The server is
  /// reusable: sessions submitted after RunAll form a new batch.
  Result<std::vector<SessionResult>> RunAll();

  /// Final value of the shared simulated clock after the last RunAll.
  int64_t virtual_now() const { return clock_; }

 private:
  enum class SessionState { kWaiting, kReady, kParked, kDone };

  struct Session {
    uint64_t id = 0;
    std::string text;
    SessionState state = SessionState::kWaiting;
    std::optional<PreparedInput> prepared;
    std::unique_ptr<dol::DolEngine> engine;
    /// The session's tracer parent stack while it is suspended (holds
    /// the outer stack while the session is swapped in).
    std::vector<uint64_t> span_stack;
    uint64_t root_span = 0;
    /// Earliest simulated time the next pending call may be issued
    /// (pushed forward by lock-wait wakeups).
    int64_t resume_at = 0;
    /// Park bookkeeping: where and since when the session is blocked,
    /// and which federation sessions hold the locks it needs.
    std::string parked_service;
    int64_t parked_since = 0;
    std::vector<uint64_t> waits_for;
    SessionResult result;
  };

  /// RunAll body (RunAll wraps it in the lock-policy save/restore).
  Result<std::vector<SessionResult>> RunBatch();
  /// Prepares the session's input and starts its DOL program.
  void Admit(Session& s);
  /// Issues the session's pending RPC at `at`: parks it on kBusy,
  /// delivers the outcome otherwise.
  void Step(Session& s, int64_t at);
  /// Assembles the report of a completed run (swapped-in precondition).
  void Finish(Session& s, Result<dol::DolRunResult> run);
  /// Ends the session's root span and returns its slot (swapped-in
  /// precondition; swaps the outer span context back in).
  void CloseSession(Session& s);
  /// Wakes every session parked on `service`; their retries may not be
  /// issued before `now`.
  void WakeParked(const std::string& service, int64_t now);
  /// Aborts a parked session: rolls back its transaction at the
  /// contended service, delivers a synthesized Aborted outcome (its DOL
  /// program then runs its normal recovery path), and wakes the
  /// sessions it was blocking.
  void AbortParked(Session& s, const std::string& reason, bool deadlock);
  /// Searches the waits-for graph for a cycle through the just-parked
  /// `s`; returns the member with the largest session id, or nullptr.
  Session* FindDeadlockVictim(Session& s);
  /// Every admitted session is parked: force-abort the largest-id one
  /// so the batch keeps making progress (blockers the waits-for graph
  /// could not see, e.g. blocking transactions that already ended).
  void BreakStall();
  /// Toggles the tracer between the session's span context and the
  /// outer one.
  void SwapSpans(Session& s);

  MultidatabaseSystem* system_;
  ServerConfig config_;
  std::vector<std::unique_ptr<Session>> sessions_;
  /// (service, local session id) -> federation session id, maintained
  /// from delivered OPEN/CLOSE responses. Resolves the local session
  /// ids in kBusy blocker reports into waits-for edges.
  std::map<std::pair<std::string, relational::SessionId>, uint64_t>
      local_owner_;
  size_t next_unadmitted_ = 0;
  /// All sessions below this index are kDone (admission order makes the
  /// finished prefix contiguous in the common case); the scheduler's
  /// per-step scans start here.
  size_t watermark_ = 0;
  int active_ = 0;
  int64_t clock_ = 0;
};

}  // namespace msql::core

#endif  // MSQL_CORE_SESSION_SCHEDULER_H_
