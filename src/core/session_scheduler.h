#ifndef MSQL_CORE_SESSION_SCHEDULER_H_
#define MSQL_CORE_SESSION_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "obs/monitor.h"

namespace msql::core {

/// Knobs of the concurrent federation server.
struct ServerConfig {
  /// Sessions allowed past admission at once (0 = unlimited). Waiting
  /// sessions are admitted in submit order as running ones finish.
  int max_admitted = 0;
  /// Longest simulated time a session may sit parked on one lock wait
  /// before the scheduler force-aborts it (0 = no timeout).
  int64_t lock_wait_timeout_micros = 5'000'000;
  /// Build the waits-for graph from kBusy blocker reports and abort the
  /// largest-id session of any cycle immediately, instead of waiting
  /// for the lock-wait timeout to fire.
  bool deadlock_detection = true;
  /// Conflict-aware admission: compile each session's static access
  /// summary (analysis::SummarizePlan) and delay admitting a session
  /// whose lock-acquisition order can deadlock against an
  /// already-admitted one (analysis::ConflictGraph). Deadlocks become a
  /// scheduling decision instead of a runtime victim abort.
  bool conflict_aware = false;
  /// Alert-driven adaptive admission (DESIGN.md §16): while the
  /// attached monitor reports an exhausted SLO error budget
  /// (obs::Monitor::shedding()), new-session admission is shed to
  /// one-at-a-time — the federation drains instead of melting down —
  /// and normal admission resumes when the monitor recovers. Requires
  /// set_monitor; a no-op without one.
  bool adaptive_admission = false;
};

/// The scheduler-facing name of the server knobs.
using SchedulerConfig = ServerConfig;

/// Everything the server reports about one submitted session.
struct SessionResult {
  uint64_t session_id = 0;
  /// Hard error before/around the run (parse, prepare, verifier).
  Status status;
  /// The input's report when it ran (or was refused at prepare time).
  std::optional<ExecutionReport> report;
  int64_t submit_micros = 0;
  int64_t admit_micros = 0;
  int64_t finish_micros = 0;
  /// finish - admit on the shared simulated clock.
  int64_t makespan_micros = 0;
  /// Total simulated time spent parked on lock conflicts.
  int64_t lock_wait_micros = 0;
  /// Number of times the session parked on a lock conflict.
  int64_t lock_waits = 0;
  /// kBusy probes issued against busy locks (initial parks + retries
  /// that found the lock still held).
  int64_t busy_probes = 0;
  /// The session was aborted as a deadlock victim.
  bool deadlock_victim = false;
  /// The session was force-aborted by the lock-wait timeout or the
  /// stall breaker.
  bool lock_timeout = false;
  /// Admitted sessions the analyzer classified as contending with this
  /// one at admission time (any read/write or write/write overlap).
  int64_t predicted_conflicts = 0;
  /// Times conflict-aware admission passed this session over because
  /// its lock order could deadlock against an admitted session.
  int64_t admission_deferrals = 0;
  /// Distinct sessions this one was held back from running against —
  /// each a statically predicted deadlock that never got to happen.
  int64_t avoided_deadlocks = 0;
  /// Adaptive admission held this session back while an SLO budget was
  /// burning (the alert decision trail: the matching alert events carry
  /// rule "admission.shed").
  bool admission_shed = false;
  /// Simulated time the session sat unadmitted because of shedding.
  int64_t shed_wait_micros = 0;
  /// Federation sessions observed blocking this one at runtime (every
  /// park's resolved waits-for edges; input to the differential oracle
  /// that checks prediction soundness).
  std::vector<uint64_t> observed_blockers;
  /// The session's static access summary (null when the input never
  /// produced a plan).
  std::shared_ptr<const analysis::AccessSummary> summary;
};

/// Discrete-event scheduler that interleaves N MSQL sessions on the
/// federation's shared simulated clock — the "server" the paper's MDBS
/// would run as.
///
/// Each submitted input is compiled at admission
/// (MultidatabaseSystem::Prepare) and its DOL program stepped through
/// DolEngine::BeginRun/Deliver. At every step the scheduler issues the
/// earliest pending RPC across all sessions, so calls hit the netsim in
/// global time order and per-service admission queues see a meaningful
/// arrival order. Lock conflicts surface as kBusy responses, which park
/// the session (the response is withheld from its engine) until a
/// lock-releasing verb completes at that service; the kBusy blocker
/// lists feed a waits-for graph whose cycles are broken by aborting the
/// largest-id member, surfaced as a normal ABORTED outcome through the
/// victim's own DOL recovery path.
class FederationServer {
 public:
  explicit FederationServer(MultidatabaseSystem* system,
                            ServerConfig config = {});

  FederationServer(const FederationServer&) = delete;
  FederationServer& operator=(const FederationServer&) = delete;

  /// Queues one MSQL input (a query or multitransaction) as a session.
  /// Returns the 1-based session id within the current batch.
  uint64_t Submit(std::string msql_text);

  /// Runs every submitted session to completion, interleaving their
  /// plans on the shared simulated clock. Engines' lock managers run
  /// under WaitPolicy::kWait for the duration (restored afterwards).
  /// Returns per-session results in submit order. The server is
  /// reusable: sessions submitted after RunAll form a new batch.
  Result<std::vector<SessionResult>> RunAll();

  /// Final value of the shared simulated clock after the last RunAll.
  int64_t virtual_now() const { return clock_; }

  /// Attaches the federation monitor (not owned; null detaches). The
  /// server samples it on the shared clock each time a window boundary
  /// passes, feeds it every finished session, and — when
  /// `adaptive_admission` is set — follows its shedding() signal.
  void set_monitor(obs::Monitor* monitor) { monitor_ = monitor; }
  obs::Monitor* monitor() const { return monitor_; }

 private:
  enum class SessionState { kWaiting, kReady, kParked, kDone };

  struct Session {
    uint64_t id = 0;
    std::string text;
    SessionState state = SessionState::kWaiting;
    /// Frontend compilation ran (Consider is idempotent).
    bool considered = false;
    /// Outcome of Consider's Prepare/verify, reported at admission.
    Status prepare_status;
    /// Static access summary of the prepared plan (null when the input
    /// resolved at prepare time or failed to prepare).
    std::shared_ptr<const analysis::AccessSummary> summary;
    /// Sessions conflict-aware admission deferred this one against.
    std::set<uint64_t> deferred_against;
    /// The session's pending call is past lock acquisition
    /// (prepare/commit/rollback), mirrored into the conflict graph so
    /// admission stops deferring candidates against it.
    bool quiesced = false;
    std::optional<PreparedInput> prepared;
    std::unique_ptr<dol::DolEngine> engine;
    /// The session's tracer parent stack while it is suspended (holds
    /// the outer stack while the session is swapped in).
    std::vector<uint64_t> span_stack;
    uint64_t root_span = 0;
    /// Earliest simulated time the next pending call may be issued
    /// (pushed forward by lock-wait wakeups).
    int64_t resume_at = 0;
    /// Park bookkeeping: where and since when the session is blocked,
    /// and which federation sessions hold the locks it needs.
    std::string parked_service;
    int64_t parked_since = 0;
    std::vector<uint64_t> waits_for;
    /// Clock value when adaptive shedding started holding this
    /// still-unadmitted session back (-1 = not currently held).
    int64_t shed_since = -1;
    SessionResult result;
  };

  /// RunAll body (RunAll wraps it in the lock-policy save/restore).
  Result<std::vector<SessionResult>> RunBatch();
  /// Admission sweep: re-checks deferred sessions when the admitted set
  /// changed, then fills free slots in submit order, deferring
  /// candidates whose summaries risk a lock-order deadlock when
  /// `conflict_aware` is on.
  void AdmitEligible();
  /// Runs the frontend once on the session (Prepare + plan verifier +
  /// access summary); idempotent, so deferred sessions compile once.
  void Consider(Session& s);
  /// Starts the session's DOL program (Consider'd first if needed).
  void Admit(Session& s);
  /// Tracks the session's lock-acquisition phase off its pending call:
  /// once the next verb is prepare/commit/rollback the session cannot
  /// join a new deadlock cycle, so the conflict graph quiesces it and
  /// deferred candidates become admittable while it commits. A later
  /// lock-acquiring verb (compensation, vital-task retry) reactivates
  /// it.
  void ObservePhase(Session& s, const dol::DolEngine::PendingRpc& rpc);
  /// Issues the session's pending RPC at `at`: parks it on kBusy,
  /// delivers the outcome otherwise.
  void Step(Session& s, int64_t at);
  /// Assembles the report of a completed run (swapped-in precondition).
  void Finish(Session& s, Result<dol::DolRunResult> run);
  /// Ends the session's root span and returns its slot (swapped-in
  /// precondition; swaps the outer span context back in).
  void CloseSession(Session& s);
  /// Wakes every session parked on `service`; their retries may not be
  /// issued before `now`.
  void WakeParked(const std::string& service, int64_t now);
  /// Aborts a parked session: rolls back its transaction at the
  /// contended service, delivers a synthesized Aborted outcome (its DOL
  /// program then runs its normal recovery path), and wakes the
  /// sessions it was blocking.
  void AbortParked(Session& s, const std::string& reason, bool deadlock);
  /// Searches the waits-for graph for a cycle through the just-parked
  /// `s`; returns the member with the largest session id, or nullptr.
  Session* FindDeadlockVictim(Session& s);
  /// Every admitted session is parked: force-abort the largest-id one
  /// so the batch keeps making progress (blockers the waits-for graph
  /// could not see, e.g. blocking transactions that already ended).
  void BreakStall();
  /// Toggles the tracer between the session's span context and the
  /// outer one.
  void SwapSpans(Session& s);
  /// True while adaptive admission is shedding (monitor attached, mode
  /// on, budget burning).
  bool ShedActive() const;
  /// Closes monitor windows the clock has passed and, on a shed-state
  /// transition, stamps the waiting sessions' decision trail.
  void SampleMonitor();
  /// Feeds the session's final result to the monitor.
  void RecordSessionSample(const Session& s);

  MultidatabaseSystem* system_;
  ServerConfig config_;
  std::vector<std::unique_ptr<Session>> sessions_;
  /// (service, local session id) -> federation session id, maintained
  /// from delivered OPEN/CLOSE responses. Resolves the local session
  /// ids in kBusy blocker reports into waits-for edges.
  std::map<std::pair<std::string, relational::SessionId>, uint64_t>
      local_owner_;
  size_t next_unadmitted_ = 0;
  /// Indices of considered sessions held back by conflict-aware
  /// admission, in submit order.
  std::vector<size_t> deferred_;
  /// Admitted summaries (conflict-aware admission's view of the
  /// running set).
  analysis::ConflictGraph graph_;
  /// The admitted set changed since deferred_ was last re-checked.
  bool graph_dirty_ = false;
  /// All sessions below this index are kDone (admission order makes the
  /// finished prefix contiguous in the common case); the scheduler's
  /// per-step scans start here.
  size_t watermark_ = 0;
  int active_ = 0;
  int64_t clock_ = 0;
  obs::Monitor* monitor_ = nullptr;
  /// Shed state as of the last SampleMonitor (transition detection).
  bool shed_active_ = false;
};

}  // namespace msql::core

#endif  // MSQL_CORE_SESSION_SCHEDULER_H_
