#include "storage/btree.h"

#include <algorithm>
#include <cstring>

namespace msql::storage {

namespace {
// Node header field offsets.
constexpr uint32_t kNodeType = 0;      // u8: 1 leaf, 2 internal
constexpr uint32_t kNodeKeys = 1;      // u16
constexpr uint32_t kNodeNext = 4;      // u32 (leaf chain)
constexpr uint32_t kNodeLeftmost = 8;  // u32 (internal)
// Meta page field offsets.
constexpr uint32_t kMetaMagicOff = 0;  // u32
constexpr uint32_t kMetaRootOff = 4;   // u32
}  // namespace

Status BTree::Create() {
  MSQL_ASSIGN_OR_RETURN(Frame * meta, pool_->NewPage(file_id_));
  if (meta->page_id != 0) {
    pool_->Unpin(meta);
    return Status::Internal("btree Create on a non-empty file");
  }
  StoreU32(meta->data + kMetaMagicOff, kMagic);
  pool_->MarkDirty(meta, 0);
  pool_->Unpin(meta);
  Node root;
  root.is_leaf = true;
  MSQL_ASSIGN_OR_RETURN(PageId root_id, NewNodePage(root));
  return SetRoot(root_id);
}

Status BTree::Reset() {
  if (pool_->file_size_pages(file_id_) == 0) return Create();
  MSQL_ASSIGN_OR_RETURN(Frame * meta, pool_->Pin(file_id_, 0));
  StoreU32(meta->data + kMetaMagicOff, kMagic);
  pool_->MarkDirty(meta, 0);
  pool_->Unpin(meta);
  Node root;
  root.is_leaf = true;
  MSQL_ASSIGN_OR_RETURN(PageId root_id, NewNodePage(root));
  return SetRoot(root_id);
}

Status BTree::Open() {
  MSQL_ASSIGN_OR_RETURN(Frame * meta, pool_->Pin(file_id_, 0));
  uint32_t magic = LoadU32(meta->data + kMetaMagicOff);
  pool_->Unpin(meta);
  if (magic != kMagic) {
    return Status::Corrupted("btree file has a bad magic number");
  }
  return Status::OK();
}

Result<PageId> BTree::Root() const {
  MSQL_ASSIGN_OR_RETURN(Frame * meta, pool_->Pin(file_id_, 0));
  PageId root = LoadU32(meta->data + kMetaRootOff);
  pool_->Unpin(meta);
  return root;
}

Status BTree::SetRoot(PageId root) {
  MSQL_ASSIGN_OR_RETURN(Frame * meta, pool_->Pin(file_id_, 0));
  StoreU32(meta->data + kMetaRootOff, root);
  pool_->MarkDirty(meta, 0);
  pool_->Unpin(meta);
  return Status::OK();
}

Result<BTree::Node> BTree::ReadNode(PageId id) const {
  MSQL_ASSIGN_OR_RETURN(Frame * frame, pool_->Pin(file_id_, id));
  Node node;
  uint8_t type = static_cast<uint8_t>(frame->data[kNodeType]);
  node.is_leaf = type == 1;
  if (type != 1 && type != 2) {
    pool_->Unpin(frame);
    return Status::Corrupted("btree node page " + std::to_string(id) +
                             " has a bad type byte");
  }
  uint16_t nkeys = LoadU16(frame->data + kNodeKeys);
  node.next = LoadU32(frame->data + kNodeNext);
  node.leftmost = LoadU32(frame->data + kNodeLeftmost);
  node.cells.reserve(nkeys);
  for (uint16_t i = 0; i < nkeys; ++i) {
    uint16_t off = LoadU16(frame->data + kNodeHeader + 2 * i);
    uint16_t klen = LoadU16(frame->data + off);
    Cell cell;
    cell.key.assign(frame->data + off + 2, klen);
    if (!node.is_leaf) {
      cell.child = LoadU32(frame->data + off + 2 + klen);
    }
    node.cells.push_back(std::move(cell));
  }
  pool_->Unpin(frame);
  return node;
}

size_t BTree::NodeBytes(const Node& node) {
  size_t bytes = kNodeHeader;
  for (const Cell& cell : node.cells) {
    bytes += 2 /*slot*/ + 2 /*klen*/ + cell.key.size() +
             (node.is_leaf ? 0 : 4);
  }
  return bytes;
}

bool BTree::NodeFits(const Node& node) {
  return NodeBytes(node) <= kPageSize;
}

Status BTree::WriteNode(PageId id, const Node& node) {
  if (!NodeFits(node)) {
    return Status::Internal("btree node overflow on page " +
                            std::to_string(id));
  }
  MSQL_ASSIGN_OR_RETURN(Frame * frame, pool_->Pin(file_id_, id));
  std::memset(frame->data, 0, kPageSize);
  frame->data[kNodeType] = node.is_leaf ? 1 : 2;
  StoreU16(frame->data + kNodeKeys,
           static_cast<uint16_t>(node.cells.size()));
  StoreU32(frame->data + kNodeNext, node.next);
  StoreU32(frame->data + kNodeLeftmost, node.leftmost);
  uint32_t cell_off = kPageSize;
  for (size_t i = 0; i < node.cells.size(); ++i) {
    const Cell& cell = node.cells[i];
    uint32_t size =
        2 + static_cast<uint32_t>(cell.key.size()) + (node.is_leaf ? 0 : 4);
    cell_off -= size;
    StoreU16(frame->data + cell_off,
             static_cast<uint16_t>(cell.key.size()));
    std::memcpy(frame->data + cell_off + 2, cell.key.data(),
                cell.key.size());
    if (!node.is_leaf) {
      StoreU32(frame->data + cell_off + 2 + cell.key.size(), cell.child);
    }
    StoreU16(frame->data + kNodeHeader + 2 * i,
             static_cast<uint16_t>(cell_off));
  }
  pool_->MarkDirty(frame, 0);
  pool_->Unpin(frame);
  return Status::OK();
}

Result<PageId> BTree::NewNodePage(const Node& node) {
  MSQL_ASSIGN_OR_RETURN(Frame * frame, pool_->NewPage(file_id_));
  PageId id = frame->page_id;
  pool_->Unpin(frame);
  MSQL_RETURN_IF_ERROR(WriteNode(id, node));
  return id;
}

Result<std::optional<std::pair<std::string, PageId>>> BTree::InsertRec(
    PageId id, std::string_view key) {
  MSQL_ASSIGN_OR_RETURN(Node node, ReadNode(id));
  if (node.is_leaf) {
    auto it = std::lower_bound(
        node.cells.begin(), node.cells.end(), key,
        [](const Cell& c, std::string_view k) { return c.key < k; });
    if (it != node.cells.end() && it->key == key) {
      return std::optional<std::pair<std::string, PageId>>{};  // duplicate
    }
    Cell cell;
    cell.key.assign(key);
    node.cells.insert(it, std::move(cell));
    if (NodeFits(node)) {
      MSQL_RETURN_IF_ERROR(WriteNode(id, node));
      return std::optional<std::pair<std::string, PageId>>{};
    }
    size_t mid = node.cells.size() / 2;
    Node right;
    right.is_leaf = true;
    right.next = node.next;
    right.cells.assign(node.cells.begin() + mid, node.cells.end());
    node.cells.resize(mid);
    MSQL_ASSIGN_OR_RETURN(PageId right_id, NewNodePage(right));
    node.next = right_id;
    MSQL_RETURN_IF_ERROR(WriteNode(id, node));
    return std::make_optional(
        std::make_pair(right.cells.front().key, right_id));
  }

  // Internal: route to the child owning `key`.
  size_t child_index = 0;  // 0 = leftmost
  while (child_index < node.cells.size() &&
         node.cells[child_index].key <= key) {
    ++child_index;
  }
  PageId child = child_index == 0 ? node.leftmost
                                  : node.cells[child_index - 1].child;
  MSQL_ASSIGN_OR_RETURN(auto split, InsertRec(child, key));
  if (!split.has_value()) {
    return std::optional<std::pair<std::string, PageId>>{};
  }
  Cell cell;
  cell.key = split->first;
  cell.child = split->second;
  node.cells.insert(node.cells.begin() + child_index, std::move(cell));
  if (NodeFits(node)) {
    MSQL_RETURN_IF_ERROR(WriteNode(id, node));
    return std::optional<std::pair<std::string, PageId>>{};
  }
  size_t mid = node.cells.size() / 2;
  std::string promoted = node.cells[mid].key;
  Node right;
  right.is_leaf = false;
  right.leftmost = node.cells[mid].child;
  right.cells.assign(node.cells.begin() + mid + 1, node.cells.end());
  node.cells.resize(mid);
  MSQL_ASSIGN_OR_RETURN(PageId right_id, NewNodePage(right));
  MSQL_RETURN_IF_ERROR(WriteNode(id, node));
  return std::make_optional(std::make_pair(std::move(promoted), right_id));
}

Status BTree::Insert(std::string_view key) {
  if (key.size() > kMaxBtreeKeyBytes) {
    return Status::InvalidArgument("btree key of " +
                                   std::to_string(key.size()) +
                                   " bytes exceeds the limit of " +
                                   std::to_string(kMaxBtreeKeyBytes));
  }
  MSQL_ASSIGN_OR_RETURN(PageId root, Root());
  MSQL_ASSIGN_OR_RETURN(auto split, InsertRec(root, key));
  if (!split.has_value()) return Status::OK();
  Node new_root;
  new_root.is_leaf = false;
  new_root.leftmost = root;
  Cell cell;
  cell.key = split->first;
  cell.child = split->second;
  new_root.cells.push_back(std::move(cell));
  MSQL_ASSIGN_OR_RETURN(PageId new_root_id, NewNodePage(new_root));
  return SetRoot(new_root_id);
}

Result<PageId> BTree::FindLeaf(std::string_view key) const {
  MSQL_ASSIGN_OR_RETURN(PageId id, Root());
  for (;;) {
    MSQL_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    if (node.is_leaf) return id;
    size_t child_index = 0;
    while (child_index < node.cells.size() &&
           node.cells[child_index].key <= key) {
      ++child_index;
    }
    id = child_index == 0 ? node.leftmost
                          : node.cells[child_index - 1].child;
  }
}

Status BTree::Erase(std::string_view key) {
  MSQL_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  MSQL_ASSIGN_OR_RETURN(Node node, ReadNode(leaf_id));
  auto it = std::lower_bound(
      node.cells.begin(), node.cells.end(), key,
      [](const Cell& c, std::string_view k) { return c.key < k; });
  if (it == node.cells.end() || it->key != key) return Status::OK();
  node.cells.erase(it);
  return WriteNode(leaf_id, node);
}

Result<bool> BTree::Contains(std::string_view key) const {
  MSQL_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  MSQL_ASSIGN_OR_RETURN(Node node, ReadNode(leaf_id));
  auto it = std::lower_bound(
      node.cells.begin(), node.cells.end(), key,
      [](const Cell& c, std::string_view k) { return c.key < k; });
  return it != node.cells.end() && it->key == key;
}

Status BTree::ScanRange(
    std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view)>& fn) const {
  MSQL_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(lo));
  while (leaf_id != 0) {
    MSQL_ASSIGN_OR_RETURN(Node node, ReadNode(leaf_id));
    for (const Cell& cell : node.cells) {
      if (cell.key < lo) continue;
      if (cell.key > hi) return Status::OK();
      if (!fn(cell.key)) return Status::OK();
    }
    leaf_id = node.next;
  }
  return Status::OK();
}

Result<int64_t> BTree::CountKeys() const {
  // Walk the leaf chain from the leftmost leaf.
  MSQL_ASSIGN_OR_RETURN(PageId id, Root());
  for (;;) {
    MSQL_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    if (node.is_leaf) break;
    id = node.leftmost;
  }
  int64_t count = 0;
  while (id != 0) {
    MSQL_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    count += static_cast<int64_t>(node.cells.size());
    id = node.next;
  }
  return count;
}

}  // namespace msql::storage
