#include "storage/buffer_manager.h"

#include <cstring>

namespace msql::storage {

BufferManager::BufferManager(size_t frame_count) {
  if (frame_count == 0) frame_count = 1;
  frames_.reserve(frame_count);
  for (size_t i = 0; i < frame_count; ++i) {
    frames_.push_back(std::make_unique<Frame>());
  }
}

uint32_t BufferManager::RegisterFile(DiskManager* disk) {
  files_.push_back(disk);
  return static_cast<uint32_t>(files_.size() - 1);
}

void BufferManager::Count(const char* name, int64_t delta) {
  if (metrics_ != nullptr) metrics_->Inc(name, delta);
}

Status BufferManager::WriteBack(Frame* frame) {
  MSQL_RETURN_IF_ERROR(
      files_[frame->file_id]->WritePage(frame->page_id, frame->data));
  frame->dirty = false;
  ++page_writes_;
  Count("storage.page_writes");
  return Status::OK();
}

Result<size_t> BufferManager::AcquireFrame() {
  // First choice: a frame never used or explicitly invalidated.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i]->valid) return i;
  }
  // Otherwise evict the least-recently-used unpinned frame whose dirty
  // state is flushable (no active transaction wrote it — no-steal).
  size_t victim = frames_.size();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = *frames_[i];
    if (frame.pin_count > 0) continue;
    if (frame.dirty && !frame.dirty_txns.empty()) continue;
    if (victim == frames_.size() ||
        frame.last_used < frames_[victim]->last_used) {
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::Internal(
        "buffer pool exhausted: all " + std::to_string(frames_.size()) +
        " frames are pinned or hold uncommitted writes (no-steal)");
  }
  Frame* frame = frames_[victim].get();
  obs::ScopedSpan span(tracer_, "storage.evict", "storage");
  span.Annotate("file", static_cast<int64_t>(frame->file_id));
  span.Annotate("page", static_cast<int64_t>(frame->page_id));
  span.Annotate("dirty", frame->dirty ? "true" : "false");
  if (frame->dirty) MSQL_RETURN_IF_ERROR(WriteBack(frame));
  resident_.erase({frame->file_id, frame->page_id});
  frame->valid = false;
  frame->dirty_txns.clear();
  ++evictions_;
  Count("storage.evictions");
  return victim;
}

Result<Frame*> BufferManager::NewPage(uint32_t file_id) {
  MSQL_ASSIGN_OR_RETURN(PageId id, files_[file_id]->AllocatePage());
  MSQL_ASSIGN_OR_RETURN(size_t slot, AcquireFrame());
  Frame* frame = frames_[slot].get();
  std::memset(frame->data, 0, kPageSize);
  frame->file_id = file_id;
  frame->page_id = id;
  frame->pin_count = 1;
  frame->dirty = false;
  frame->valid = true;
  frame->last_used = ++clock_;
  frame->dirty_txns.clear();
  resident_[{file_id, id}] = slot;
  return frame;
}

Result<Frame*> BufferManager::Pin(uint32_t file_id, PageId page_id) {
  auto it = resident_.find({file_id, page_id});
  if (it != resident_.end()) {
    Frame* frame = frames_[it->second].get();
    ++frame->pin_count;
    frame->last_used = ++clock_;
    ++pin_hits_;
    Count("storage.pin_hits");
    return frame;
  }
  MSQL_ASSIGN_OR_RETURN(size_t slot, AcquireFrame());
  Frame* frame = frames_[slot].get();
  MSQL_RETURN_IF_ERROR(files_[file_id]->ReadPage(page_id, frame->data));
  ++page_reads_;
  Count("storage.page_reads");
  frame->file_id = file_id;
  frame->page_id = page_id;
  frame->pin_count = 1;
  frame->dirty = false;
  frame->valid = true;
  frame->last_used = ++clock_;
  frame->dirty_txns.clear();
  resident_[{file_id, page_id}] = slot;
  return frame;
}

void BufferManager::Unpin(Frame* frame) {
  if (frame->pin_count > 0) --frame->pin_count;
}

void BufferManager::MarkDirty(Frame* frame, uint64_t txn_id) {
  frame->dirty = true;
  if (txn_id != 0) frame->dirty_txns.insert(txn_id);
}

void BufferManager::ReleaseTxn(uint64_t txn_id) {
  for (auto& frame : frames_) {
    if (frame->valid) frame->dirty_txns.erase(txn_id);
  }
}

Status BufferManager::FlushEligible(size_t max_pages) {
  size_t written = 0;
  for (auto& frame : frames_) {
    if (written >= max_pages) break;
    if (frame->valid && frame->dirty && frame->dirty_txns.empty()) {
      MSQL_RETURN_IF_ERROR(WriteBack(frame.get()));
      ++written;
    }
  }
  for (DiskManager* disk : files_) {
    if (disk != nullptr && disk->is_open()) {
      MSQL_RETURN_IF_ERROR(disk->Flush());
    }
  }
  return Status::OK();
}

void BufferManager::DiscardFile(uint32_t file_id) {
  for (auto& frame : frames_) {
    if (frame->valid && frame->file_id == file_id) {
      resident_.erase({frame->file_id, frame->page_id});
      frame->valid = false;
      frame->dirty = false;
      frame->pin_count = 0;
      frame->dirty_txns.clear();
    }
  }
  if (file_id < files_.size()) files_[file_id] = nullptr;
}

void BufferManager::DropAll() {
  for (auto& frame : frames_) {
    frame->valid = false;
    frame->dirty = false;
    frame->pin_count = 0;
    frame->dirty_txns.clear();
  }
  resident_.clear();
}

}  // namespace msql::storage
