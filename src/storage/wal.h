#ifndef MSQL_STORAGE_WAL_H_
#define MSQL_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msql::storage {

/// Record types. The WAL is *logical*: payloads carry table names and
/// serialized rows (built by the relational layer), not page images.
/// Recovery replays committed/prepared work against the heap files,
/// guarded by per-row LSNs so redo is idempotent.
enum class WalRecordType : uint8_t {
  kBegin = 1,       // txn started (payload: session identity)
  kInsert = 2,      // after-image
  kUpdate = 3,      // before- and after-image
  kDelete = 4,      // before-image
  kCommit = 5,
  kAbort = 6,
  kPrepare = 7,     // txn entered 2PC prepared state
  kCheckpoint = 8,  // pool flushed; payload lists active txns
  kDdl = 9,         // catalog change (create/drop table/index)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t lsn = 0;
  std::string payload;
};

/// Append-only log with an explicit durability boundary: Append buffers
/// the record in memory; only Flush makes it crash-survivable. A
/// simulated crash (DropUnflushed) discards the buffered tail exactly
/// like a power cut would. Framing per record:
///   [len u32][type u8][lsn u64][payload len-13 bytes]
/// `len` covers type+lsn+payload so a truncated tail is detectable.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if absent) the log at `path`. Existing records
  /// are scanned to restore the LSN counter; a torn final record is
  /// truncated away silently (it was never acknowledged as durable).
  Status Open(const std::string& path);
  void Close();

  /// Buffers a record and returns its LSN (monotone from 1).
  Result<uint64_t> Append(WalRecordType type, std::string payload);

  /// Makes everything appended so far durable.
  Status Flush();

  /// Crash simulation: unflushed appends vanish.
  void DropUnflushed();

  /// All durable records in LSN order (for recovery).
  Result<std::vector<WalRecord>> ReadAll() const;

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t flushed_lsn() const { return flushed_lsn_; }
  int64_t appends() const { return appends_; }
  int64_t flushes() const { return flushes_; }

  void SetMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Emits "wal.flush" spans into `tracer` (nullptr to stop).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  std::string path_;
  bool open_ = false;
  /// Byte size of the durable prefix of the file.
  uint64_t durable_bytes_ = 0;
  /// Framed records appended but not yet flushed.
  std::string tail_;
  uint64_t next_lsn_ = 1;
  uint64_t flushed_lsn_ = 0;
  uint64_t tail_last_lsn_ = 0;
  int64_t appends_ = 0;
  int64_t flushes_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace msql::storage

#endif  // MSQL_STORAGE_WAL_H_
