#include "storage/heap_file.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace msql::storage {

namespace {
// Directory entry field offsets (within a kEntryBytes slot).
constexpr uint32_t kEntryLsn = 0;      // u64
constexpr uint32_t kEntryPage = 8;     // u32
constexpr uint32_t kEntryOffset = 12;  // u16
constexpr uint32_t kEntryLen = 14;     // u16
constexpr uint32_t kEntryFlagsOff = 16;  // u16

// Header field offsets (page 0).
constexpr uint32_t kHdrMagic = 0;      // u32
constexpr uint32_t kHdrTailPage = 4;   // u32 (0 = no tail data page yet)
constexpr uint32_t kHdrTailUsed = 8;   // u16
constexpr uint32_t kHdrDirCount = 10;  // u32
constexpr uint32_t kHdrDirArray = 14;  // u32 each
}  // namespace

Status HeapFile::Create() {
  MSQL_ASSIGN_OR_RETURN(Frame * hdr, pool_->NewPage(file_id_));
  if (hdr->page_id != 0) {
    pool_->Unpin(hdr);
    return Status::Internal("heap Create on a non-empty file");
  }
  StoreU32(hdr->data + kHdrMagic, kMagic);
  StoreU32(hdr->data + kHdrTailPage, 0);
  StoreU16(hdr->data + kHdrTailUsed, 0);
  StoreU32(hdr->data + kHdrDirCount, 0);
  pool_->MarkDirty(hdr, 0);
  pool_->Unpin(hdr);
  return Status::OK();
}

Status HeapFile::Open() {
  MSQL_ASSIGN_OR_RETURN(Frame * hdr, pool_->Pin(file_id_, 0));
  uint32_t magic = LoadU32(hdr->data + kHdrMagic);
  if (magic == 0) {
    // A crash can leave the file extended (allocation zero-fills pages
    // eagerly) before the header write ever became durable. A zeroed
    // header means no page of this heap carries data the WAL does not
    // also carry, so reformatting in place and letting LSN-guarded
    // replay refill it is safe.
    StoreU32(hdr->data + kHdrMagic, kMagic);
    StoreU32(hdr->data + kHdrTailPage, 0);
    StoreU16(hdr->data + kHdrTailUsed, 0);
    StoreU32(hdr->data + kHdrDirCount, 0);
    pool_->MarkDirty(hdr, 0);
    pool_->Unpin(hdr);
    return Status::OK();
  }
  pool_->Unpin(hdr);
  if (magic != kMagic) {
    return Status::Corrupted("heap file has a bad magic number");
  }
  return Status::OK();
}

Result<Frame*> HeapFile::PinDirPage(uint64_t rowid, bool create,
                                    uint64_t txn,
                                    uint32_t* entry_offset) const {
  uint64_t dir_index = rowid / kEntriesPerDirPage;
  if (dir_index >= kMaxDirPages) {
    return Status::InvalidArgument("rowid " + std::to_string(rowid) +
                                   " exceeds heap directory capacity");
  }
  MSQL_ASSIGN_OR_RETURN(Frame * hdr, pool_->Pin(file_id_, 0));
  uint32_t dir_count = LoadU32(hdr->data + kHdrDirCount);
  if (dir_index >= dir_count) {
    if (!create) {
      pool_->Unpin(hdr);
      return Status::NotFound("rowid " + std::to_string(rowid) +
                              " has no directory entry");
    }
    while (dir_count <= dir_index) {
      auto fresh = pool_->NewPage(file_id_);
      if (!fresh.ok()) {
        pool_->Unpin(hdr);
        return fresh.status();
      }
      PageId id = (*fresh)->page_id;
      pool_->MarkDirty(*fresh, txn);
      pool_->Unpin(*fresh);
      StoreU32(hdr->data + kHdrDirArray + 4 * dir_count, id);
      ++dir_count;
    }
    StoreU32(hdr->data + kHdrDirCount, dir_count);
    pool_->MarkDirty(hdr, txn);
  }
  PageId dir_page = LoadU32(hdr->data + kHdrDirArray + 4 * dir_index);
  pool_->Unpin(hdr);
  MSQL_ASSIGN_OR_RETURN(Frame * dir, pool_->Pin(file_id_, dir_page));
  *entry_offset =
      static_cast<uint32_t>(rowid % kEntriesPerDirPage) * kEntryBytes;
  return dir;
}

Status HeapFile::Put(uint64_t rowid, uint64_t lsn, uint64_t txn,
                     std::string_view bytes) {
  if (bytes.size() > kMaxHeapRecordBytes) {
    return Status::InvalidArgument(
        "row of " + std::to_string(bytes.size()) +
        " bytes exceeds the heap page capacity of " +
        std::to_string(kMaxHeapRecordBytes));
  }
  uint32_t needed = kRecordHeader + static_cast<uint32_t>(bytes.size());

  MSQL_ASSIGN_OR_RETURN(Frame * hdr, pool_->Pin(file_id_, 0));
  PageId tail_page = LoadU32(hdr->data + kHdrTailPage);
  uint16_t tail_used = LoadU16(hdr->data + kHdrTailUsed);

  Frame* data = nullptr;
  if (tail_page == 0 || tail_used + needed > kPageSize) {
    auto fresh = pool_->NewPage(file_id_);
    if (!fresh.ok()) {
      pool_->Unpin(hdr);
      return fresh.status();
    }
    data = *fresh;
    tail_page = data->page_id;
    tail_used = kDataHeader;
  } else {
    auto pinned = pool_->Pin(file_id_, tail_page);
    if (!pinned.ok()) {
      pool_->Unpin(hdr);
      return pinned.status();
    }
    data = *pinned;
  }
  uint16_t offset = tail_used;
  StoreU64(data->data + offset, rowid);
  StoreU16(data->data + offset + 8,
           static_cast<uint16_t>(bytes.size()));
  std::memcpy(data->data + offset + kRecordHeader, bytes.data(),
              bytes.size());
  tail_used = static_cast<uint16_t>(tail_used + needed);
  StoreU16(data->data, tail_used);  // page-local used, for diagnostics
  pool_->MarkDirty(data, txn);
  pool_->Unpin(data);

  StoreU32(hdr->data + kHdrTailPage, tail_page);
  StoreU16(hdr->data + kHdrTailUsed, tail_used);
  pool_->MarkDirty(hdr, txn);
  pool_->Unpin(hdr);

  uint32_t entry_off = 0;
  MSQL_ASSIGN_OR_RETURN(Frame * dir,
                        PinDirPage(rowid, /*create=*/true, txn, &entry_off));
  StoreU64(dir->data + entry_off + kEntryLsn, lsn);
  StoreU32(dir->data + entry_off + kEntryPage, tail_page);
  StoreU16(dir->data + entry_off + kEntryOffset, offset);
  StoreU16(dir->data + entry_off + kEntryLen,
           static_cast<uint16_t>(bytes.size()));
  StoreU16(dir->data + entry_off + kEntryFlagsOff, 1);
  pool_->MarkDirty(dir, txn);
  pool_->Unpin(dir);
  return Status::OK();
}

Status HeapFile::Delete(uint64_t rowid, uint64_t lsn, uint64_t txn) {
  uint32_t entry_off = 0;
  MSQL_ASSIGN_OR_RETURN(Frame * dir,
                        PinDirPage(rowid, /*create=*/false, txn, &entry_off));
  uint16_t flags = LoadU16(dir->data + entry_off + kEntryFlagsOff);
  if (flags != 1) {
    pool_->Unpin(dir);
    return Status::NotFound("rowid " + std::to_string(rowid) +
                            " is not live in the heap");
  }
  StoreU64(dir->data + entry_off + kEntryLsn, lsn);
  StoreU16(dir->data + entry_off + kEntryFlagsOff, 2);
  pool_->MarkDirty(dir, txn);
  pool_->Unpin(dir);
  return Status::OK();
}

Result<std::string> HeapFile::Get(uint64_t rowid) const {
  uint32_t entry_off = 0;
  MSQL_ASSIGN_OR_RETURN(Frame * dir,
                        PinDirPage(rowid, /*create=*/false, 0, &entry_off));
  uint16_t flags = LoadU16(dir->data + entry_off + kEntryFlagsOff);
  PageId page = LoadU32(dir->data + entry_off + kEntryPage);
  uint16_t offset = LoadU16(dir->data + entry_off + kEntryOffset);
  uint16_t len = LoadU16(dir->data + entry_off + kEntryLen);
  pool_->Unpin(dir);
  if (flags != 1) {
    return Status::NotFound("rowid " + std::to_string(rowid) +
                            " is not live in the heap");
  }
  MSQL_ASSIGN_OR_RETURN(Frame * data, pool_->Pin(file_id_, page));
  if (static_cast<uint32_t>(offset) + kRecordHeader + len > kPageSize ||
      LoadU64(data->data + offset) != rowid) {
    pool_->Unpin(data);
    return Status::Corrupted("heap record for rowid " +
                             std::to_string(rowid) +
                             " fails validation");
  }
  std::string out(data->data + offset + kRecordHeader, len);
  pool_->Unpin(data);
  return out;
}

Result<uint16_t> HeapFile::EntryFlags(uint64_t rowid) const {
  uint32_t entry_off = 0;
  auto dir = PinDirPage(rowid, /*create=*/false, 0, &entry_off);
  if (!dir.ok()) {
    if (dir.status().code() == StatusCode::kNotFound) return uint16_t{0};
    return dir.status();
  }
  uint16_t flags = LoadU16((*dir)->data + entry_off + kEntryFlagsOff);
  pool_->Unpin(*dir);
  return flags;
}

Result<uint64_t> HeapFile::EntryLsn(uint64_t rowid) const {
  uint32_t entry_off = 0;
  auto dir = PinDirPage(rowid, /*create=*/false, 0, &entry_off);
  if (!dir.ok()) {
    if (dir.status().code() == StatusCode::kNotFound) return uint64_t{0};
    return dir.status();
  }
  uint64_t lsn = LoadU64((*dir)->data + entry_off + kEntryLsn);
  pool_->Unpin(*dir);
  return lsn;
}

bool HeapFile::DataValid(PageId page, uint16_t offset, uint16_t len,
                         uint64_t rowid) const {
  if (static_cast<uint32_t>(offset) + kRecordHeader + len > kPageSize) {
    return false;
  }
  auto data = pool_->Pin(file_id_, page);
  if (!data.ok()) return false;
  bool ok = LoadU64((*data)->data + offset) == rowid &&
            LoadU16((*data)->data + offset + 8) == len;
  pool_->Unpin(*data);
  return ok;
}

Status HeapFile::RedoPut(uint64_t rowid, uint64_t lsn,
                         std::string_view bytes) {
  uint32_t entry_off = 0;
  auto dir = PinDirPage(rowid, /*create=*/false, 0, &entry_off);
  if (dir.ok()) {
    uint64_t cur_lsn = LoadU64((*dir)->data + entry_off + kEntryLsn);
    uint16_t flags = LoadU16((*dir)->data + entry_off + kEntryFlagsOff);
    PageId page = LoadU32((*dir)->data + entry_off + kEntryPage);
    uint16_t offset = LoadU16((*dir)->data + entry_off + kEntryOffset);
    uint16_t len = LoadU16((*dir)->data + entry_off + kEntryLen);
    pool_->Unpin(*dir);
    if (flags == 2 && cur_lsn >= lsn) return Status::OK();
    // A live entry at or past this LSN only counts if the record it
    // points at actually reached disk (the directory page can outrun
    // its data page to disk).
    if (flags == 1 && cur_lsn >= lsn && DataValid(page, offset, len, rowid)) {
      return Status::OK();
    }
  } else if (dir.status().code() != StatusCode::kNotFound) {
    return dir.status();
  }
  return Put(rowid, lsn, /*txn=*/0, bytes);
}

Status HeapFile::RedoDelete(uint64_t rowid, uint64_t lsn) {
  uint32_t entry_off = 0;
  MSQL_ASSIGN_OR_RETURN(Frame * dir,
                        PinDirPage(rowid, /*create=*/true, 0, &entry_off));
  uint64_t cur_lsn = LoadU64(dir->data + entry_off + kEntryLsn);
  if (cur_lsn >= lsn) {
    pool_->Unpin(dir);
    return Status::OK();
  }
  StoreU64(dir->data + entry_off + kEntryLsn, lsn);
  StoreU16(dir->data + entry_off + kEntryFlagsOff, 2);
  pool_->MarkDirty(dir, 0);
  pool_->Unpin(dir);
  return Status::OK();
}

Status HeapFile::ResetTail() {
  MSQL_ASSIGN_OR_RETURN(Frame * hdr, pool_->Pin(file_id_, 0));
  StoreU32(hdr->data + kHdrTailPage, 0);
  StoreU16(hdr->data + kHdrTailUsed, 0);
  pool_->MarkDirty(hdr, 0);
  pool_->Unpin(hdr);
  return Status::OK();
}

Status HeapFile::ScanEntries(
    const std::function<Status(uint64_t, uint16_t)>& fn) const {
  MSQL_ASSIGN_OR_RETURN(Frame * hdr, pool_->Pin(file_id_, 0));
  uint32_t dir_count = LoadU32(hdr->data + kHdrDirCount);
  std::vector<PageId> dir_pages(dir_count);
  for (uint32_t i = 0; i < dir_count; ++i) {
    dir_pages[i] = LoadU32(hdr->data + kHdrDirArray + 4 * i);
  }
  pool_->Unpin(hdr);
  for (uint32_t d = 0; d < dir_count; ++d) {
    MSQL_ASSIGN_OR_RETURN(Frame * dir, pool_->Pin(file_id_, dir_pages[d]));
    for (uint32_t i = 0; i < kEntriesPerDirPage; ++i) {
      uint32_t off = i * kEntryBytes;
      uint16_t flags = LoadU16(dir->data + off + kEntryFlagsOff);
      if (flags == 0) continue;
      uint64_t rowid =
          static_cast<uint64_t>(d) * kEntriesPerDirPage + i;
      Status st = fn(rowid, flags);
      if (!st.ok()) {
        pool_->Unpin(dir);
        return st;
      }
    }
    pool_->Unpin(dir);
  }
  return Status::OK();
}

Status HeapFile::ScanLive(
    const std::function<Status(uint64_t, std::string_view)>& fn) const {
  return ScanEntries([&](uint64_t rowid, uint16_t flags) -> Status {
    if (flags != 1) return Status::OK();
    MSQL_ASSIGN_OR_RETURN(std::string bytes, Get(rowid));
    return fn(rowid, bytes);
  });
}

Result<int64_t> HeapFile::MaxRowId() const {
  int64_t max_id = -1;
  MSQL_RETURN_IF_ERROR(ScanEntries([&](uint64_t rowid, uint16_t) -> Status {
    max_id = std::max<int64_t>(max_id, static_cast<int64_t>(rowid));
    return Status::OK();
  }));
  return max_id;
}

}  // namespace msql::storage
