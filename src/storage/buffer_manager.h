#ifndef MSQL_STORAGE_BUFFER_MANAGER_H_
#define MSQL_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace msql::storage {

/// A resident page. Callers Pin() to get one, mutate `data` through it,
/// and Unpin() when done; the frame stays addressable only while
/// pinned. MarkDirty records which transaction dirtied the page — the
/// no-steal policy refuses to write a page to disk while any of its
/// dirtying transactions is still active, so disk never holds
/// uncommitted data and recovery is pure redo.
struct Frame {
  char data[kPageSize];
  uint32_t file_id = 0;
  PageId page_id = kInvalidPageId;
  int pin_count = 0;
  bool dirty = false;
  bool valid = false;
  uint64_t last_used = 0;
  /// Transactions with unfinished writes on this page (no-steal set).
  std::set<uint64_t> dirty_txns;
};

/// Bounded pool of page frames shared by every file of one storage
/// root (heaps, directories, B+-trees). Eviction is LRU over unpinned
/// frames; dirty victims are flushed first unless pinned-by-policy
/// (dirty_txns non-empty), which makes them ineligible. With every
/// frame pinned or ineligible, Pin fails with kResourceExhausted-like
/// Internal status — the caller sized the pool too small for its
/// concurrent working set.
class BufferManager {
 public:
  explicit BufferManager(size_t frame_count);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Registers a file; the returned id keys every Pin on it.
  uint32_t RegisterFile(DiskManager* disk);

  /// Allocates a fresh page in `file_id` and pins it (zeroed).
  Result<Frame*> NewPage(uint32_t file_id);

  /// Pins page `page_id` of `file_id`, reading it from disk on miss.
  Result<Frame*> Pin(uint32_t file_id, PageId page_id);

  void Unpin(Frame* frame);

  /// Marks `frame` dirty on behalf of `txn_id` (0 = system writes that
  /// are always flushable, e.g. recovery redo or index build).
  void MarkDirty(Frame* frame, uint64_t txn_id);

  /// Releases `txn_id` from every no-steal set (call at commit/abort
  /// AFTER the WAL records that make the pages redo-able are flushed).
  void ReleaseTxn(uint64_t txn_id);

  /// Writes every eligible dirty page (empty dirty_txns) to disk and
  /// flushes the underlying files. Pages still guarded by active
  /// transactions stay resident and dirty. `max_pages` bounds how many
  /// pages are written before stopping early (still flushing the
  /// files) — the crash-matrix tests use it to die mid-checkpoint.
  Status FlushEligible(size_t max_pages = SIZE_MAX);

  /// Drops the whole pool without writing anything — the crash
  /// simulation: resident-only state is gone.
  void DropAll();

  /// Discards `file_id`'s resident pages without writing them and
  /// forgets its DiskManager — for dropped tables/indexes whose file
  /// content no longer matters. The id is never reused.
  void DiscardFile(uint32_t file_id);

  size_t frame_count() const { return frames_.size(); }

  /// Page count of the file behind `file_id` (0 once discarded).
  size_t file_size_pages(uint32_t file_id) const {
    DiskManager* disk = files_[file_id];
    return disk == nullptr ? 0 : disk->page_count();
  }

  int64_t page_reads() const { return page_reads_; }
  int64_t page_writes() const { return page_writes_; }
  int64_t evictions() const { return evictions_; }
  int64_t pin_hits() const { return pin_hits_; }

  /// Mirrors counters into `metrics` under storage.* (nullptr to stop).
  void SetMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Emits "storage.evict" spans into `tracer` (nullptr to stop).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Finds a free or evictable frame, writing back a dirty victim.
  Result<size_t> AcquireFrame();
  Status WriteBack(Frame* frame);
  void Count(const char* name, int64_t delta = 1);

  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<DiskManager*> files_;
  /// (file_id, page_id) → frame index for resident pages.
  std::map<std::pair<uint32_t, PageId>, size_t> resident_;
  uint64_t clock_ = 0;
  int64_t page_reads_ = 0;
  int64_t page_writes_ = 0;
  int64_t evictions_ = 0;
  int64_t pin_hits_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace msql::storage

#endif  // MSQL_STORAGE_BUFFER_MANAGER_H_
