#ifndef MSQL_STORAGE_HEAP_FILE_H_
#define MSQL_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"

namespace msql::storage {

/// Maximum record payload a heap page can hold (page minus the page
/// and record headers).
inline constexpr uint32_t kMaxHeapRecordBytes = kPageSize - 2 - 10;

/// Paged row store addressed by caller-assigned 64-bit row ids.
///
/// Layout (all pages kPageSize):
///   page 0            header: magic, tail data page/used, directory
///                     page-id array (dir index → page id)
///   directory pages   fixed 20-byte entries, entry i of dir page d is
///                     row id d*kEntriesPerDirPage + i:
///                       [lsn u64][page u32][offset u16][len u16][flags u16]
///                     flags: 0 absent, 1 live, 2 dead (tombstone)
///   data pages        append-only record heap: [rowid u64][len u16][bytes]
///                     updates append a fresh record and repoint the
///                     directory; dead space is never compacted (the
///                     paper workloads are small; growth is bounded by
///                     write volume, not live size).
///
/// Every directory entry carries the LSN of the WAL record that made
/// it, so recovery can replay the log idempotently: RedoPut/RedoDelete
/// apply a record only when it is newer than what the entry shows (and
/// for live entries, only when the pointed-at data actually reached
/// disk — directory and data pages hit disk independently).
class HeapFile {
 public:
  HeapFile(BufferManager* pool, uint32_t file_id) noexcept
      : pool_(pool), file_id_(file_id) {}

  /// Initializes a brand-new file (writes the header page).
  Status Create();

  /// Validates the header of an existing file.
  Status Open();

  /// Inserts or replaces the record for `rowid`, stamping `lsn` and
  /// attributing the dirtied pages to `txn` for the no-steal policy
  /// (txn 0 = system writes, always flushable).
  Status Put(uint64_t rowid, uint64_t lsn, uint64_t txn,
             std::string_view bytes);

  /// Tombstones `rowid` (kNotFound when absent or already dead).
  Status Delete(uint64_t rowid, uint64_t lsn, uint64_t txn);

  /// Reads the live record for `rowid` (kNotFound when absent/dead).
  Result<std::string> Get(uint64_t rowid) const;

  /// 0 = absent, 1 = live, 2 = dead.
  Result<uint16_t> EntryFlags(uint64_t rowid) const;

  /// LSN stamped on the entry (0 when absent).
  Result<uint64_t> EntryLsn(uint64_t rowid) const;

  // -- Recovery -----------------------------------------------------------

  /// LSN-guarded idempotent redo of a put/delete (see class comment).
  Status RedoPut(uint64_t rowid, uint64_t lsn, std::string_view bytes);
  Status RedoDelete(uint64_t rowid, uint64_t lsn);

  /// Forgets the append tail so the next Put starts a fresh data page.
  /// Recovery calls this: the durable tail pointer may lag data pages
  /// that committed records already live in, and appending over them
  /// would corrupt rows the directory still references.
  Status ResetTail();

  // -- Scans --------------------------------------------------------------

  /// Calls `fn(rowid, flags)` for every directory entry (live or dead)
  /// in rowid order.
  Status ScanEntries(
      const std::function<Status(uint64_t, uint16_t)>& fn) const;

  /// Calls `fn(rowid, bytes)` for every live row in rowid order.
  Status ScanLive(
      const std::function<Status(uint64_t, std::string_view)>& fn) const;

  /// Largest rowid with a directory entry, or -1 when empty.
  Result<int64_t> MaxRowId() const;

 private:
  static constexpr uint32_t kMagic = 0x4d514831;  // "MQH1"
  static constexpr uint32_t kEntryBytes = 20;
  static constexpr uint32_t kEntriesPerDirPage = kPageSize / kEntryBytes;
  // Header: [magic u32][tail_page u32][tail_used u16][dir_count u32],
  // then dir_count u32 directory page ids.
  static constexpr uint32_t kHeaderFixed = 4 + 4 + 2 + 4;
  static constexpr uint32_t kMaxDirPages = (kPageSize - kHeaderFixed) / 4;
  static constexpr uint32_t kDataHeader = 2;        // used u16
  static constexpr uint32_t kRecordHeader = 8 + 2;  // rowid u64, len u16

  /// Pins the directory page holding `rowid`, creating it (and its
  /// header slot) when `create` is set. Returns the entry offset too.
  Result<Frame*> PinDirPage(uint64_t rowid, bool create, uint64_t txn,
                            uint32_t* entry_offset) const;

  /// True when the heap record at (page, offset) matches the entry —
  /// i.e. the data page version the directory points at reached disk.
  bool DataValid(PageId page, uint16_t offset, uint16_t len,
                 uint64_t rowid) const;

  BufferManager* pool_;
  uint32_t file_id_;
};

}  // namespace msql::storage

#endif  // MSQL_STORAGE_HEAP_FILE_H_
