#ifndef MSQL_STORAGE_BTREE_H_
#define MSQL_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"

namespace msql::storage {

/// Keys above this never enter the tree (a page must fit several
/// cells or splitting degenerates).
inline constexpr uint32_t kMaxBtreeKeyBytes = 900;

/// Paged B+-tree over opaque, unique byte-string keys (lexicographic
/// order). Secondary indexes get multimap semantics by appending the
/// 8-byte row id to the encoded column value, which also makes every
/// entry unique. Leaves are chained for range scans. Underflow is
/// never rebalanced (deletes just shrink a node) — acceptable for the
/// paper's workloads and it keeps the structure recovery-free: index
/// files are rebuilt from a heap scan after a crash, so tree pages
/// carry no LSNs.
///
/// Layout: page 0 is the meta page (magic, root id). Node pages hold a
/// sorted slot array pointing at cells growing down from the page end:
///   leaf cell      [klen u16][key bytes]
///   internal cell  [klen u16][key bytes][child u32]
/// An internal node keeps its leftmost child in the header; cell i
/// routes keys >= its key to its child.
class BTree {
 public:
  BTree(BufferManager* pool, uint32_t file_id) noexcept
      : pool_(pool), file_id_(file_id) {}

  /// Initializes a brand-new file (meta page + empty root leaf).
  Status Create();

  /// Makes the tree empty regardless of the file's prior content:
  /// Create() on a fresh file, otherwise the meta page is rewritten to
  /// point at a new empty root (old pages become unreachable — index
  /// files are rebuilt wholesale after a crash, never compacted).
  Status Reset();

  /// Validates the meta page of an existing file.
  Status Open();

  /// Inserts `key` (no-op when already present).
  Status Insert(std::string_view key);

  /// Removes `key` (no-op when absent).
  Status Erase(std::string_view key);

  /// True when `key` is present.
  Result<bool> Contains(std::string_view key) const;

  /// Calls `fn(key)` for every key in [lo, hi] (inclusive, byte
  /// order). `fn` returns false to stop early.
  Status ScanRange(std::string_view lo, std::string_view hi,
                   const std::function<bool(std::string_view)>& fn) const;

  /// Number of keys (full leaf walk — diagnostics and tests).
  Result<int64_t> CountKeys() const;

 private:
  struct Cell {
    std::string key;
    PageId child = 0;  // internal nodes only
  };
  struct Node {
    bool is_leaf = true;
    PageId next = 0;      // leaf chain (0 = end)
    PageId leftmost = 0;  // internal: child for keys below cells[0]
    std::vector<Cell> cells;
  };

  static constexpr uint32_t kMagic = 0x4d514254;  // "MQBT"
  static constexpr uint32_t kNodeHeader = 16;

  Result<Node> ReadNode(PageId id) const;
  Status WriteNode(PageId id, const Node& node);
  static size_t NodeBytes(const Node& node);
  static bool NodeFits(const Node& node);

  Result<PageId> Root() const;
  Status SetRoot(PageId root);
  Result<PageId> NewNodePage(const Node& node);

  /// Inserts into the subtree at `id`; on split returns the promoted
  /// separator key and the new right sibling.
  Result<std::optional<std::pair<std::string, PageId>>> InsertRec(
      PageId id, std::string_view key);

  /// Leaf page whose range covers `key` (descends from the root).
  Result<PageId> FindLeaf(std::string_view key) const;

  BufferManager* pool_;
  uint32_t file_id_;
};

}  // namespace msql::storage

#endif  // MSQL_STORAGE_BTREE_H_
