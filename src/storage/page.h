#ifndef MSQL_STORAGE_PAGE_H_
#define MSQL_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace msql::storage {

/// Fixed page size for every on-disk file (heap data, row directory,
/// B+-tree nodes). 4 KiB keeps the buffer pool granularity small enough
/// that the e19 bench can run a dataset ~10x the pool without the pool
/// itself dominating memory.
inline constexpr uint32_t kPageSize = 4096;

/// Page number within one file (offset = page_id * kPageSize).
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Little-endian accessors over a raw page image. All on-disk integers
/// go through these so the format is byte-order independent.
inline uint16_t LoadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8;
}

inline uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline void StoreU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}

inline void StoreU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

inline void StoreU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

}  // namespace msql::storage

#endif  // MSQL_STORAGE_PAGE_H_
