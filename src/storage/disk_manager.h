#ifndef MSQL_STORAGE_DISK_MANAGER_H_
#define MSQL_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <string>

#include "common/result.h"
#include "storage/page.h"

namespace msql::storage {

/// Page-granular file I/O for one on-disk file. The disk manager knows
/// nothing about page contents; the buffer manager sits on top and
/// decides when pages move. Opening an existing file adopts its pages
/// (size must be a whole number of pages).
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if absent) the file at `path`.
  Status Open(const std::string& path);
  void Close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `out` (exactly kPageSize bytes).
  Status ReadPage(PageId id, char* out);

  /// Writes `data` (exactly kPageSize bytes) at page `id`. The page
  /// must have been allocated.
  Status WritePage(PageId id, const char* data);

  /// Pushes buffered writes to the OS. In this simulation a flushed
  /// write survives a "crash" (process keeps running; we only drop
  /// in-memory state), so fflush is the durability boundary.
  Status Flush();

  uint32_t page_count() const { return page_count_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint32_t page_count_ = 0;
};

}  // namespace msql::storage

#endif  // MSQL_STORAGE_DISK_MANAGER_H_
