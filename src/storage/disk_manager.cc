#include "storage/disk_manager.h"

#include <cstring>

namespace msql::storage {

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::InvalidArgument("disk manager already open on '" + path_ +
                                   "'");
  }
  // "r+b" keeps existing contents; fall back to "w+b" to create.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::Internal("cannot open storage file '" + path + "'");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal("cannot seek storage file '" + path + "'");
  }
  long size = std::ftell(f);
  if (size < 0 || size % static_cast<long>(kPageSize) != 0) {
    std::fclose(f);
    return Status::Corrupted("storage file '" + path +
                             "' is not a whole number of pages");
  }
  file_ = f;
  path_ = path;
  page_count_ = static_cast<uint32_t>(size / kPageSize);
  return Status::OK();
}

void DiskManager::Close() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<PageId> DiskManager::AllocatePage() {
  if (file_ == nullptr) return Status::Internal("disk manager not open");
  char zero[kPageSize];
  std::memset(zero, 0, sizeof(zero));
  PageId id = page_count_;
  MSQL_RETURN_IF_ERROR(WritePage(id, zero));
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (file_ == nullptr) return Status::Internal("disk manager not open");
  if (id >= page_count_) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id) + " in '" + path_ + "'");
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::Corrupted("short read of page " + std::to_string(id) +
                             " in '" + path_ + "'");
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (file_ == nullptr) return Status::Internal("disk manager not open");
  if (id > page_count_) {
    return Status::InvalidArgument("write past end of '" + path_ + "'");
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::Internal("short write of page " + std::to_string(id) +
                            " in '" + path_ + "'");
  }
  if (id == page_count_) ++page_count_;
  return Status::OK();
}

Status DiskManager::Flush() {
  if (file_ == nullptr) return Status::Internal("disk manager not open");
  if (std::fflush(file_) != 0) {
    return Status::Internal("flush of '" + path_ + "' failed");
  }
  return Status::OK();
}

}  // namespace msql::storage
