#include "storage/wal.h"

#include <cstdio>

#include "storage/page.h"

namespace msql::storage {

namespace {
constexpr size_t kFrameHeader = 4;           // len u32
constexpr size_t kRecordHeader = 1 + 8;      // type u8, lsn u64
constexpr uint32_t kMaxRecordBytes = 1 << 24;
}  // namespace

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path) {
  if (open_) return Status::InvalidArgument("WAL already open");
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::Internal("cannot open WAL '" + path + "'");
  }
  // Scan whole records to find the durable prefix and the last LSN; a
  // torn tail (short frame) is cut off — it never reached durability.
  uint64_t offset = 0;
  uint64_t last_lsn = 0;
  for (;;) {
    char head[kFrameHeader];
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) break;
    if (std::fread(head, 1, kFrameHeader, f) != kFrameHeader) break;
    uint32_t len = LoadU32(head);
    if (len < kRecordHeader || len > kMaxRecordBytes) break;
    std::string body(len, '\0');
    if (std::fread(body.data(), 1, len, f) != len) break;
    last_lsn = LoadU64(body.data() + 1);
    offset += kFrameHeader + len;
  }
  std::fclose(f);
  path_ = path;
  open_ = true;
  durable_bytes_ = offset;
  next_lsn_ = last_lsn + 1;
  flushed_lsn_ = last_lsn;
  tail_last_lsn_ = last_lsn;
  tail_.clear();
  return Status::OK();
}

void WriteAheadLog::Close() {
  open_ = false;
  tail_.clear();
}

Result<uint64_t> WriteAheadLog::Append(WalRecordType type,
                                       std::string payload) {
  if (!open_) return Status::Internal("WAL not open");
  uint64_t lsn = next_lsn_++;
  uint32_t len = static_cast<uint32_t>(kRecordHeader + payload.size());
  char head[kFrameHeader + kRecordHeader];
  StoreU32(head, len);
  head[4] = static_cast<char>(type);
  StoreU64(head + 5, lsn);
  tail_.append(head, sizeof(head));
  tail_.append(payload);
  tail_last_lsn_ = lsn;
  ++appends_;
  if (metrics_ != nullptr) metrics_->Inc("storage.wal_appends");
  return lsn;
}

Status WriteAheadLog::Flush() {
  if (!open_) return Status::Internal("WAL not open");
  if (tail_.empty()) return Status::OK();
  obs::ScopedSpan span(tracer_, "wal.flush", "storage");
  span.Annotate("bytes", static_cast<int64_t>(tail_.size()));
  span.Annotate("through_lsn", static_cast<int64_t>(tail_last_lsn_));
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  if (f == nullptr) {
    return Status::Internal("cannot reopen WAL '" + path_ + "'");
  }
  if (std::fseek(f, static_cast<long>(durable_bytes_), SEEK_SET) != 0 ||
      std::fwrite(tail_.data(), 1, tail_.size(), f) != tail_.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return Status::Internal("WAL flush to '" + path_ + "' failed");
  }
  std::fclose(f);
  durable_bytes_ += tail_.size();
  flushed_lsn_ = tail_last_lsn_;
  tail_.clear();
  ++flushes_;
  if (metrics_ != nullptr) metrics_->Inc("storage.wal_flushes");
  return Status::OK();
}

void WriteAheadLog::DropUnflushed() {
  tail_.clear();
  next_lsn_ = flushed_lsn_ + 1;
  tail_last_lsn_ = flushed_lsn_;
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadAll() const {
  std::vector<WalRecord> out;
  if (!open_) return Status::Internal("WAL not open");
  if (durable_bytes_ == 0) return out;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::Internal("cannot reopen WAL '" + path_ + "'");
  }
  uint64_t offset = 0;
  while (offset < durable_bytes_) {
    char head[kFrameHeader];
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(head, 1, kFrameHeader, f) != kFrameHeader) {
      std::fclose(f);
      return Status::Corrupted("WAL '" + path_ + "' truncated mid-prefix");
    }
    uint32_t len = LoadU32(head);
    if (len < kRecordHeader || len > kMaxRecordBytes) {
      std::fclose(f);
      return Status::Corrupted("WAL '" + path_ + "' has a bad frame length");
    }
    std::string body(len, '\0');
    if (std::fread(body.data(), 1, len, f) != len) {
      std::fclose(f);
      return Status::Corrupted("WAL '" + path_ + "' truncated mid-record");
    }
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(body[0]);
    rec.lsn = LoadU64(body.data() + 1);
    rec.payload = body.substr(kRecordHeader);
    out.push_back(std::move(rec));
    offset += kFrameHeader + len;
  }
  std::fclose(f);
  return out;
}

}  // namespace msql::storage
