#ifndef MSQL_MDBS_AUXILIARY_DIRECTORY_H_
#define MSQL_MDBS_AUXILIARY_DIRECTORY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace msql::mdbs {

/// Per-DDL-verb commit behaviour recorded by INCORPORATE (§3.1): whether
/// the verb auto-commits on this LDBMS (COMMIT) or participates in the
/// 2PC protocol (NOCOMMIT). "This is necessary to cope with subtle
/// heterogeneities that play an important role in the definition of the
/// semantics of multidatabase commit and rollback."
struct DdlCommitModes {
  bool create_autocommits = false;
  bool insert_autocommits = false;
  bool drop_autocommits = false;
};

/// One Auxiliary Directory entry: everything the MDBS must know to reach
/// and coordinate a service.
struct ServiceDescriptor {
  std::string name;
  std::string site;
  /// CONNECTMODE CONNECT: the LDBMS supports multiple databases;
  /// NOCONNECT: it serves one default database only.
  bool connect_mode = true;
  /// COMMITMODE COMMIT: automatic commit only; NOCOMMIT: the LDBMS
  /// exposes a two-phase-commit (prepared-to-commit) interface.
  bool autocommit_only = false;
  DdlCommitModes ddl_modes;

  /// True if the service can hold a visible prepared state.
  bool SupportsTwoPhaseCommit() const { return !autocommit_only; }

  /// INCORPORATE statement text that would reproduce this entry.
  std::string ToIncorporateSql() const;
};

/// The Auxiliary Directory: registry of incorporated services.
class AuxiliaryDirectory {
 public:
  /// Inserts or replaces the descriptor (INCORPORATE replaces, like
  /// IMPORT replaces previously imported definitions).
  void Incorporate(ServiceDescriptor descriptor);

  bool HasService(std::string_view name) const;
  Result<const ServiceDescriptor*> GetService(std::string_view name) const;
  Status RemoveService(std::string_view name);
  std::vector<std::string> ServiceNames() const;
  size_t size() const { return services_.size(); }

 private:
  std::map<std::string, ServiceDescriptor> services_;
};

}  // namespace msql::mdbs

#endif  // MSQL_MDBS_AUXILIARY_DIRECTORY_H_
