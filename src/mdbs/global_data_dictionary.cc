#include "mdbs/global_data_dictionary.h"

#include <algorithm>

#include "common/string_util.h"

namespace msql::mdbs {

Status GlobalDataDictionary::RegisterDatabase(std::string_view database,
                                              std::string_view service) {
  std::string db_key = ToLower(database);
  std::string service_key = ToLower(service);
  auto it = databases_.find(db_key);
  if (it != databases_.end()) {
    if (it->second.service != service_key) {
      return Status::AlreadyExists(
          "database '" + db_key + "' is already registered from service '" +
          it->second.service + "' (names must be unique in the federation)");
    }
    return Status::OK();
  }
  GddDatabase db;
  db.name = db_key;
  db.service = service_key;
  databases_.emplace(db_key, std::move(db));
  return Status::OK();
}

Status GlobalDataDictionary::RemoveDatabase(std::string_view database) {
  if (databases_.erase(ToLower(database)) == 0) {
    return Status::NotFound("database '" + std::string(database) +
                            "' is not in the GDD");
  }
  return Status::OK();
}

bool GlobalDataDictionary::HasDatabase(std::string_view database) const {
  return databases_.count(ToLower(database)) > 0;
}

Result<const GddDatabase*> GlobalDataDictionary::GetDatabase(
    std::string_view database) const {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(database) +
                            "' is not in the GDD");
  }
  return &it->second;
}

std::vector<std::string> GlobalDataDictionary::DatabaseNames() const {
  std::vector<std::string> out;
  out.reserve(databases_.size());
  for (const auto& [name, db] : databases_) out.push_back(name);
  return out;
}

Status GlobalDataDictionary::PutTable(std::string_view database,
                                      relational::TableSchema schema) {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(database) +
                            "' is not in the GDD");
  }
  std::string table_name = schema.table_name();
  it->second.tables[table_name] = std::move(schema);
  // A (re-)IMPORT may change the column list, so any existing ANALYZE
  // snapshot is now stale. Bumping the generation (rather than erasing
  // the stats) keeps the staleness observable and testable.
  ++it->second.schema_generations[table_name];
  return Status::OK();
}

Status GlobalDataDictionary::RemoveTable(std::string_view database,
                                         std::string_view table) {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(database) +
                            "' is not in the GDD");
  }
  std::string table_key = ToLower(table);
  if (it->second.tables.erase(table_key) == 0) {
    return Status::NotFound("table '" + std::string(table) +
                            "' is not in the GDD for '" + it->second.name +
                            "'");
  }
  it->second.stats.erase(table_key);
  it->second.schema_generations.erase(table_key);
  return Status::OK();
}

bool GlobalDataDictionary::HasTable(std::string_view database,
                                    std::string_view table) const {
  auto it = databases_.find(ToLower(database));
  return it != databases_.end() &&
         it->second.tables.count(ToLower(table)) > 0;
}

Result<const relational::TableSchema*> GlobalDataDictionary::GetTable(
    std::string_view database, std::string_view table) const {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(database) +
                            "' is not in the GDD");
  }
  auto table_it = it->second.tables.find(ToLower(table));
  if (table_it == it->second.tables.end()) {
    return Status::NotFound("table '" + std::string(table) +
                            "' is not in the GDD for '" + it->second.name +
                            "'");
  }
  return &table_it->second;
}

Status GlobalDataDictionary::PutTableStats(std::string_view database,
                                           std::string_view table,
                                           TableStats stats) {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(database) +
                            "' is not in the GDD");
  }
  std::string table_key = ToLower(table);
  if (it->second.tables.count(table_key) == 0) {
    return Status::NotFound("table '" + std::string(table) +
                            "' is not in the GDD for '" + it->second.name +
                            "' (IMPORT it before ANALYZE)");
  }
  auto stats_it = it->second.stats.find(table_key);
  stats.version =
      stats_it == it->second.stats.end() ? 1 : stats_it->second.version + 1;
  stats.schema_generation = it->second.schema_generations[table_key];
  it->second.stats[table_key] = std::move(stats);
  // A fresh snapshot supersedes whatever churn preceded it.
  it->second.write_churn[table_key] = 0;
  return Status::OK();
}

void GlobalDataDictionary::RecordWriteChurn(std::string_view database,
                                            std::string_view table,
                                            int64_t rows) {
  if (rows <= 0) return;
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) return;
  std::string table_key = ToLower(table);
  if (it->second.tables.count(table_key) == 0) return;
  it->second.write_churn[table_key] += rows;
}

int64_t GlobalDataDictionary::WriteChurn(std::string_view database,
                                         std::string_view table) const {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) return 0;
  auto churn_it = it->second.write_churn.find(ToLower(table));
  return churn_it == it->second.write_churn.end() ? 0 : churn_it->second;
}

Result<const TableStats*> GlobalDataDictionary::GetTableStats(
    std::string_view database, std::string_view table) const {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(database) +
                            "' is not in the GDD");
  }
  auto stats_it = it->second.stats.find(ToLower(table));
  if (stats_it == it->second.stats.end()) {
    return Status::NotFound("no statistics for '" + it->second.name + "." +
                            std::string(table) + "' (run ANALYZE)");
  }
  return &stats_it->second;
}

bool GlobalDataDictionary::TableStatsFresh(std::string_view database,
                                           std::string_view table) const {
  auto it = databases_.find(ToLower(database));
  if (it == databases_.end()) return false;
  std::string table_key = ToLower(table);
  auto stats_it = it->second.stats.find(table_key);
  if (stats_it == it->second.stats.end()) return false;
  auto gen_it = it->second.schema_generations.find(table_key);
  uint64_t current = gen_it == it->second.schema_generations.end()
                         ? 0
                         : gen_it->second;
  if (stats_it->second.schema_generation != current) return false;
  // Data churn: past the threshold the snapshot's row counts are
  // fiction, so the per-query heuristic fallback must re-engage.
  auto churn_it = it->second.write_churn.find(table_key);
  int64_t churn = churn_it == it->second.write_churn.end()
                      ? 0
                      : churn_it->second;
  double allowed = std::max(
      static_cast<double>(churn_floor_rows_),
      churn_fraction_ * static_cast<double>(stats_it->second.row_count));
  return static_cast<double>(churn) <= allowed;
}

Result<std::vector<std::string>> GlobalDataDictionary::MatchTables(
    std::string_view database, std::string_view pattern) const {
  MSQL_ASSIGN_OR_RETURN(const GddDatabase* db, GetDatabase(database));
  std::vector<std::string> out;
  for (const auto& [name, schema] : db->tables) {
    if (WildcardMatch(pattern, name)) out.push_back(name);
  }
  return out;
}

Result<std::vector<std::string>> GlobalDataDictionary::MatchColumns(
    std::string_view database, std::string_view table,
    std::string_view pattern) const {
  MSQL_ASSIGN_OR_RETURN(const relational::TableSchema* schema,
                        GetTable(database, table));
  return schema->MatchColumns(pattern);
}

Status GlobalDataDictionary::CreateMultidatabase(
    std::string_view name, std::vector<std::string> members) {
  std::string key = ToLower(name);
  if (databases_.count(key) > 0) {
    return Status::AlreadyExists("'" + key +
                                 "' already names a database");
  }
  if (multidatabases_.count(key) > 0) {
    return Status::AlreadyExists("multidatabase '" + key +
                                 "' already exists");
  }
  if (members.empty()) {
    return Status::InvalidArgument("multidatabase '" + key +
                                   "' has no member databases");
  }
  std::vector<std::string> canonical;
  for (auto& member : members) {
    std::string member_key = ToLower(member);
    if (databases_.count(member_key) == 0) {
      return Status::NotFound("multidatabase member '" + member_key +
                              "' is not in the GDD (IMPORT it first)");
    }
    canonical.push_back(std::move(member_key));
  }
  multidatabases_.emplace(std::move(key), std::move(canonical));
  return Status::OK();
}

Status GlobalDataDictionary::DropMultidatabase(std::string_view name) {
  if (multidatabases_.erase(ToLower(name)) == 0) {
    return Status::NotFound("multidatabase '" + std::string(name) +
                            "' does not exist");
  }
  return Status::OK();
}

bool GlobalDataDictionary::HasMultidatabase(std::string_view name) const {
  return multidatabases_.count(ToLower(name)) > 0;
}

Result<const std::vector<std::string>*>
GlobalDataDictionary::GetMultidatabase(std::string_view name) const {
  auto it = multidatabases_.find(ToLower(name));
  if (it == multidatabases_.end()) {
    return Status::NotFound("multidatabase '" + std::string(name) +
                            "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> GlobalDataDictionary::MultidatabaseNames() const {
  std::vector<std::string> out;
  out.reserve(multidatabases_.size());
  for (const auto& [name, members] : multidatabases_) out.push_back(name);
  return out;
}

size_t GlobalDataDictionary::TotalTableCount() const {
  size_t count = 0;
  for (const auto& [name, db] : databases_) count += db.tables.size();
  return count;
}

std::string GlobalDataDictionary::ToString() const {
  std::string out;
  for (const auto& [db_name, db] : databases_) {
    out += db_name + " (service " + db.service + ")\n";
    for (const auto& [table_name, schema] : db.tables) {
      out += "  " + schema.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace msql::mdbs
