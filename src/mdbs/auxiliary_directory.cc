#include "mdbs/auxiliary_directory.h"

#include "common/string_util.h"

namespace msql::mdbs {

namespace {
std::string CommitWord(bool autocommits) {
  return autocommits ? "COMMIT" : "NOCOMMIT";
}
}  // namespace

std::string ServiceDescriptor::ToIncorporateSql() const {
  std::string out = "INCORPORATE SERVICE " + name;
  if (!site.empty()) out += " SITE " + site;
  out += " CONNECTMODE ";
  out += connect_mode ? "CONNECT" : "NOCONNECT";
  out += " COMMITMODE " + CommitWord(autocommit_only);
  out += " CREATE " + CommitWord(ddl_modes.create_autocommits);
  out += " INSERT " + CommitWord(ddl_modes.insert_autocommits);
  out += " DROP " + CommitWord(ddl_modes.drop_autocommits);
  return out;
}

void AuxiliaryDirectory::Incorporate(ServiceDescriptor descriptor) {
  descriptor.name = ToLower(descriptor.name);
  descriptor.site = ToLower(descriptor.site);
  services_[descriptor.name] = std::move(descriptor);
}

bool AuxiliaryDirectory::HasService(std::string_view name) const {
  return services_.count(ToLower(name)) > 0;
}

Result<const ServiceDescriptor*> AuxiliaryDirectory::GetService(
    std::string_view name) const {
  auto it = services_.find(ToLower(name));
  if (it == services_.end()) {
    return Status::NotFound("service '" + std::string(name) +
                            "' has not been incorporated");
  }
  return &it->second;
}

Status AuxiliaryDirectory::RemoveService(std::string_view name) {
  if (services_.erase(ToLower(name)) == 0) {
    return Status::NotFound("service '" + std::string(name) +
                            "' has not been incorporated");
  }
  return Status::OK();
}

std::vector<std::string> AuxiliaryDirectory::ServiceNames() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, desc] : services_) out.push_back(name);
  return out;
}

}  // namespace msql::mdbs
