#ifndef MSQL_MDBS_CATALOG_OPS_H_
#define MSQL_MDBS_CATALOG_OPS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "mdbs/auxiliary_directory.h"
#include "mdbs/global_data_dictionary.h"
#include "netsim/environment.h"

namespace msql::mdbs {

/// Parameters of an IMPORT DATABASE statement (§3.1):
///   IMPORT DATABASE <db> FROM SERVICE <svc>
///       [ TABLE <table> [ COLUMN {<column>} ] ]
///       [ VIEW <view> [ COLUMN {<column>} ] ]
/// No table/view → import every public table; a named object without
/// columns → whole definition; with columns → partial definition. An
/// imported view registers in the GDD like a table (it is a table-like
/// object at the multidatabase level).
struct ImportSpec {
  std::string database;
  std::string service;
  std::optional<std::string> table;
  std::optional<std::string> view;
  std::vector<std::string> columns;
};

/// Executes INCORPORATE SERVICE: verifies the service is reachable in
/// the environment (one PING round-trip) and records the descriptor in
/// the AD. The declared capabilities are stored as given — the AD
/// reflects what the administrator asserted, and the coordinator trusts
/// it, exactly as the paper's loosely coupled model implies.
Status IncorporateService(netsim::Environment* env, AuxiliaryDirectory* ad,
                          ServiceDescriptor descriptor);

/// Executes IMPORT DATABASE: fetches schema rows from the service's LCS
/// through the LAM protocol (kDescribe) and installs or replaces the
/// table definitions in the GDD. Returns the names of imported tables.
Result<std::vector<std::string>> ImportDatabase(
    netsim::Environment* env, const AuxiliaryDirectory& ad,
    GlobalDataDictionary* gdd, const ImportSpec& spec);

/// Parameters of an ANALYZE DATABASE statement:
///   ANALYZE DATABASE <db> [ TABLE <table> ]
/// No table → analyze every imported table of the database.
struct AnalyzeSpec {
  std::string database;
  std::optional<std::string> table;
};

/// Executes ANALYZE DATABASE: asks the database's LAM (kAnalyze) to
/// scan the named table (or all of them) and installs the per-column
/// statistics snapshots in the GDD, bumping each table's stats version.
/// Only tables already imported into the GDD are recorded — ANALYZE
/// never widens the visible catalog. Returns the analyzed table names.
Result<std::vector<std::string>> AnalyzeDatabase(
    netsim::Environment* env, const AuxiliaryDirectory& ad,
    GlobalDataDictionary* gdd, const AnalyzeSpec& spec);

}  // namespace msql::mdbs

#endif  // MSQL_MDBS_CATALOG_OPS_H_
