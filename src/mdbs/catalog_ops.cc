#include "mdbs/catalog_ops.h"

#include <map>

#include "common/string_util.h"

namespace msql::mdbs {

using netsim::LamRequest;
using netsim::LamRequestType;
using relational::ColumnDef;
using relational::TableSchema;
using relational::TypeFromName;

Status IncorporateService(netsim::Environment* env, AuxiliaryDirectory* ad,
                          ServiceDescriptor descriptor) {
  LamRequest ping;
  ping.type = LamRequestType::kPing;
  MSQL_ASSIGN_OR_RETURN(auto outcome,
                        env->Call(descriptor.name, ping, /*at_micros=*/0));
  if (!outcome.response.status.ok()) {
    return outcome.response.status;
  }
  ad->Incorporate(std::move(descriptor));
  return Status::OK();
}

Result<std::vector<std::string>> ImportDatabase(
    netsim::Environment* env, const AuxiliaryDirectory& ad,
    GlobalDataDictionary* gdd, const ImportSpec& spec) {
  // The service must be incorporated first — IMPORT consults the AD for
  // where/how to reach it.
  MSQL_ASSIGN_OR_RETURN(const ServiceDescriptor* service,
                        ad.GetService(spec.service));

  if (spec.table.has_value() && spec.view.has_value()) {
    return Status::InvalidArgument(
        "IMPORT may name a TABLE or a VIEW, not both");
  }
  LamRequest describe;
  describe.type = spec.view.has_value() ? LamRequestType::kDescribeView
                                        : LamRequestType::kDescribe;
  describe.database = ToLower(spec.database);
  if (spec.table.has_value()) describe.sql = ToLower(*spec.table);
  if (spec.view.has_value()) describe.sql = ToLower(*spec.view);
  MSQL_ASSIGN_OR_RETURN(auto outcome,
                        env->Call(service->name, describe, /*at_micros=*/0));
  MSQL_RETURN_IF_ERROR(outcome.response.status);

  // Group the (table, column, type, width) rows by table.
  struct PendingTable {
    std::vector<ColumnDef> columns;
  };
  std::map<std::string, PendingTable> pending;
  std::vector<std::string> table_order;
  for (const auto& row : outcome.response.result.rows) {
    if (row.size() != 4 || !row[0].is_text() || !row[1].is_text() ||
        !row[2].is_text() || !row[3].is_integer()) {
      return Status::Internal("malformed DESCRIBE row from service '" +
                              service->name + "'");
    }
    const std::string& table_name = row[0].AsText();
    ColumnDef def;
    def.name = row[1].AsText();
    MSQL_ASSIGN_OR_RETURN(def.type, TypeFromName(row[2].AsText()));
    def.width = static_cast<int>(row[3].AsInteger());
    // Partial import: keep only the requested columns.
    if (!spec.columns.empty()) {
      bool wanted = false;
      for (const auto& c : spec.columns) {
        if (EqualsIgnoreCase(c, def.name)) wanted = true;
      }
      if (!wanted) continue;
    }
    auto it = pending.find(table_name);
    if (it == pending.end()) {
      table_order.push_back(table_name);
      it = pending.emplace(table_name, PendingTable{}).first;
    }
    it->second.columns.push_back(std::move(def));
  }
  if ((spec.table.has_value() || spec.view.has_value()) &&
      pending.empty()) {
    return Status::NotFound(
        "'" + (spec.table.has_value() ? *spec.table : *spec.view) +
        "' has no importable columns on '" + spec.database + "'");
  }

  MSQL_RETURN_IF_ERROR(gdd->RegisterDatabase(spec.database, spec.service));
  std::vector<std::string> imported;
  for (const auto& table_name : table_order) {
    MSQL_ASSIGN_OR_RETURN(
        TableSchema schema,
        TableSchema::Create(table_name,
                            std::move(pending[table_name].columns)));
    MSQL_RETURN_IF_ERROR(gdd->PutTable(spec.database, std::move(schema)));
    imported.push_back(table_name);
  }
  return imported;
}

Result<std::vector<std::string>> AnalyzeDatabase(
    netsim::Environment* env, const AuxiliaryDirectory& ad,
    GlobalDataDictionary* gdd, const AnalyzeSpec& spec) {
  // The database must already be imported — ANALYZE annotates the GDD's
  // existing table definitions, it never discovers new ones.
  MSQL_ASSIGN_OR_RETURN(const GddDatabase* db,
                        gdd->GetDatabase(spec.database));
  MSQL_ASSIGN_OR_RETURN(const ServiceDescriptor* service,
                        ad.GetService(db->service));
  if (spec.table.has_value() &&
      !gdd->HasTable(spec.database, *spec.table)) {
    return Status::NotFound("table '" + *spec.table +
                            "' is not in the GDD for '" + db->name +
                            "' (IMPORT it before ANALYZE)");
  }

  LamRequest analyze;
  analyze.type = LamRequestType::kAnalyze;
  analyze.database = ToLower(spec.database);
  if (spec.table.has_value()) analyze.sql = ToLower(*spec.table);
  MSQL_ASSIGN_OR_RETURN(auto outcome,
                        env->Call(service->name, analyze, /*at_micros=*/0));
  MSQL_RETURN_IF_ERROR(outcome.response.status);

  // Group the (table, column, row_count, distinct, min, max, avg_width)
  // rows into per-table snapshots.
  std::map<std::string, TableStats> pending;
  std::vector<std::string> table_order;
  for (const auto& row : outcome.response.result.rows) {
    if (row.size() != 7 || !row[0].is_text() || !row[1].is_text() ||
        !row[2].is_integer() || !row[3].is_integer() || !row[4].is_text() ||
        !row[5].is_text() || !row[6].is_real()) {
      return Status::Internal("malformed ANALYZE row from service '" +
                              service->name + "'");
    }
    const std::string& table_name = row[0].AsText();
    auto it = pending.find(table_name);
    if (it == pending.end()) {
      table_order.push_back(table_name);
      it = pending.emplace(table_name, TableStats{}).first;
    }
    it->second.row_count = row[2].AsInteger();
    ColumnStats col;
    col.distinct_values = row[3].AsInteger();
    col.min_value = row[4].AsText();
    col.max_value = row[5].AsText();
    col.avg_width_bytes = row[6].AsReal();
    it->second.avg_row_bytes += col.avg_width_bytes;
    it->second.columns.emplace(row[1].AsText(), std::move(col));
  }

  std::vector<std::string> analyzed;
  for (const auto& table_name : table_order) {
    // Locally visible tables that were never imported stay invisible at
    // the multidatabase level; skip them rather than widen the catalog.
    if (!gdd->HasTable(spec.database, table_name)) continue;
    MSQL_RETURN_IF_ERROR(gdd->PutTableStats(
        spec.database, table_name, std::move(pending[table_name])));
    analyzed.push_back(table_name);
  }
  return analyzed;
}

}  // namespace msql::mdbs
