#ifndef MSQL_MDBS_GLOBAL_DATA_DICTIONARY_H_
#define MSQL_MDBS_GLOBAL_DATA_DICTIONARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"

namespace msql::mdbs {

/// Per-column statistics gathered by ANALYZE against the local engine.
struct ColumnStats {
  /// Number of distinct non-NULL values observed.
  int64_t distinct_values = 0;
  /// Display renderings of the smallest/largest non-NULL value (empty
  /// when the column held only NULLs or the table was empty).
  std::string min_value;
  std::string max_value;
  /// Average wire bytes per value (display bytes + per-value framing),
  /// matching the LamResponse::WireBytes accounting so transfer-cost
  /// estimates line up with what netsim actually charges.
  double avg_width_bytes = 0.0;
};

/// Per-table statistics snapshot. `version` bumps on every re-ANALYZE;
/// `schema_generation` records the GDD schema generation the snapshot
/// was taken against, so a re-IMPORT makes the stats detectably stale.
struct TableStats {
  int64_t row_count = 0;
  /// Average wire bytes per full tuple (sum of column avg widths).
  double avg_row_bytes = 0.0;
  int64_t version = 0;
  uint64_t schema_generation = 0;
  /// column name → stats.
  std::map<std::string, ColumnStats> columns;
};

/// One database known at the multidatabase level: its serving service
/// and the (possibly partial) schemas imported for its tables.
struct GddDatabase {
  std::string name;
  std::string service;
  /// table name → imported schema (possibly a partial column list).
  std::map<std::string, relational::TableSchema> tables;
  /// table name → ANALYZE statistics (absent until analyzed).
  std::map<std::string, TableStats> stats;
  /// table name → schema generation, bumped every time PutTable
  /// replaces the definition. Stats carrying an older generation are
  /// stale and the optimizer falls back to the paper heuristics.
  std::map<std::string, uint64_t> schema_generations;
  /// table name → rows written (INSERT/UPDATE/DELETE) since the last
  /// ANALYZE snapshot. Schema generation alone misses pure data churn:
  /// heavy DML on an unchanged schema would otherwise never invalidate
  /// the snapshot and the cost model would plan on stale row counts.
  std::map<std::string, int64_t> write_churn;
};

/// The Global Data Dictionary: "a repository for the names of the
/// database objects that are visible at the multidatabase level ...
/// names of tables together with the names, types and widths of their
/// columns" (§3.1). It powers multiple-identifier detection and the
/// substitution of implicit semantic variables.
class GlobalDataDictionary {
 public:
  /// Registers a database served by `service` (idempotent when already
  /// registered with the same service; error on a conflicting service —
  /// database names must be unique inside the federation).
  Status RegisterDatabase(std::string_view database,
                          std::string_view service);

  Status RemoveDatabase(std::string_view database);
  bool HasDatabase(std::string_view database) const;
  Result<const GddDatabase*> GetDatabase(std::string_view database) const;
  std::vector<std::string> DatabaseNames() const;

  /// Inserts or replaces a table definition ("The IMPORT operation
  /// replaces the definition of previously imported database objects").
  Status PutTable(std::string_view database,
                  relational::TableSchema schema);

  Status RemoveTable(std::string_view database, std::string_view table);
  bool HasTable(std::string_view database, std::string_view table) const;
  Result<const relational::TableSchema*> GetTable(
      std::string_view database, std::string_view table) const;

  // -- Statistics catalog (ANALYZE) ---------------------------------------

  /// Records an ANALYZE snapshot for `database.table`. The table must
  /// already be imported (kNotFound otherwise). The dictionary manages
  /// versioning: the stored snapshot's `version` is the previous
  /// version + 1 and its `schema_generation` is stamped to the table's
  /// current generation, marking the stats fresh.
  Status PutTableStats(std::string_view database, std::string_view table,
                       TableStats stats);

  /// Stats for `database.table`; kNotFound when the database, table or
  /// snapshot does not exist. The snapshot may be stale — check
  /// TableStatsFresh before trusting it for optimization.
  Result<const TableStats*> GetTableStats(std::string_view database,
                                          std::string_view table) const;

  /// True iff a stats snapshot exists, was taken against the table's
  /// current schema generation (i.e. no re-IMPORT since), and the
  /// write churn recorded since the snapshot stays under the staleness
  /// threshold.
  bool TableStatsFresh(std::string_view database,
                       std::string_view table) const;

  /// Records `rows` rows written to `database.table` by committed DML.
  /// Unknown objects are ignored (writes through unimported paths
  /// cannot stale anything). Resets on the next PutTableStats.
  void RecordWriteChurn(std::string_view database, std::string_view table,
                        int64_t rows);

  /// Rows written to `database.table` since its last ANALYZE (0 when
  /// never written or just analyzed).
  int64_t WriteChurn(std::string_view database,
                     std::string_view table) const;

  /// Staleness threshold: stats go stale once churn exceeds
  /// max(`floor_rows`, `fraction` × analyzed row count). Defaults: 0.2
  /// and 64 — a fifth of the table must change (or 64 rows for small
  /// tables) before the optimizer drops back to the paper heuristics.
  void set_stats_churn_limit(double fraction, int64_t floor_rows) {
    churn_fraction_ = fraction;
    churn_floor_rows_ = floor_rows;
  }
  double stats_churn_fraction() const { return churn_fraction_; }
  int64_t stats_churn_floor_rows() const { return churn_floor_rows_; }

  /// Table names in `database` matching an MSQL '%' pattern.
  Result<std::vector<std::string>> MatchTables(
      std::string_view database, std::string_view pattern) const;

  /// Column names of `database.table` matching an MSQL '%' pattern.
  Result<std::vector<std::string>> MatchColumns(
      std::string_view database, std::string_view table,
      std::string_view pattern) const;

  // -- Multidatabases (virtual databases, §2) -----------------------------

  /// Registers a *multidatabase*: a virtual database name that stands
  /// for a set of member databases ("creation and manipulation of ...
  /// virtual databases"). Members must already be in the GDD and the
  /// name must not collide with a database or another multidatabase.
  Status CreateMultidatabase(std::string_view name,
                             std::vector<std::string> members);

  Status DropMultidatabase(std::string_view name);
  bool HasMultidatabase(std::string_view name) const;

  /// Member databases of `name` (in declaration order).
  Result<const std::vector<std::string>*> GetMultidatabase(
      std::string_view name) const;

  std::vector<std::string> MultidatabaseNames() const;

  /// Total number of imported tables across all databases.
  size_t TotalTableCount() const;

  /// Human-readable dump for diagnostics and examples.
  std::string ToString() const;

 private:
  std::map<std::string, GddDatabase> databases_;
  std::map<std::string, std::vector<std::string>> multidatabases_;
  double churn_fraction_ = 0.2;
  int64_t churn_floor_rows_ = 64;
};

}  // namespace msql::mdbs

#endif  // MSQL_MDBS_GLOBAL_DATA_DICTIONARY_H_
