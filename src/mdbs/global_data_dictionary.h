#ifndef MSQL_MDBS_GLOBAL_DATA_DICTIONARY_H_
#define MSQL_MDBS_GLOBAL_DATA_DICTIONARY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"

namespace msql::mdbs {

/// One database known at the multidatabase level: its serving service
/// and the (possibly partial) schemas imported for its tables.
struct GddDatabase {
  std::string name;
  std::string service;
  /// table name → imported schema (possibly a partial column list).
  std::map<std::string, relational::TableSchema> tables;
};

/// The Global Data Dictionary: "a repository for the names of the
/// database objects that are visible at the multidatabase level ...
/// names of tables together with the names, types and widths of their
/// columns" (§3.1). It powers multiple-identifier detection and the
/// substitution of implicit semantic variables.
class GlobalDataDictionary {
 public:
  /// Registers a database served by `service` (idempotent when already
  /// registered with the same service; error on a conflicting service —
  /// database names must be unique inside the federation).
  Status RegisterDatabase(std::string_view database,
                          std::string_view service);

  Status RemoveDatabase(std::string_view database);
  bool HasDatabase(std::string_view database) const;
  Result<const GddDatabase*> GetDatabase(std::string_view database) const;
  std::vector<std::string> DatabaseNames() const;

  /// Inserts or replaces a table definition ("The IMPORT operation
  /// replaces the definition of previously imported database objects").
  Status PutTable(std::string_view database,
                  relational::TableSchema schema);

  Status RemoveTable(std::string_view database, std::string_view table);
  bool HasTable(std::string_view database, std::string_view table) const;
  Result<const relational::TableSchema*> GetTable(
      std::string_view database, std::string_view table) const;

  /// Table names in `database` matching an MSQL '%' pattern.
  Result<std::vector<std::string>> MatchTables(
      std::string_view database, std::string_view pattern) const;

  /// Column names of `database.table` matching an MSQL '%' pattern.
  Result<std::vector<std::string>> MatchColumns(
      std::string_view database, std::string_view table,
      std::string_view pattern) const;

  // -- Multidatabases (virtual databases, §2) -----------------------------

  /// Registers a *multidatabase*: a virtual database name that stands
  /// for a set of member databases ("creation and manipulation of ...
  /// virtual databases"). Members must already be in the GDD and the
  /// name must not collide with a database or another multidatabase.
  Status CreateMultidatabase(std::string_view name,
                             std::vector<std::string> members);

  Status DropMultidatabase(std::string_view name);
  bool HasMultidatabase(std::string_view name) const;

  /// Member databases of `name` (in declaration order).
  Result<const std::vector<std::string>*> GetMultidatabase(
      std::string_view name) const;

  std::vector<std::string> MultidatabaseNames() const;

  /// Total number of imported tables across all databases.
  size_t TotalTableCount() const;

  /// Human-readable dump for diagnostics and examples.
  std::string ToString() const;

 private:
  std::map<std::string, GddDatabase> databases_;
  std::map<std::string, std::vector<std::string>> multidatabases_;
};

}  // namespace msql::mdbs

#endif  // MSQL_MDBS_GLOBAL_DATA_DICTIONARY_H_
