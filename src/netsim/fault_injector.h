#ifndef MSQL_NETSIM_FAULT_INJECTOR_H_
#define MSQL_NETSIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "netsim/lam.h"

namespace msql::netsim {

/// What an injected fault does to one intercepted RPC.
///
/// The split between kLostRequest and kLostResponse is the heart of the
/// model: both look identical to the coordinator (no response within the
/// timeout) but leave the LDBMS in different states — the request never
/// arrived vs. it was executed and only the acknowledgement vanished.
/// The latter is the lost-commit-ACK hazard of §3.2.1 that only a
/// kQueryTxnState re-probe can resolve.
enum class FaultAction {
  kNone,
  /// The request vanishes before reaching the LAM; the LDBMS does not
  /// execute it. The caller times out.
  kLostRequest,
  /// The LAM executes the request but its response vanishes. The caller
  /// times out with the local state already changed.
  kLostResponse,
  /// The LAM refuses the request without dispatching it (transient
  /// overload / reconnect window). The caller gets an immediate
  /// kUnavailable and knows the request was not executed.
  kReject,
  /// The call succeeds but the request leg is slowed by
  /// `extra_latency_micros`.
  kLatencySpike,
};

std::string_view FaultActionName(FaultAction action);

/// One scripted fault: fires on calls matching (service, request type)
/// whose per-rule match ordinal falls in [from_match, from_match+count),
/// each firing gated by a seeded Bernoulli trial.
struct FaultRule {
  /// Service the rule applies to ("" = every service).
  std::string service;
  /// Request verb the rule applies to (nullopt = every verb).
  std::optional<LamRequestType> request_type;
  FaultAction action = FaultAction::kReject;
  /// 1-based ordinal of the first matching call that can fire.
  int from_match = 1;
  /// Number of consecutive matching calls that can fire (-1 = forever).
  int count = 1;
  /// Probability that an eligible call actually faults.
  double probability = 1.0;
  /// Added to the request leg (kLatencySpike only).
  int64_t extra_latency_micros = 0;

  /// Fault exactly the `n`-th matching call.
  static FaultRule NthCall(std::string service,
                           std::optional<LamRequestType> type, int n,
                           FaultAction action);
  /// Fault the first `k` matching calls, then recover.
  static FaultRule Transient(std::string service,
                             std::optional<LamRequestType> type, int k,
                             FaultAction action = FaultAction::kReject);
  /// Fault every matching call with probability `p` (seeded).
  static FaultRule Random(std::string service,
                          std::optional<LamRequestType> type, double p,
                          FaultAction action = FaultAction::kReject);
  /// Slow every matching call's request leg by `micros`.
  static FaultRule Spike(std::string service, int64_t micros);
};

/// A complete scripted failure schedule. Every run from the same plan
/// (same seed, same rules) produces the identical fault sequence.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

/// What the injector decided for one call.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int64_t extra_latency_micros = 0;
  /// Index of the firing rule in the plan (-1 when no fault fired).
  int rule_index = -1;
};

/// Cumulative injection counters.
struct FaultStats {
  int64_t calls_seen = 0;
  int64_t faults_fired = 0;
  int64_t lost_requests = 0;
  int64_t lost_responses = 0;
  int64_t rejects = 0;
  int64_t latency_spikes = 0;
};

/// Deterministic fault scheduler: the Environment consults it on every
/// LAM call. Rules are evaluated in plan order; the first rule whose
/// window and Bernoulli trial both pass wins. All randomness comes from
/// one SplitMix64 stream seeded by the plan, so a seed fully determines
/// which calls fault.
class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}

  /// Installs `plan`, resetting match counters, stats and the RNG.
  void SetPlan(FaultPlan plan);
  /// Removes the plan; every subsequent call is fault-free.
  void Clear();
  bool active() const { return !plan_.rules.empty(); }
  const FaultPlan& plan() const { return plan_; }

  /// Decides the fate of one call and advances the schedule.
  FaultDecision Decide(std::string_view service, LamRequestType type);

  const FaultStats& stats() const { return stats_; }
  /// Times each rule has fired (parallel to plan().rules).
  const std::vector<int64_t>& rule_fire_counts() const {
    return fire_counts_;
  }

 private:
  FaultPlan plan_;
  /// Per-rule count of calls that matched (service, type) so far.
  std::vector<int64_t> match_counts_;
  std::vector<int64_t> fire_counts_;
  FaultStats stats_;
  Rng rng_;
};

}  // namespace msql::netsim

#endif  // MSQL_NETSIM_FAULT_INJECTOR_H_
