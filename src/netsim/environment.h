#ifndef MSQL_NETSIM_ENVIRONMENT_H_
#define MSQL_NETSIM_ENVIRONMENT_H_

#include <map>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "netsim/fault_injector.h"
#include "netsim/lam.h"
#include "netsim/network.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msql::netsim {

/// Narada resource-directory entry: where a service lives and how to
/// talk to it ("physical addresses, communication protocols, login
/// information and the data transfer methods", §4.1). Protocol and
/// login are carried as opaque strings — they document the simulated
/// heterogeneity without changing behaviour.
struct ServiceEntry {
  std::string service_name;
  std::string site_name;
  std::string protocol = "tcp/ip";
  std::string login = "mdbs";
};

/// Timing of one simulated RPC.
struct CallTiming {
  int64_t start_micros = 0;
  int64_t request_micros = 0;  // client → LAM
  /// Wait in the service's admission queue before a server picked the
  /// request up (0 unless the service has a concurrency limit and was
  /// busy at arrival).
  int64_t queue_micros = 0;
  int64_t service_micros = 0;  // local execution
  int64_t response_micros = 0;  // LAM → client
  int64_t end_micros = 0;
};

/// Outcome of one simulated RPC: the LAM's response plus its timeline.
struct CallOutcome {
  LamResponse response;
  CallTiming timing;
  /// No response arrived within the call timeout (lost request or lost
  /// response). The coordinator cannot tell the two apart — only a
  /// re-probe can.
  bool timed_out = false;
  /// Ground truth for tests/traces: the LAM actually executed the
  /// request (true for lost-*response* faults). Decision logic must not
  /// read this — the coordinator has no such oracle.
  bool request_delivered = false;
  /// Injected fault applied to this call (kNone for clean calls) —
  /// trace/metrics ground truth, like `request_delivered`.
  FaultAction fault = FaultAction::kNone;
  /// Network traffic of this call alone (request + response legs).
  /// Callers that need per-run totals sum these instead of diffing the
  /// global network counters, which misattribute unrelated traffic.
  int64_t messages = 0;
  int64_t bytes = 0;
};

/// The multi-system execution environment: a network of sites, a
/// resource directory, and one LAM per incorporated service. The DOL
/// engine issues all remote interaction through `Call`, which models the
/// round-trip (request latency + LAM service time + response latency)
/// and returns absolute start/end times so callers can overlap parallel
/// calls on their own timeline.
class Environment {
 public:
  /// Creates the environment with the coordinator (MDBS) site.
  explicit Environment(std::string coordinator_site = "mdbs");

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  Network& network() { return network_; }
  const Network& network() const { return network_; }
  const std::string& coordinator_site() const { return coordinator_site_; }

  /// Scripted fault schedule applied to every Call (empty by default).
  FaultInjector& fault_injector() { return fault_injector_; }
  const FaultInjector& fault_injector() const { return fault_injector_; }

  /// Span tracer and metrics of this federation (DESIGN.md §9). Both
  /// are disabled null sinks by default; everything that touches the
  /// environment (DOL engine, MSQL front end, benches) records here.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Per-site health monitor, fed by every Call. Unlike tracer/metrics
  /// this is always on (DESIGN.md §11): a few integer updates per RPC.
  obs::HealthRegistry& health() { return health_; }
  const obs::HealthRegistry& health() const { return health_; }

  /// Simulated time the coordinator waits for a response before a call
  /// is declared timed out (lost request/response faults).
  void set_call_timeout_micros(int64_t micros) {
    call_timeout_micros_ = micros;
  }
  int64_t call_timeout_micros() const { return call_timeout_micros_; }

  /// Registers a service: creates its site (if new), records the
  /// directory entry and installs the LAM.
  Status AddService(std::string_view service_name,
                    std::string_view site_name,
                    std::unique_ptr<relational::LocalEngine> engine,
                    LamCostModel cost_model = {});

  bool HasService(std::string_view service_name) const;
  Result<Lam*> GetLam(std::string_view service_name);
  Result<const ServiceEntry*> GetServiceEntry(
      std::string_view service_name) const;
  std::vector<std::string> ServiceNames() const;

  /// Caps the number of requests `service_name` executes concurrently
  /// (0 = unlimited, the default). Requests arriving while all servers
  /// are busy wait in a FIFO queue on the simulated clock; the wait is
  /// reported as CallTiming::queue_micros and does NOT count toward the
  /// call timeout (the coordinator models a patient client under load —
  /// timeouts stay a fault signal, not a congestion signal). Callers
  /// driving multiple concurrent sessions must issue their calls in
  /// global time order for the FIFO discipline to be meaningful.
  Status SetServiceConcurrency(std::string_view service_name, int limit);
  /// The configured limit (0 = unlimited or unknown service).
  int ServiceConcurrency(std::string_view service_name) const;
  /// Forgets all queued/busy server state (not the limits); for reusing
  /// one environment across independent simulated timelines.
  void ResetServiceQueues();

  /// Issues one RPC from the coordinator to `service_name`, starting at
  /// simulated time `at_micros`. Network unavailability is reported in
  /// the returned Status (the response is then empty). Scripted faults
  /// from the injector surface as response-level kUnavailable outcomes
  /// (with `timed_out` set for lost messages) so callers can apply
  /// retry/re-probe policy.
  Result<CallOutcome> Call(std::string_view service_name,
                           const LamRequest& request, int64_t at_micros);

 private:
  /// Admission state of one capacity-limited service: a min-heap of the
  /// busy-until times of at most `limit` in-flight requests.
  struct ServiceQueue {
    int limit = 0;
    std::priority_queue<int64_t, std::vector<int64_t>,
                        std::greater<int64_t>>
        busy_until;
  };
  /// The round-trip model behind Call; Call wraps it to feed the health
  /// registry on every return path.
  Result<CallOutcome> CallImpl(Lam* lam, const LamRequest& request,
                               int64_t at_micros);

  std::string coordinator_site_;
  Network network_;
  FaultInjector fault_injector_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  obs::HealthRegistry health_;
  int64_t call_timeout_micros_ = 20000;
  std::map<std::string, ServiceEntry> directory_;
  std::map<std::string, std::unique_ptr<Lam>> lams_;
  std::map<std::string, ServiceQueue> queues_;
};

}  // namespace msql::netsim

#endif  // MSQL_NETSIM_ENVIRONMENT_H_
