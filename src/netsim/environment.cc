#include "netsim/environment.h"

#include <algorithm>

#include "common/string_util.h"

namespace msql::netsim {

Environment::Environment(std::string coordinator_site)
    : coordinator_site_(ToLower(coordinator_site)) {
  network_.AddSite(coordinator_site_);
}

Status Environment::AddService(std::string_view service_name,
                               std::string_view site_name,
                               std::unique_ptr<relational::LocalEngine> engine,
                               LamCostModel cost_model) {
  std::string service = ToLower(service_name);
  std::string site = ToLower(site_name);
  if (lams_.count(service) > 0) {
    return Status::AlreadyExists("service '" + service +
                                 "' already registered");
  }
  network_.AddSite(site);
  ServiceEntry entry;
  entry.service_name = service;
  entry.site_name = site;
  directory_.emplace(service, entry);
  // Local executors report into the federation's tracer/metrics (both
  // are null sinks until enabled).
  engine->SetObservability(&tracer_, &metrics_);
  lams_.emplace(service, std::make_unique<Lam>(service, site,
                                               std::move(engine),
                                               cost_model));
  return Status::OK();
}

bool Environment::HasService(std::string_view service_name) const {
  return lams_.count(ToLower(service_name)) > 0;
}

Result<Lam*> Environment::GetLam(std::string_view service_name) {
  auto it = lams_.find(ToLower(service_name));
  if (it == lams_.end()) {
    return Status::NotFound("service '" + std::string(service_name) +
                            "' is not registered in the environment");
  }
  return it->second.get();
}

Result<const ServiceEntry*> Environment::GetServiceEntry(
    std::string_view service_name) const {
  auto it = directory_.find(ToLower(service_name));
  if (it == directory_.end()) {
    return Status::NotFound("service '" + std::string(service_name) +
                            "' is not in the resource directory");
  }
  return &it->second;
}

Status Environment::SetServiceConcurrency(std::string_view service_name,
                                          int limit) {
  std::string service = ToLower(service_name);
  if (lams_.count(service) == 0) {
    return Status::NotFound("service '" + service +
                            "' is not registered in the environment");
  }
  if (limit < 0) {
    return Status::InvalidArgument("service concurrency must be >= 0");
  }
  if (limit == 0) {
    queues_.erase(service);
  } else {
    ServiceQueue& queue = queues_[service];
    queue.limit = limit;
    queue.busy_until = {};
  }
  return Status::OK();
}

int Environment::ServiceConcurrency(std::string_view service_name) const {
  auto it = queues_.find(ToLower(service_name));
  return it == queues_.end() ? 0 : it->second.limit;
}

void Environment::ResetServiceQueues() {
  for (auto& [service, queue] : queues_) queue.busy_until = {};
}

std::vector<std::string> Environment::ServiceNames() const {
  std::vector<std::string> out;
  out.reserve(lams_.size());
  for (const auto& [name, lam] : lams_) out.push_back(name);
  return out;
}

Result<CallOutcome> Environment::Call(std::string_view service_name,
                                      const LamRequest& request,
                                      int64_t at_micros) {
  auto lam_it = lams_.find(ToLower(service_name));
  if (lam_it == lams_.end()) {
    return Status::NotFound("service '" + std::string(service_name) +
                            "' is not registered in the environment");
  }
  Lam* lam = lam_it->second.get();
  auto outcome = CallImpl(lam, request, at_micros);
  // Feed the health monitor with the coordinator's view of the call:
  // a timed-out call failed even if the LAM secretly executed it, and a
  // network-level error (site down) is a failure with no usable timing.
  if (outcome.ok()) {
    health_.Record(lam->service_name(), lam->site_name(),
                   outcome->response.status.ok(), outcome->timed_out,
                   outcome->fault != FaultAction::kNone,
                   outcome->timing.end_micros - outcome->timing.start_micros,
                   outcome->timing.queue_micros);
  } else {
    health_.Record(lam->service_name(), lam->site_name(), /*ok=*/false,
                   /*timed_out=*/false, /*faulted=*/false,
                   /*latency_micros=*/0);
  }
  return outcome;
}

Result<CallOutcome> Environment::CallImpl(Lam* lam, const LamRequest& request,
                                          int64_t at_micros) {
  FaultDecision fault =
      fault_injector_.Decide(lam->service_name(), request.type);

  CallOutcome outcome;
  outcome.timing.start_micros = at_micros;
  outcome.fault = fault.action;

  // One message leg: models the transfer, accounts it to this call and
  // emits its "net.send" span (the message-level view of §4.3's data
  // flow). `delivered` is false for a leg that is sent and charged but
  // never arrives.
  auto send = [&](const std::string& from, const std::string& to,
                  int64_t bytes, int64_t leg_start, const char* direction,
                  bool delivered) -> Result<int64_t> {
    MSQL_ASSIGN_OR_RETURN(int64_t micros,
                          network_.TransferMicros(from, to, bytes));
    outcome.messages += 1;
    outcome.bytes += bytes;
    metrics_.Inc("net.messages");
    metrics_.Inc("net.bytes", bytes);
    metrics_.Observe("net.transfer_micros", micros);
    if (tracer_.enabled()) {
      uint64_t span = tracer_.StartSpan("net.send", "net", leg_start);
      tracer_.Annotate(span, "dir", direction);
      tracer_.Annotate(span, "from", from);
      tracer_.Annotate(span, "to", to);
      tracer_.Annotate(span, "bytes", bytes);
      if (!delivered) tracer_.Annotate(span, "lost", "true");
      tracer_.EndSpan(span, leg_start + micros);
    }
    return micros;
  };
  // The LAM handles the request locally; traced as a "lam" span so the
  // simulated timeline shows where service time goes. When the service
  // has a concurrency limit, the request first waits in the admission
  // queue until one of the `limit` servers frees up — the wait lands in
  // timing.queue_micros and shifts everything downstream of it.
  auto handle = [&](int64_t arrival) -> LamResponse {
    int64_t service_start = arrival;
    ServiceQueue* queue = nullptr;
    auto queue_it = queues_.find(lam->service_name());
    if (queue_it != queues_.end() && queue_it->second.limit > 0) {
      queue = &queue_it->second;
      if (static_cast<int>(queue->busy_until.size()) >= queue->limit) {
        int64_t free_at = queue->busy_until.top();
        queue->busy_until.pop();
        service_start = std::max(arrival, free_at);
      }
    }
    outcome.timing.queue_micros = service_start - arrival;
    if (outcome.timing.queue_micros > 0) {
      metrics_.Observe("lam.queue_micros", outcome.timing.queue_micros);
    }
    LamResponse response = lam->Handle(request, &outcome.timing.service_micros);
    if (queue) {
      queue->busy_until.push(service_start + outcome.timing.service_micros);
    }
    metrics_.Observe("lam.service_micros", outcome.timing.service_micros);
    if (tracer_.enabled()) {
      uint64_t span = tracer_.StartSpan(
          std::string("lam:") + std::string(LamRequestTypeName(request.type)),
          "lam", service_start);
      tracer_.Annotate(span, "service", lam->service_name());
      if (outcome.timing.queue_micros > 0) {
        tracer_.Annotate(span, "queue_micros", outcome.timing.queue_micros);
      }
      tracer_.EndSpan(span,
                      service_start + outcome.timing.service_micros);
    }
    return response;
  };

  metrics_.Inc("rpc.calls");
  if (fault.action != FaultAction::kNone) {
    metrics_.Inc(std::string("fault.") +
                 std::string(FaultActionName(fault.action)));
  }

  MSQL_ASSIGN_OR_RETURN(
      outcome.timing.request_micros,
      send(coordinator_site_, lam->site_name(), request.WireBytes(),
           at_micros, "request",
           fault.action != FaultAction::kLostRequest));
  if (fault.action == FaultAction::kLatencySpike) {
    outcome.timing.request_micros += fault.extra_latency_micros;
  }

  switch (fault.action) {
    case FaultAction::kLostRequest:
      // The message was sent (and accounted) but never arrives; the
      // coordinator gives up after the call timeout.
      outcome.timed_out = true;
      outcome.response.status = Status::Unavailable(
          "timeout: no response to " +
          std::string(LamRequestTypeName(request.type)) + " from '" +
          lam->service_name() + "' (request lost)");
      outcome.timing.end_micros = at_micros + call_timeout_micros_;
      return outcome;
    case FaultAction::kReject: {
      // The LAM refuses without dispatching: a definite, undelivered
      // failure the caller may safely re-send.
      outcome.response.status = Status::Unavailable(
          "injected transient fault: '" + lam->service_name() +
          "' refused " + std::string(LamRequestTypeName(request.type)));
      MSQL_ASSIGN_OR_RETURN(
          outcome.timing.response_micros,
          send(lam->site_name(), coordinator_site_,
               outcome.response.WireBytes(),
               at_micros + outcome.timing.request_micros, "response",
               true));
      outcome.timing.end_micros = at_micros +
                                  outcome.timing.request_micros +
                                  outcome.timing.response_micros;
      return outcome;
    }
    case FaultAction::kLostResponse: {
      // The LDBMS executes the request — state changes, locks move —
      // but the acknowledgement vanishes. The coordinator only sees a
      // timeout, indistinguishable from kLostRequest.
      LamResponse executed =
          handle(at_micros + outcome.timing.request_micros);
      // Account the doomed response message.
      (void)send(lam->site_name(), coordinator_site_, executed.WireBytes(),
                 at_micros + outcome.timing.request_micros +
                     outcome.timing.queue_micros +
                     outcome.timing.service_micros,
                 "response", false);
      outcome.timed_out = true;
      outcome.request_delivered = true;
      outcome.response.status = Status::Unavailable(
          "timeout: no response to " +
          std::string(LamRequestTypeName(request.type)) + " from '" +
          lam->service_name() + "' (response lost)");
      outcome.timing.end_micros = at_micros + call_timeout_micros_;
      return outcome;
    }
    case FaultAction::kNone:
    case FaultAction::kLatencySpike:
      break;
  }

  outcome.request_delivered = true;
  outcome.response = handle(at_micros + outcome.timing.request_micros);
  MSQL_ASSIGN_OR_RETURN(
      outcome.timing.response_micros,
      send(lam->site_name(), coordinator_site_,
           outcome.response.WireBytes(),
           at_micros + outcome.timing.request_micros +
               outcome.timing.queue_micros + outcome.timing.service_micros,
           "response", true));
  outcome.timing.end_micros =
      at_micros + outcome.timing.request_micros +
      outcome.timing.queue_micros + outcome.timing.service_micros +
      outcome.timing.response_micros;
  return outcome;
}

}  // namespace msql::netsim
