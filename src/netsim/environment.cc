#include "netsim/environment.h"

#include "common/string_util.h"

namespace msql::netsim {

Environment::Environment(std::string coordinator_site)
    : coordinator_site_(ToLower(coordinator_site)) {
  network_.AddSite(coordinator_site_);
}

Status Environment::AddService(std::string_view service_name,
                               std::string_view site_name,
                               std::unique_ptr<relational::LocalEngine> engine,
                               LamCostModel cost_model) {
  std::string service = ToLower(service_name);
  std::string site = ToLower(site_name);
  if (lams_.count(service) > 0) {
    return Status::AlreadyExists("service '" + service +
                                 "' already registered");
  }
  network_.AddSite(site);
  ServiceEntry entry;
  entry.service_name = service;
  entry.site_name = site;
  directory_.emplace(service, entry);
  lams_.emplace(service, std::make_unique<Lam>(service, site,
                                               std::move(engine),
                                               cost_model));
  return Status::OK();
}

bool Environment::HasService(std::string_view service_name) const {
  return lams_.count(ToLower(service_name)) > 0;
}

Result<Lam*> Environment::GetLam(std::string_view service_name) {
  auto it = lams_.find(ToLower(service_name));
  if (it == lams_.end()) {
    return Status::NotFound("service '" + std::string(service_name) +
                            "' is not registered in the environment");
  }
  return it->second.get();
}

Result<const ServiceEntry*> Environment::GetServiceEntry(
    std::string_view service_name) const {
  auto it = directory_.find(ToLower(service_name));
  if (it == directory_.end()) {
    return Status::NotFound("service '" + std::string(service_name) +
                            "' is not in the resource directory");
  }
  return &it->second;
}

std::vector<std::string> Environment::ServiceNames() const {
  std::vector<std::string> out;
  out.reserve(lams_.size());
  for (const auto& [name, lam] : lams_) out.push_back(name);
  return out;
}

Result<CallOutcome> Environment::Call(std::string_view service_name,
                                      const LamRequest& request,
                                      int64_t at_micros) {
  auto lam_it = lams_.find(ToLower(service_name));
  if (lam_it == lams_.end()) {
    return Status::NotFound("service '" + std::string(service_name) +
                            "' is not registered in the environment");
  }
  Lam* lam = lam_it->second.get();
  FaultDecision fault =
      fault_injector_.Decide(lam->service_name(), request.type);

  CallOutcome outcome;
  outcome.timing.start_micros = at_micros;
  MSQL_ASSIGN_OR_RETURN(
      outcome.timing.request_micros,
      network_.TransferMicros(coordinator_site_, lam->site_name(),
                              request.WireBytes()));
  if (fault.action == FaultAction::kLatencySpike) {
    outcome.timing.request_micros += fault.extra_latency_micros;
  }

  switch (fault.action) {
    case FaultAction::kLostRequest:
      // The message was sent (and accounted) but never arrives; the
      // coordinator gives up after the call timeout.
      outcome.timed_out = true;
      outcome.response.status = Status::Unavailable(
          "timeout: no response to " +
          std::string(LamRequestTypeName(request.type)) + " from '" +
          lam->service_name() + "' (request lost)");
      outcome.timing.end_micros = at_micros + call_timeout_micros_;
      return outcome;
    case FaultAction::kReject: {
      // The LAM refuses without dispatching: a definite, undelivered
      // failure the caller may safely re-send.
      outcome.response.status = Status::Unavailable(
          "injected transient fault: '" + lam->service_name() +
          "' refused " + std::string(LamRequestTypeName(request.type)));
      MSQL_ASSIGN_OR_RETURN(
          outcome.timing.response_micros,
          network_.TransferMicros(lam->site_name(), coordinator_site_,
                                  outcome.response.WireBytes()));
      outcome.timing.end_micros = at_micros +
                                  outcome.timing.request_micros +
                                  outcome.timing.response_micros;
      return outcome;
    }
    case FaultAction::kLostResponse: {
      // The LDBMS executes the request — state changes, locks move —
      // but the acknowledgement vanishes. The coordinator only sees a
      // timeout, indistinguishable from kLostRequest.
      LamResponse executed =
          lam->Handle(request, &outcome.timing.service_micros);
      // Account the doomed response message.
      (void)network_.TransferMicros(lam->site_name(), coordinator_site_,
                                    executed.WireBytes());
      outcome.timed_out = true;
      outcome.request_delivered = true;
      outcome.response.status = Status::Unavailable(
          "timeout: no response to " +
          std::string(LamRequestTypeName(request.type)) + " from '" +
          lam->service_name() + "' (response lost)");
      outcome.timing.end_micros = at_micros + call_timeout_micros_;
      return outcome;
    }
    case FaultAction::kNone:
    case FaultAction::kLatencySpike:
      break;
  }

  outcome.request_delivered = true;
  outcome.response = lam->Handle(request, &outcome.timing.service_micros);
  MSQL_ASSIGN_OR_RETURN(
      outcome.timing.response_micros,
      network_.TransferMicros(lam->site_name(), coordinator_site_,
                              outcome.response.WireBytes()));
  outcome.timing.end_micros =
      at_micros + outcome.timing.request_micros +
      outcome.timing.service_micros + outcome.timing.response_micros;
  return outcome;
}

}  // namespace msql::netsim
