#include "netsim/fault_injector.h"

#include "common/string_util.h"

namespace msql::netsim {

std::string_view FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "NONE";
    case FaultAction::kLostRequest: return "LOST_REQUEST";
    case FaultAction::kLostResponse: return "LOST_RESPONSE";
    case FaultAction::kReject: return "REJECT";
    case FaultAction::kLatencySpike: return "LATENCY_SPIKE";
  }
  return "UNKNOWN";
}

FaultRule FaultRule::NthCall(std::string service,
                             std::optional<LamRequestType> type, int n,
                             FaultAction action) {
  FaultRule rule;
  rule.service = std::move(service);
  rule.request_type = type;
  rule.action = action;
  rule.from_match = n;
  rule.count = 1;
  return rule;
}

FaultRule FaultRule::Transient(std::string service,
                               std::optional<LamRequestType> type, int k,
                               FaultAction action) {
  FaultRule rule;
  rule.service = std::move(service);
  rule.request_type = type;
  rule.action = action;
  rule.from_match = 1;
  rule.count = k;
  return rule;
}

FaultRule FaultRule::Random(std::string service,
                            std::optional<LamRequestType> type, double p,
                            FaultAction action) {
  FaultRule rule;
  rule.service = std::move(service);
  rule.request_type = type;
  rule.action = action;
  rule.from_match = 1;
  rule.count = -1;
  rule.probability = p;
  return rule;
}

FaultRule FaultRule::Spike(std::string service, int64_t micros) {
  FaultRule rule;
  rule.service = std::move(service);
  rule.request_type = std::nullopt;
  rule.action = FaultAction::kLatencySpike;
  rule.from_match = 1;
  rule.count = -1;
  rule.extra_latency_micros = micros;
  return rule;
}

void FaultInjector::SetPlan(FaultPlan plan) {
  plan_ = std::move(plan);
  for (auto& rule : plan_.rules) rule.service = ToLower(rule.service);
  match_counts_.assign(plan_.rules.size(), 0);
  fire_counts_.assign(plan_.rules.size(), 0);
  stats_ = FaultStats{};
  rng_ = Rng(plan_.seed);
}

void FaultInjector::Clear() { SetPlan(FaultPlan{}); }

FaultDecision FaultInjector::Decide(std::string_view service,
                                    LamRequestType type) {
  FaultDecision decision;
  if (plan_.rules.empty()) return decision;
  ++stats_.calls_seen;
  std::string key = ToLower(service);
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (!rule.service.empty() && rule.service != key) continue;
    if (rule.request_type.has_value() && *rule.request_type != type) {
      continue;
    }
    int64_t ordinal = ++match_counts_[i];
    if (decision.action != FaultAction::kNone) continue;  // counters still
    if (ordinal < rule.from_match) continue;
    if (rule.count >= 0 && ordinal >= rule.from_match + rule.count) {
      continue;
    }
    // The Bernoulli draw happens for every eligible call — even below
    // p=1 rules consume exactly one draw, keeping the stream aligned
    // across runs with the same plan.
    if (rule.probability < 1.0 && !rng_.NextBool(rule.probability)) {
      continue;
    }
    decision.action = rule.action;
    decision.extra_latency_micros = rule.extra_latency_micros;
    decision.rule_index = static_cast<int>(i);
    ++fire_counts_[i];
    ++stats_.faults_fired;
    switch (rule.action) {
      case FaultAction::kLostRequest: ++stats_.lost_requests; break;
      case FaultAction::kLostResponse: ++stats_.lost_responses; break;
      case FaultAction::kReject: ++stats_.rejects; break;
      case FaultAction::kLatencySpike: ++stats_.latency_spikes; break;
      case FaultAction::kNone: break;
    }
  }
  return decision;
}

}  // namespace msql::netsim
