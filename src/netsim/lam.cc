#include "netsim/lam.h"

#include <set>

#include "common/string_util.h"

namespace msql::netsim {

using relational::ResultSet;
using relational::TxnState;

std::string_view LamRequestTypeName(LamRequestType type) {
  switch (type) {
    case LamRequestType::kPing: return "PING";
    case LamRequestType::kOpenSession: return "OPEN";
    case LamRequestType::kCloseSession: return "CLOSE";
    case LamRequestType::kExecute: return "EXEC";
    case LamRequestType::kBegin: return "BEGIN";
    case LamRequestType::kPrepare: return "PREPARE";
    case LamRequestType::kCommit: return "COMMIT";
    case LamRequestType::kRollback: return "ROLLBACK";
    case LamRequestType::kQueryTxnState: return "STATUS";
    case LamRequestType::kDescribe: return "DESCRIBE";
    case LamRequestType::kDescribeView: return "DESCRIBEVIEW";
    case LamRequestType::kAnalyze: return "ANALYZE";
  }
  return "UNKNOWN";
}

int64_t LamRequest::WireBytes() const {
  // Verb + header + payload.
  return 32 + static_cast<int64_t>(database.size() + sql.size());
}

int64_t LamResponse::WireBytes() const {
  int64_t bytes = 64 + static_cast<int64_t>(status.message().size());
  bytes += 8 * static_cast<int64_t>(blocked_by.size());
  for (const auto& col : result.columns) {
    bytes += static_cast<int64_t>(col.size()) + 4;
  }
  for (const auto& row : result.rows) {
    for (const auto& v : row) {
      bytes += static_cast<int64_t>(v.ToDisplayString().size()) + 4;
    }
  }
  return bytes;
}

Lam::Lam(std::string service_name, std::string site_name,
         std::unique_ptr<relational::LocalEngine> engine,
         LamCostModel cost_model)
    : service_name_(ToLower(service_name)),
      site_name_(ToLower(site_name)),
      engine_(std::move(engine)),
      cost_model_(cost_model) {}

LamResponse Lam::Handle(const LamRequest& request, int64_t* service_micros) {
  LamResponse response;
  int64_t rows_touched = 0;
  int64_t rows_scanned = 0;
  switch (request.type) {
    case LamRequestType::kPing:
      break;
    case LamRequestType::kOpenSession: {
      auto session = engine_->OpenSession(request.database);
      if (session.ok()) {
        response.session = *session;
      } else {
        response.status = session.status();
      }
      break;
    }
    case LamRequestType::kCloseSession:
      response.status = engine_->CloseSession(request.session);
      break;
    case LamRequestType::kExecute: {
      auto result = engine_->Execute(request.session, request.sql);
      if (result.ok()) {
        rows_touched = result->IsQueryResult()
                           ? static_cast<int64_t>(result->rows.size())
                           : result->rows_affected;
        rows_scanned = result->rows_scanned;
        response.result = std::move(*result);
      } else {
        response.status = result.status();
        if (result.status().code() == StatusCode::kBusy) {
          response.blocked_by = engine_->BlockingSessions();
        }
      }
      break;
    }
    case LamRequestType::kBegin:
      response.status = engine_->Begin(request.session);
      break;
    case LamRequestType::kPrepare:
      response.status = engine_->Prepare(request.session);
      break;
    case LamRequestType::kCommit:
      response.status = engine_->Commit(request.session);
      break;
    case LamRequestType::kRollback:
      response.status = engine_->Rollback(request.session);
      break;
    case LamRequestType::kQueryTxnState: {
      auto state = engine_->GetTxnState(request.session);
      if (state.ok()) {
        response.txn_state = *state;
      } else {
        response.status = state.status();
      }
      break;
    }
    case LamRequestType::kDescribe: {
      auto db = engine_->GetDatabaseConst(request.database);
      if (!db.ok()) {
        response.status = db.status();
        break;
      }
      response.result.columns = {"table_name", "column_name", "type_name",
                                 "width"};
      std::vector<std::string> tables;
      if (request.sql.empty()) {
        tables = (*db)->TableNames();
      } else {
        tables.push_back(ToLower(request.sql));
      }
      for (const auto& table_name : tables) {
        auto table = (*db)->GetTableConst(table_name);
        if (!table.ok()) {
          response.status = table.status();
          break;
        }
        for (const auto& col : (*table)->schema().columns()) {
          response.result.rows.push_back(relational::Row{
              relational::Value::Text(table_name),
              relational::Value::Text(col.name),
              relational::Value::Text(std::string(TypeName(col.type))),
              relational::Value::Integer(col.width)});
        }
      }
      rows_touched = static_cast<int64_t>(response.result.rows.size());
      break;
    }
    case LamRequestType::kDescribeView: {
      if (request.sql.empty()) {
        response.status =
            Status::InvalidArgument("DESCRIBEVIEW requires a view name");
        break;
      }
      auto schema = engine_->DescribeView(request.database, request.sql);
      if (!schema.ok()) {
        response.status = schema.status();
        break;
      }
      response.result.columns = {"table_name", "column_name", "type_name",
                                 "width"};
      for (const auto& col : schema->columns()) {
        response.result.rows.push_back(relational::Row{
            relational::Value::Text(schema->table_name()),
            relational::Value::Text(col.name),
            relational::Value::Text(std::string(TypeName(col.type))),
            relational::Value::Integer(col.width)});
      }
      rows_touched = static_cast<int64_t>(response.result.rows.size());
      break;
    }
    case LamRequestType::kAnalyze: {
      auto db = engine_->GetDatabaseConst(request.database);
      if (!db.ok()) {
        response.status = db.status();
        break;
      }
      response.result.columns = {"table_name",  "column_name",
                                 "row_count",   "distinct_values",
                                 "min_value",   "max_value",
                                 "avg_width_bytes"};
      std::vector<std::string> tables;
      if (request.sql.empty()) {
        tables = (*db)->TableNames();
      } else {
        tables.push_back(ToLower(request.sql));
      }
      for (const auto& table_name : tables) {
        auto table = (*db)->GetTableConst(table_name);
        if (!table.ok()) {
          response.status = table.status();
          break;
        }
        const relational::TableSchema& schema = (*table)->schema();
        auto scanned = (*table)->ScanRows();
        if (!scanned.ok()) {
          response.status = scanned.status();
          break;
        }
        const std::vector<relational::Row> rows = std::move(*scanned);
        rows_scanned += static_cast<int64_t>(rows.size());
        for (size_t c = 0; c < schema.columns().size(); ++c) {
          std::set<std::string> distinct;
          const relational::Value* min_v = nullptr;
          const relational::Value* max_v = nullptr;
          int64_t width_sum = 0;
          for (const relational::Row& row : rows) {
            const relational::Value& v = row[c];
            width_sum += static_cast<int64_t>(v.ToDisplayString().size()) + 4;
            if (v.is_null()) continue;
            distinct.insert(v.ToSqlLiteral());
            if (min_v == nullptr || v.Compare(*min_v) < 0) min_v = &v;
            if (max_v == nullptr || v.Compare(*max_v) > 0) max_v = &v;
          }
          const double avg_width =
              rows.empty() ? 0.0
                           : static_cast<double>(width_sum) /
                                 static_cast<double>(rows.size());
          response.result.rows.push_back(relational::Row{
              relational::Value::Text(table_name),
              relational::Value::Text(schema.columns()[c].name),
              relational::Value::Integer(
                  static_cast<int64_t>(rows.size())),
              relational::Value::Integer(
                  static_cast<int64_t>(distinct.size())),
              relational::Value::Text(
                  min_v == nullptr ? "" : min_v->ToDisplayString()),
              relational::Value::Text(
                  max_v == nullptr ? "" : max_v->ToDisplayString()),
              relational::Value::Real(avg_width)});
        }
      }
      rows_touched = static_cast<int64_t>(response.result.rows.size());
      break;
    }
  }
  // Whatever the outcome, report the transaction state when a session is
  // named — the DOL engine's IF conditions read it from every response.
  if (request.session != 0) {
    auto state = engine_->GetTxnState(request.session);
    if (state.ok()) response.txn_state = *state;
  }
  if (service_micros != nullptr) {
    *service_micros = cost_model_.request_overhead_micros +
                      rows_touched * cost_model_.micros_per_row +
                      rows_scanned * cost_model_.micros_per_row_scanned;
  }
  return response;
}

}  // namespace msql::netsim
