#ifndef MSQL_NETSIM_LAM_H_
#define MSQL_NETSIM_LAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/engine.h"
#include "relational/result_set.h"
#include "relational/txn.h"

namespace msql::netsim {

/// Request verbs of the engine ↔ LAM wire protocol (Figure 1).
///
/// The DOL engine sends these over the simulated network; a LAM executes
/// them against its local engine and ships back a response. TASK bodies
/// become kExecute requests; NOCOMMIT tasks are bracketed by kBegin and
/// later kPrepare; the status checks in DOL IF conditions use
/// kQueryTxnState.
enum class LamRequestType {
  kPing,
  kOpenSession,
  kCloseSession,
  kExecute,
  kBegin,
  kPrepare,
  kCommit,
  kRollback,
  kQueryTxnState,
  /// Schema introspection used by IMPORT: returns one row per column of
  /// the named table (or of every table when `sql` is empty) in the form
  /// (table_name, column_name, type_name, width).
  kDescribe,
  /// View introspection used by IMPORT VIEW: same row format, for the
  /// view named in `sql` (required).
  kDescribeView,
  /// Statistics gathering used by ANALYZE: scans the named table (or
  /// every table when `sql` is empty) and returns one row per column in
  /// the form (table_name, column_name, row_count, distinct_values,
  /// min_value, max_value, avg_width_bytes). Widths follow the
  /// LamResponse::WireBytes accounting (display bytes + 4 framing).
  kAnalyze,
};

std::string_view LamRequestTypeName(LamRequestType type);

/// One request message.
struct LamRequest {
  LamRequestType type = LamRequestType::kPing;
  /// Target database (kOpenSession only).
  std::string database;
  /// Session the request applies to (all but kOpenSession/kPing).
  relational::SessionId session = 0;
  /// SQL text (kExecute only).
  std::string sql;

  /// Approximate wire size in bytes (for the latency model).
  int64_t WireBytes() const;
};

/// One response message.
struct LamResponse {
  Status status;
  relational::ResultSet result;          // kExecute responses
  relational::SessionId session = 0;     // kOpenSession responses
  relational::TxnState txn_state = relational::TxnState::kCommitted;
  /// kBusy responses: local sessions whose transactions hold the locks
  /// this request would block on. The coordinator maps them back to
  /// federation sessions to build waits-for edges.
  std::vector<relational::SessionId> blocked_by;

  int64_t WireBytes() const;
};

/// Local service-time model of a LAM (added to network latency).
struct LamCostModel {
  /// Fixed cost of dispatching any request.
  int64_t request_overhead_micros = 200;
  /// Per-row cost of executing/serializing results.
  int64_t micros_per_row = 10;
  /// Per-row cost of scanning (the access-path cost an index avoids).
  int64_t micros_per_row_scanned = 2;
};

/// Local Access Manager: the per-service agent that executes commands
/// against one autonomous LDBMS and reports results/states back (§4.1).
/// The wrapped engine is owned and *not* modified — it keeps its full
/// autonomy (local clients could use it directly).
class Lam {
 public:
  Lam(std::string service_name, std::string site_name,
      std::unique_ptr<relational::LocalEngine> engine,
      LamCostModel cost_model = {});

  const std::string& service_name() const { return service_name_; }
  const std::string& site_name() const { return site_name_; }
  relational::LocalEngine* engine() { return engine_.get(); }
  const relational::LocalEngine* engine() const { return engine_.get(); }

  /// Handles one request; `service_micros` (optional) receives the
  /// modelled local service time.
  LamResponse Handle(const LamRequest& request,
                     int64_t* service_micros = nullptr);

 private:
  std::string service_name_;
  std::string site_name_;
  std::unique_ptr<relational::LocalEngine> engine_;
  LamCostModel cost_model_;
};

}  // namespace msql::netsim

#endif  // MSQL_NETSIM_LAM_H_
