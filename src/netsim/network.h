#ifndef MSQL_NETSIM_NETWORK_H_
#define MSQL_NETSIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace msql::netsim {

/// Latency parameters of one directed link.
struct LinkParams {
  /// Fixed per-message latency (propagation + protocol overhead).
  int64_t latency_micros = 1000;
  /// Serialization cost per kilobyte transferred.
  int64_t micros_per_kb = 100;
};

/// Cumulative traffic counters.
struct NetworkStats {
  int64_t messages_sent = 0;
  int64_t bytes_sent = 0;
};

/// Simulated site-to-site network with a per-link latency model.
///
/// The paper's prototype ran over TCP/IP and an ISODE prototype; here
/// transfers are in-process and the network only *accounts* for them:
/// `TransferMicros` returns the modelled wall-clock cost of moving a
/// message, and callers weave those costs into their own timelines. A
/// site can be marked down to model unreachable services (§3.2's failure
/// sources).
class Network {
 public:
  Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a site (idempotent).
  void AddSite(std::string_view name);
  bool HasSite(std::string_view name) const;
  std::vector<std::string> SiteNames() const;

  /// Marks a site unreachable / reachable. Fails with kNotFound for an
  /// unknown site — a silently ignored misspelling here used to turn a
  /// chaos scenario into a no-op that still "passed".
  Status SetSiteDown(std::string_view name, bool down);
  bool IsSiteDown(std::string_view name) const;

  /// Default parameters for links without an explicit setting.
  void set_default_link(LinkParams params) { default_link_ = params; }
  const LinkParams& default_link() const { return default_link_; }

  /// Sets the parameters of the directed link `from` → `to`. Both
  /// endpoints must be registered sites (kNotFound otherwise).
  Status SetLink(std::string_view from, std::string_view to,
                 LinkParams params);

  /// Parameters of the directed link (explicit or default).
  LinkParams GetLink(std::string_view from, std::string_view to) const;

  /// Models one message of `bytes` from `from` to `to`: returns its
  /// latency and updates the traffic counters. Fails with kUnavailable
  /// when either endpoint is unknown or down. The bandwidth term is
  /// ceiling division over a 128-bit intermediate, so sub-KB payloads
  /// are charged at least 1us of serialization (when micros_per_kb > 0)
  /// and multi-GB transfers cannot overflow.
  Result<int64_t> TransferMicros(std::string_view from, std::string_view to,
                                 int64_t bytes);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  struct SiteState {
    bool down = false;
  };
  std::map<std::string, SiteState> sites_;
  std::map<std::pair<std::string, std::string>, LinkParams> links_;
  LinkParams default_link_;
  NetworkStats stats_;
};

}  // namespace msql::netsim

#endif  // MSQL_NETSIM_NETWORK_H_
