#include "netsim/network.h"

#include "common/string_util.h"

namespace msql::netsim {

void Network::AddSite(std::string_view name) {
  sites_.emplace(ToLower(name), SiteState{});
}

bool Network::HasSite(std::string_view name) const {
  return sites_.count(ToLower(name)) > 0;
}

std::vector<std::string> Network::SiteNames() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, state] : sites_) out.push_back(name);
  return out;
}

void Network::SetSiteDown(std::string_view name, bool down) {
  auto it = sites_.find(ToLower(name));
  if (it != sites_.end()) it->second.down = down;
}

bool Network::IsSiteDown(std::string_view name) const {
  auto it = sites_.find(ToLower(name));
  return it != sites_.end() && it->second.down;
}

void Network::SetLink(std::string_view from, std::string_view to,
                      LinkParams params) {
  links_[{ToLower(from), ToLower(to)}] = params;
}

LinkParams Network::GetLink(std::string_view from,
                            std::string_view to) const {
  auto it = links_.find({ToLower(from), ToLower(to)});
  return it != links_.end() ? it->second : default_link_;
}

Result<int64_t> Network::TransferMicros(std::string_view from,
                                        std::string_view to, int64_t bytes) {
  std::string from_key = ToLower(from);
  std::string to_key = ToLower(to);
  auto from_it = sites_.find(from_key);
  auto to_it = sites_.find(to_key);
  if (from_it == sites_.end() || to_it == sites_.end()) {
    return Status::Unavailable("unknown site in transfer " + from_key +
                               " -> " + to_key);
  }
  if (from_it->second.down || to_it->second.down) {
    return Status::Unavailable("site down in transfer " + from_key +
                               " -> " + to_key);
  }
  LinkParams link = GetLink(from_key, to_key);
  int64_t micros = link.latency_micros + (bytes * link.micros_per_kb) / 1024;
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  return micros;
}

}  // namespace msql::netsim
