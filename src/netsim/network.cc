#include "netsim/network.h"

#include <algorithm>

#include "common/string_util.h"

namespace msql::netsim {

void Network::AddSite(std::string_view name) {
  sites_.emplace(ToLower(name), SiteState{});
}

bool Network::HasSite(std::string_view name) const {
  return sites_.count(ToLower(name)) > 0;
}

std::vector<std::string> Network::SiteNames() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, state] : sites_) out.push_back(name);
  return out;
}

Status Network::SetSiteDown(std::string_view name, bool down) {
  auto it = sites_.find(ToLower(name));
  if (it == sites_.end()) {
    return Status::NotFound("cannot set site '" + ToLower(name) +
                            (down ? "' down" : "' up") +
                            ": no such site");
  }
  it->second.down = down;
  return Status::OK();
}

bool Network::IsSiteDown(std::string_view name) const {
  auto it = sites_.find(ToLower(name));
  return it != sites_.end() && it->second.down;
}

Status Network::SetLink(std::string_view from, std::string_view to,
                        LinkParams params) {
  std::string from_key = ToLower(from);
  std::string to_key = ToLower(to);
  for (const auto& key : {from_key, to_key}) {
    if (sites_.count(key) == 0) {
      return Status::NotFound("cannot set link " + from_key + " -> " +
                              to_key + ": site '" + key +
                              "' does not exist");
    }
  }
  links_[{std::move(from_key), std::move(to_key)}] = params;
  return Status::OK();
}

LinkParams Network::GetLink(std::string_view from,
                            std::string_view to) const {
  auto it = links_.find({ToLower(from), ToLower(to)});
  return it != links_.end() ? it->second : default_link_;
}

Result<int64_t> Network::TransferMicros(std::string_view from,
                                        std::string_view to, int64_t bytes) {
  std::string from_key = ToLower(from);
  std::string to_key = ToLower(to);
  auto from_it = sites_.find(from_key);
  auto to_it = sites_.find(to_key);
  if (from_it == sites_.end() || to_it == sites_.end()) {
    return Status::Unavailable("unknown site in transfer " + from_key +
                               " -> " + to_key);
  }
  if (from_it->second.down || to_it->second.down) {
    return Status::Unavailable("site down in transfer " + from_key +
                               " -> " + to_key);
  }
  if (bytes < 0) {
    return Status::InvalidArgument("negative transfer size " +
                                   std::to_string(bytes) + " bytes");
  }
  LinkParams link = GetLink(from_key, to_key);
  // Ceiling division over a 128-bit intermediate: truncation used to
  // charge sub-KB messages zero bandwidth, and bytes * micros_per_kb
  // overflowed int64 for multi-GB payloads on slow links.
  unsigned __int128 weighted =
      static_cast<unsigned __int128>(bytes) *
      static_cast<unsigned __int128>(std::max<int64_t>(link.micros_per_kb, 0));
  int64_t serialization =
      static_cast<int64_t>((weighted + 1023) / 1024);
  int64_t micros = link.latency_micros + serialization;
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  return micros;
}

}  // namespace msql::netsim
