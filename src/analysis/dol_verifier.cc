#include "analysis/dol_verifier.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace msql::analysis {

namespace {

using dol::AbortStmt;
using dol::BinaryCond;
using dol::CloseStmt;
using dol::CommitStmt;
using dol::CompensateStmt;
using dol::DolCond;
using dol::DolCondKind;
using dol::DolProgram;
using dol::DolStmt;
using dol::DolStmtKind;
using dol::DolStmtPtr;
using dol::DolTaskState;
using dol::DolTaskStateName;
using dol::IfStmt;
using dol::NotCond;
using dol::OpenStmt;
using dol::ParallelStmt;
using dol::StateTestCond;
using dol::TaskStmt;
using dol::TransferStmt;

// Possible-state sets are bitmasks over the P/C/A/X machine plus the
// not-run state.
using StateMask = uint8_t;
constexpr StateMask kNotRun = 1u << 0;
constexpr StateMask kPrepared = 1u << 1;
constexpr StateMask kCommitted = 1u << 2;
constexpr StateMask kAborted = 1u << 3;
constexpr StateMask kCompensated = 1u << 4;

StateMask BitOf(DolTaskState state) {
  switch (state) {
    case DolTaskState::kNotRun:
      return kNotRun;
    case DolTaskState::kPrepared:
      return kPrepared;
    case DolTaskState::kCommitted:
      return kCommitted;
    case DolTaskState::kAborted:
      return kAborted;
    case DolTaskState::kCompensated:
      return kCompensated;
  }
  return kNotRun;
}

enum class Tri { kFalse, kTrue, kUnknown };

Tri TriAnd(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kUnknown;
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}

Tri TriNot(Tri a) {
  if (a == Tri::kFalse) return Tri::kTrue;
  if (a == Tri::kTrue) return Tri::kFalse;
  return Tri::kUnknown;
}

struct ChannelInfo {
  bool used = false;
  bool closed = false;
};

class Verifier {
 public:
  explicit Verifier(const DolProgram& program) : program_(program) {}

  void Run(DiagnosticList* out) {
    out_ = out;
    CollectDefinitions(program_.statements);
    std::map<std::string, StateMask> flow;
    for (const auto& [name, task] : tasks_) {
      (void)task;
      flow[name] = kNotRun;
    }
    WalkStmts(program_.statements, &flow);
    for (const auto& [alias, info] : channels_) {
      if (!info.used) {
        out_->Add(diag::kChannelNeverUsed, Severity::kError, SourceSpan{},
                  "channel '" + alias +
                      "' is opened but no TASK or TRANSFER uses it",
                  "drop the OPEN, or route a task through the channel");
      }
      if (!info.closed) {
        out_->Add(diag::kChannelNeverClosed, Severity::kError, SourceSpan{},
                  "channel '" + alias + "' is never closed",
                  "add the alias to a CLOSE statement");
      }
    }
  }

  // Naming sets for plan-level (DL209) checks.
  const std::set<std::string>& committed() const { return committed_; }
  const std::set<std::string>& aborted() const { return aborted_; }
  const std::set<std::string>& compensated() const { return compensated_; }
  const std::set<std::string>& tested() const { return tested_; }

 private:
  void CollectDefinitions(const std::vector<DolStmtPtr>& stmts) {
    for (const auto& stmt : stmts) {
      switch (stmt->kind()) {
        case DolStmtKind::kTask: {
          const auto* task = static_cast<const TaskStmt*>(stmt.get());
          auto [it, inserted] = tasks_.emplace(task->name, task);
          (void)it;
          if (!inserted) {
            out_->Add(diag::kDuplicateTaskName, Severity::kError,
                      SourceSpan{},
                      "task '" + task->name + "' is defined twice");
          }
          break;
        }
        case DolStmtKind::kParallel:
          CollectDefinitions(
              static_cast<const ParallelStmt*>(stmt.get())->body);
          break;
        case DolStmtKind::kIf: {
          const auto* ifs = static_cast<const IfStmt*>(stmt.get());
          CollectDefinitions(ifs->then_branch);
          CollectDefinitions(ifs->else_branch);
          break;
        }
        default:
          break;
      }
    }
  }

  /// Capability set of a task: every state it could ever be in, given
  /// its commit mode and the decisions that name it. Flow-insensitive,
  /// so it over-approximates the flow analysis.
  StateMask Capability(const std::string& name) const {
    auto it = tasks_.find(name);
    if (it == tasks_.end()) return 0;
    const TaskStmt* task = it->second;
    StateMask mask = kNotRun | kAborted;
    if (task->nocommit) {
      mask |= kPrepared;
      if (committed_.count(name) > 0) mask |= kCommitted;
    } else {
      mask |= kCommitted;
    }
    if (compensated_.count(name) > 0 && !task->compensation_sql.empty()) {
      mask |= kCompensated;
    }
    return mask;
  }

  /// Pre-pass over decisions so Capability() sees every COMMIT /
  /// COMPENSATE regardless of where it sits relative to the IF that
  /// tests the state.
  void CollectDecisions(const std::vector<DolStmtPtr>& stmts) {
    for (const auto& stmt : stmts) {
      switch (stmt->kind()) {
        case DolStmtKind::kCommit:
          for (const auto& t :
               static_cast<const CommitStmt*>(stmt.get())->tasks) {
            committed_.insert(t);
          }
          break;
        case DolStmtKind::kAbort:
          for (const auto& t :
               static_cast<const AbortStmt*>(stmt.get())->tasks) {
            aborted_.insert(t);
          }
          break;
        case DolStmtKind::kCompensate:
          for (const auto& t :
               static_cast<const CompensateStmt*>(stmt.get())->tasks) {
            compensated_.insert(t);
          }
          break;
        case DolStmtKind::kParallel:
          CollectDecisions(
              static_cast<const ParallelStmt*>(stmt.get())->body);
          break;
        case DolStmtKind::kIf: {
          const auto* ifs = static_cast<const IfStmt*>(stmt.get());
          CollectDecisions(ifs->then_branch);
          CollectDecisions(ifs->else_branch);
          break;
        }
        default:
          break;
      }
    }
  }

  void CheckCondTasks(const DolCond& cond) {
    switch (cond.kind()) {
      case DolCondKind::kStateTest: {
        const auto& test = static_cast<const StateTestCond&>(cond);
        tested_.insert(test.task());
        if (tasks_.count(test.task()) == 0) {
          out_->Add(diag::kStateTestUndefinedTask, Severity::kError,
                    SourceSpan{},
                    "condition tests task '" + test.task() +
                        "', which is not defined by any TASK statement");
        }
        return;
      }
      case DolCondKind::kAnd:
      case DolCondKind::kOr: {
        const auto& b = static_cast<const BinaryCond&>(cond);
        CheckCondTasks(b.left());
        CheckCondTasks(b.right());
        return;
      }
      case DolCondKind::kNot:
        CheckCondTasks(static_cast<const NotCond&>(cond).operand());
        return;
    }
  }

  template <typename Lookup>
  Tri EvalCond(const DolCond& cond, const Lookup& lookup) const {
    switch (cond.kind()) {
      case DolCondKind::kStateTest: {
        const auto& test = static_cast<const StateTestCond&>(cond);
        StateMask mask = lookup(test.task());
        if (mask == 0) return Tri::kUnknown;  // undefined task: DL201
        StateMask bit = BitOf(test.state());
        if ((mask & bit) == 0) return Tri::kFalse;
        if (mask == bit) return Tri::kTrue;
        return Tri::kUnknown;
      }
      case DolCondKind::kAnd: {
        const auto& b = static_cast<const BinaryCond&>(cond);
        return TriAnd(EvalCond(b.left(), lookup),
                      EvalCond(b.right(), lookup));
      }
      case DolCondKind::kOr: {
        const auto& b = static_cast<const BinaryCond&>(cond);
        return TriOr(EvalCond(b.left(), lookup),
                     EvalCond(b.right(), lookup));
      }
      case DolCondKind::kNot:
        return TriNot(
            EvalCond(static_cast<const NotCond&>(cond).operand(), lookup));
    }
    return Tri::kUnknown;
  }

  void WalkStmts(const std::vector<DolStmtPtr>& stmts,
                 std::map<std::string, StateMask>* flow) {
    for (const auto& stmt : stmts) WalkStmt(*stmt, flow);
  }

  void WalkStmt(const DolStmt& stmt, std::map<std::string, StateMask>* flow) {
    switch (stmt.kind()) {
      case DolStmtKind::kOpen: {
        const auto& open = static_cast<const OpenStmt&>(stmt);
        auto [it, inserted] = channels_.emplace(open.alias, ChannelInfo{});
        (void)it;
        if (!inserted) {
          out_->Add(diag::kDuplicateTaskName, Severity::kError,
                    SourceSpan{},
                    "channel '" + open.alias + "' is opened twice");
        }
        return;
      }
      case DolStmtKind::kTask: {
        const auto& task = static_cast<const TaskStmt&>(stmt);
        UseChannel(task.target_alias,
                   "TASK " + task.name + " FOR " + task.target_alias);
        (*flow)[task.name] =
            task.nocommit ? (kPrepared | kAborted) : (kCommitted | kAborted);
        return;
      }
      case DolStmtKind::kParallel: {
        // Parallel tasks are independent (distinct names), so their
        // effects commute; sequential application computes the join.
        const auto& par = static_cast<const ParallelStmt&>(stmt);
        WalkStmts(par.body, flow);
        return;
      }
      case DolStmtKind::kIf: {
        const auto& ifs = static_cast<const IfStmt&>(stmt);
        CheckCondTasks(*ifs.condition);
        // Unsatisfiable under the state machine (capability sets)?
        Tri cap = EvalCond(*ifs.condition, [this](const std::string& t) {
          return Capability(t);
        });
        if (cap == Tri::kFalse) {
          out_->Add(diag::kUnsatisfiableStateTest, Severity::kError,
                    SourceSpan{},
                    "condition " + ifs.condition->ToDol() +
                        " is unsatisfiable under the P/C/A/X state "
                        "machine: some tested state can never be reached");
        }
        // Unreachable under the flow state at this point?
        Tri here = EvalCond(*ifs.condition, [flow](const std::string& t) {
          auto it = flow->find(t);
          return it == flow->end() ? StateMask{0} : it->second;
        });
        if (cap != Tri::kFalse) {
          if (here == Tri::kFalse) {
            out_->Add(diag::kUnreachableBranch, Severity::kError,
                      SourceSpan{},
                      "condition " + ifs.condition->ToDol() +
                          " is always false here: the THEN branch is "
                          "unreachable");
          } else if (here == Tri::kTrue && !ifs.else_branch.empty()) {
            out_->Add(diag::kUnreachableBranch, Severity::kError,
                      SourceSpan{},
                      "condition " + ifs.condition->ToDol() +
                          " is always true here: the ELSE branch is "
                          "unreachable");
          }
        }
        auto then_flow = *flow;
        auto else_flow = *flow;
        WalkStmts(ifs.then_branch, &then_flow);
        WalkStmts(ifs.else_branch, &else_flow);
        // Join: either branch may have run.
        for (auto& [name, mask] : *flow) {
          mask = then_flow[name] | else_flow[name];
        }
        return;
      }
      case DolStmtKind::kCommit: {
        const auto& commit = static_cast<const CommitStmt&>(stmt);
        for (const auto& t : commit.tasks) {
          RequireDecidableTask(t, "COMMIT");
          // Commit may succeed, straggle prepared, or fail.
          (*flow)[t] |= kCommitted | kAborted;
        }
        return;
      }
      case DolStmtKind::kAbort: {
        const auto& abort = static_cast<const AbortStmt&>(stmt);
        for (const auto& t : abort.tasks) {
          RequireDecidableTask(t, "ABORT");
          (*flow)[t] |= kAborted;
        }
        return;
      }
      case DolStmtKind::kCompensate: {
        const auto& comp = static_cast<const CompensateStmt&>(stmt);
        for (const auto& t : comp.tasks) {
          auto it = tasks_.find(t);
          if (it == tasks_.end()) {
            out_->Add(diag::kUndefinedChannel, Severity::kError,
                      SourceSpan{},
                      "COMPENSATE names task '" + t +
                          "', which is not defined");
            continue;
          }
          if (it->second->compensation_sql.empty()) {
            out_->Add(diag::kCompensateWithoutBlock, Severity::kError,
                      SourceSpan{},
                      "COMPENSATE names task '" + t +
                          "', which has no COMPENSATION block",
                      "add a COMPENSATION { ... } block to the task");
          }
          (*flow)[t] |= kCompensated;
        }
        return;
      }
      case DolStmtKind::kTransfer: {
        const auto& transfer = static_cast<const TransferStmt&>(stmt);
        if (tasks_.count(transfer.task) == 0) {
          out_->Add(diag::kUndefinedChannel, Severity::kError, SourceSpan{},
                    "TRANSFER reads task '" + transfer.task +
                        "', which is not defined");
        }
        UseChannel(transfer.target_alias,
                   "TRANSFER " + transfer.task + " TO " +
                       transfer.target_alias);
        return;
      }
      case DolStmtKind::kSetStatus:
        return;
      case DolStmtKind::kClose: {
        const auto& close = static_cast<const CloseStmt&>(stmt);
        for (const auto& alias : close.aliases) {
          auto it = channels_.find(alias);
          if (it == channels_.end()) {
            out_->Add(diag::kUndefinedChannel, Severity::kError,
                      SourceSpan{},
                      "CLOSE names channel '" + alias +
                          "', which was never opened");
            continue;
          }
          it->second.closed = true;
        }
        return;
      }
    }
  }

  void UseChannel(const std::string& alias, const std::string& where) {
    auto it = channels_.find(alias);
    if (it == channels_.end()) {
      out_->Add(diag::kUndefinedChannel, Severity::kError, SourceSpan{},
                where + " references channel '" + alias +
                    "', which is not open at this point");
      return;
    }
    it->second.used = true;
  }

  void RequireDecidableTask(const std::string& name, const char* verb) {
    auto it = tasks_.find(name);
    if (it == tasks_.end()) {
      out_->Add(diag::kUndefinedChannel, Severity::kError, SourceSpan{},
                std::string(verb) + " names task '" + name +
                    "', which is not defined");
      return;
    }
    if (!it->second->nocommit) {
      out_->Add(diag::kDecisionOnUnpreparedTask, Severity::kError,
                SourceSpan{},
                std::string(verb) + " names task '" + name +
                    "', which runs in autocommit and can never be in "
                    "the prepared state",
                "make the task NOCOMMIT, or drop it from the decision");
    }
  }

 public:
  void Prepare() {
    // Decisions first: Capability() consults them during the walk.
    CollectDecisions(program_.statements);
  }

 private:
  const DolProgram& program_;
  DiagnosticList* out_ = nullptr;
  std::map<std::string, const TaskStmt*> tasks_;
  std::map<std::string, ChannelInfo> channels_;
  std::set<std::string> committed_;
  std::set<std::string> aborted_;
  std::set<std::string> compensated_;
  std::set<std::string> tested_;
};

}  // namespace

DiagnosticList VerifyProgram(const DolProgram& program) {
  DiagnosticList out;
  Verifier verifier(program);
  verifier.Prepare();
  verifier.Run(&out);
  return out;
}

DiagnosticList VerifyPlan(const translator::Plan& plan) {
  DiagnosticList out;
  Verifier verifier(plan.program);
  verifier.Prepare();
  verifier.Run(&out);

  // DL209: the sync points must cover every VITAL task. A 2PC task is
  // covered when a rollback decision can reach it and a commit decision
  // (or a guard condition) names it; a compensable task when COMPENSATE
  // names it; a last-resource or vital-retrieval task when its state
  // gates a decision.
  using translator::TaskMode;
  for (const auto& task : plan.tasks) {
    if (!task.vital) continue;
    switch (task.mode) {
      case TaskMode::kTwoPhase: {
        if (task.retrieval) break;
        bool rollback = verifier.aborted().count(task.task) > 0;
        bool commit = verifier.committed().count(task.task) > 0 ||
                      verifier.tested().count(task.task) > 0;
        if (!rollback) {
          out.Add(diag::kVitalTaskUncovered, Severity::kError, SourceSpan{},
                  "vital 2PC task '" + task.task +
                      "' is not covered by any rollback decision "
                      "(no ABORT names it)");
        }
        if (!commit) {
          out.Add(diag::kVitalTaskUncovered, Severity::kError, SourceSpan{},
                  "vital 2PC task '" + task.task +
                      "' is not covered by any commit decision "
                      "(no COMMIT or sync condition names it)");
        }
        break;
      }
      case TaskMode::kCompensable:
        if (verifier.compensated().count(task.task) == 0) {
          out.Add(diag::kVitalTaskUncovered, Severity::kError, SourceSpan{},
                  "vital compensable task '" + task.task +
                      "' is not covered by any rollback decision "
                      "(no COMPENSATE names it)");
        }
        break;
      case TaskMode::kLastResource:
        if (verifier.tested().count(task.task) == 0) {
          out.Add(diag::kVitalTaskUncovered, Severity::kError, SourceSpan{},
                  "last-resource task '" + task.task +
                      "' does not gate any decision: its unilateral "
                      "commit is the global decision and must be tested");
        }
        break;
      case TaskMode::kAutocommit:
        if (task.retrieval && plan.retrieval &&
            verifier.tested().count(task.task) == 0) {
          out.Add(diag::kVitalTaskUncovered, Severity::kError, SourceSpan{},
                  "vital retrieval task '" + task.task +
                      "' is not tested by the retrieval decision");
        }
        break;
    }
  }
  return out;
}

}  // namespace msql::analysis
