#ifndef MSQL_ANALYSIS_DIAGNOSTICS_H_
#define MSQL_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace msql::analysis {

// ---------------------------------------------------------------------------
// Diagnostics framework
//
// Every finding produced by the MSQL semantic checker (MS1xx), the DOL plan
// verifier (DL2xx), and the parser/expander error paths is a `Diagnostic`:
// a machine-readable code, a severity, a source span pointing at the
// offending token, a human message, and an optional fix hint. Diagnostics
// render in two forms: a single line for logs and Status payloads, and a
// multi-line "pretty" form that excerpts the source line with a caret.
// ---------------------------------------------------------------------------

enum class Severity {
  kNote,
  kWarning,
  kError,
};

std::string_view SeverityName(Severity severity);

/// Position of a token in the analyzed source. Lines and columns are
/// 1-based (matching relational::sql::Token); line 0 means "unknown".
struct SourceSpan {
  int line = 0;
  int column = 0;
  int length = 1;

  static SourceSpan At(int line, int column, int length = 1) {
    return SourceSpan{line, column, length};
  }

  bool known() const { return line > 0; }

  /// "line 3 col 14", or "" when unknown. Matches Token::Where().
  std::string ToString() const;
};

/// Error-code taxonomy. MS1xx = MSQL semantic errors (checker + parser +
/// expander); DL2xx = DOL plan errors (verifier). See DESIGN.md §8.
namespace diag {
// -- MS1xx: MSQL semantic ---------------------------------------------------
inline constexpr std::string_view kUnknownDatabase = "MS101";
inline constexpr std::string_view kUnknownTable = "MS102";
inline constexpr std::string_view kUnknownColumn = "MS103";
inline constexpr std::string_view kLetTypeMismatch = "MS104";
inline constexpr std::string_view kEmptyWildcard = "MS105";
inline constexpr std::string_view kOptionalNowhere = "MS106";
inline constexpr std::string_view kOptionalEverywhere = "MS107";
inline constexpr std::string_view kDuplicateEffectiveName = "MS108";
inline constexpr std::string_view kCompOnNonVital = "MS109";
inline constexpr std::string_view kCompUnknownDatabase = "MS110";
inline constexpr std::string_view kVitalSetUnenforceable = "MS111";
inline constexpr std::string_view kLetTargetMissing = "MS112";
inline constexpr std::string_view kLetArityMismatch = "MS113";
inline constexpr std::string_view kServiceNotIncorporated = "MS114";
// -- DL2xx: DOL plan --------------------------------------------------------
inline constexpr std::string_view kStateTestUndefinedTask = "DL201";
inline constexpr std::string_view kUnsatisfiableStateTest = "DL202";
inline constexpr std::string_view kUnreachableBranch = "DL203";
inline constexpr std::string_view kChannelNeverUsed = "DL204";
inline constexpr std::string_view kChannelNeverClosed = "DL205";
inline constexpr std::string_view kUndefinedChannel = "DL206";
inline constexpr std::string_view kDecisionOnUnpreparedTask = "DL207";
inline constexpr std::string_view kCompensateWithoutBlock = "DL208";
inline constexpr std::string_view kVitalTaskUncovered = "DL209";
inline constexpr std::string_view kDuplicateTaskName = "DL210";
// -- DL3xx: conflict & deadlock analysis ------------------------------------
inline constexpr std::string_view kLockOrderInversion = "DL301";
inline constexpr std::string_view kSelfDeadlock = "DL302";
inline constexpr std::string_view kExclusiveHeldAcrossRetry = "DL303";
inline constexpr std::string_view kUncommittedIntraRead = "DL304";
inline constexpr std::string_view kWideTwoPcBracket = "DL305";
inline constexpr std::string_view kOpaqueTaskSql = "DL306";
inline constexpr std::string_view kParallelSiblingWrites = "DL307";
inline constexpr std::string_view kDdlOnSharedTable = "DL308";
}  // namespace diag

struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  SourceSpan span;
  std::string message;
  std::string fix_hint;

  /// Single-line form: `error[MS101] line 1 col 5: message`.
  std::string Render() const;

  /// Multi-line form excerpting the offending source line:
  ///
  ///   error[MS103] line 2 col 12: column 'ratee' resolves in no database
  ///     2 | SELECT ratee FROM flights
  ///       |        ^~~~~
  ///     help: did you mean 'rate'?
  std::string RenderPretty(std::string_view source) const;
};

/// Ordered list of diagnostics with severity accounting.
class DiagnosticList {
 public:
  Diagnostic& Add(std::string_view code, Severity severity, SourceSpan span,
                  std::string message, std::string fix_hint = "");
  void Append(const DiagnosticList& other);

  const std::vector<Diagnostic>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  size_t error_count() const;
  size_t warning_count() const;
  bool has_errors() const { return error_count() > 0; }

  /// First diagnostic carrying `code`, or nullptr.
  const Diagnostic* Find(std::string_view code) const;

  /// All diagnostics, one single-line rendering per line.
  std::string RenderAll() const;
  /// All diagnostics in the multi-line pretty form against `source`.
  std::string RenderAllPretty(std::string_view source) const;

  /// OK when no errors; otherwise an InvalidArgument status whose message
  /// is the single-line rendering of every error-severity diagnostic.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace msql::analysis

#endif  // MSQL_ANALYSIS_DIAGNOSTICS_H_
