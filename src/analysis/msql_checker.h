#ifndef MSQL_ANALYSIS_MSQL_CHECKER_H_
#define MSQL_ANALYSIS_MSQL_CHECKER_H_

#include "analysis/diagnostics.h"
#include "mdbs/auxiliary_directory.h"
#include "mdbs/global_data_dictionary.h"
#include "msql/ast.h"

namespace msql::analysis {

// ---------------------------------------------------------------------------
// MSQL semantic checker (MS1xx)
//
// Runs against a scope-resolved MsqlQuery (USE CURRENT already merged) and
// the AD/GDD catalogs, before expansion. Everything it reports is decidable
// statically — the motivation is failing ill-formed programs before they
// burn simulated-network round trips and retry budgets. Error codes are
// documented in DESIGN.md §8; the main classes:
//
//   MS101 unknown database            MS108 duplicate effective name
//   MS102 table resolves nowhere      MS109 COMP names a NON-VITAL db
//   MS103 column resolves nowhere     MS110 COMP names an unknown db
//   MS104 LET type mismatch           MS111 vital set unenforceable
//   MS105 '%' matches nothing         MS112 LET target missing in its db
//   MS106 '~' exists nowhere          MS113 LET arity mismatch
//   MS107 '~' exists everywhere       MS114 service not incorporated
//
// MS111 mirrors the Translator's last-resource rule (DESIGN.md §5): two or
// more VITAL databases that neither support 2PC (for this statement's verb)
// nor carry a COMP clause make failure atomicity unenforceable. Callers
// should surface it as a REFUSED outcome, not a hard error, to match the
// run-time refusal path.
// ---------------------------------------------------------------------------

/// Checks one multiple query. `query.use.entries` must be the resolved
/// scope (non-empty, no pending USE CURRENT).
DiagnosticList CheckQuery(const lang::MsqlQuery& query,
                          const mdbs::GlobalDataDictionary& gdd,
                          const mdbs::AuxiliaryDirectory& ad);

/// Checks every member query of a multitransaction. MS111 is skipped for
/// members: the Translator enforces the stricter multitransaction rule
/// (every no-2PC member needs COMP) itself, and pertinence cannot be
/// decided statically per member.
DiagnosticList CheckMultiTransaction(const lang::MultiTransaction& mt,
                                     const mdbs::GlobalDataDictionary& gdd,
                                     const mdbs::AuxiliaryDirectory& ad);

}  // namespace msql::analysis

#endif  // MSQL_ANALYSIS_MSQL_CHECKER_H_
