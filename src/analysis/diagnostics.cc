#include "analysis/diagnostics.h"

#include <algorithm>
#include <sstream>

namespace msql::analysis {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

std::string SourceSpan::ToString() const {
  if (!known()) return "";
  std::ostringstream out;
  out << "line " << line << " col " << column;
  return out.str();
}

std::string Diagnostic::Render() const {
  std::ostringstream out;
  out << SeverityName(severity) << "[" << code << "]";
  if (span.known()) out << " " << span.ToString();
  out << ": " << message;
  return out.str();
}

namespace {

/// Returns the 1-based `line` of `source`, without its trailing newline.
std::string_view SourceLine(std::string_view source, int line) {
  int current = 1;
  size_t start = 0;
  while (current < line) {
    size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
    ++current;
  }
  size_t end = source.find('\n', start);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(start, end - start);
}

constexpr int kTabWidth = 4;

/// Expands tabs to spaces at kTabWidth stops. `columns`, when given,
/// maps 1-based source columns (as the lexer counts them: one column per
/// character, tabs included) to 1-based columns in the expanded text so
/// the caret lines up under the excerpt.
std::string ExpandTabs(std::string_view text, std::vector<int>* columns) {
  std::string out;
  out.reserve(text.size());
  if (columns) columns->clear();
  for (char c : text) {
    if (columns) columns->push_back(static_cast<int>(out.size()) + 1);
    if (c == '\t') {
      out.append(kTabWidth - out.size() % kTabWidth, ' ');
    } else {
      out.push_back(c);
    }
  }
  if (columns) columns->push_back(static_cast<int>(out.size()) + 1);
  return out;
}

}  // namespace

std::string Diagnostic::RenderPretty(std::string_view source) const {
  std::ostringstream out;
  out << Render();
  if (span.known()) {
    std::string_view text = SourceLine(source, span.line);
    if (!text.empty()) {
      std::vector<int> columns;
      std::string expanded = ExpandTabs(text, &columns);
      std::string gutter = std::to_string(span.line);
      out << "\n  " << gutter << " | " << expanded;
      out << "\n  " << std::string(gutter.size(), ' ') << " | ";
      int raw_col =
          std::min<int>(span.column, static_cast<int>(text.size()) + 1);
      int caret_col = columns[raw_col > 0 ? raw_col - 1 : 0];
      out << std::string(caret_col > 0 ? caret_col - 1 : 0, ' ');
      out << "^" << std::string(span.length > 1 ? span.length - 1 : 0, '~');
    }
  }
  if (!fix_hint.empty()) out << "\n  help: " << fix_hint;
  return out.str();
}

Diagnostic& DiagnosticList::Add(std::string_view code, Severity severity,
                                SourceSpan span, std::string message,
                                std::string fix_hint) {
  Diagnostic d;
  d.code = std::string(code);
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  items_.push_back(std::move(d));
  return items_.back();
}

void DiagnosticList::Append(const DiagnosticList& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

size_t DiagnosticList::error_count() const {
  return static_cast<size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kError;
      }));
}

size_t DiagnosticList::warning_count() const {
  return static_cast<size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kWarning;
      }));
}

const Diagnostic* DiagnosticList::Find(std::string_view code) const {
  for (const Diagnostic& d : items_) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string DiagnosticList::RenderAll() const {
  std::ostringstream out;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out << "\n";
    out << items_[i].Render();
  }
  return out.str();
}

std::string DiagnosticList::RenderAllPretty(std::string_view source) const {
  std::ostringstream out;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out << "\n";
    out << items_[i].RenderPretty(source);
  }
  return out.str();
}

Status DiagnosticList::ToStatus() const {
  if (!has_errors()) return Status::OK();
  std::ostringstream out;
  bool first = true;
  for (const Diagnostic& d : items_) {
    if (d.severity != Severity::kError) continue;
    if (!first) out << "\n";
    first = false;
    out << d.Render();
  }
  return Status::InvalidArgument(out.str());
}

}  // namespace msql::analysis
