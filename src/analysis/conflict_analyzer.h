#ifndef MSQL_ANALYSIS_CONFLICT_ANALYZER_H_
#define MSQL_ANALYSIS_CONFLICT_ANALYZER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "translator/translator.h"

namespace msql::analysis {

// ---------------------------------------------------------------------------
// Static conflict & deadlock analyzer (DL3xx)
//
// A compiled DOL plan fully determines which tables each multitransaction
// touches at which sites: every TASK body is post-expansion SQL, every
// TRANSFER names its target table, and the PARBEGIN structure fixes the
// partial order of first lock acquisition. This pass predicts, before a
// plan is admitted to the federation, the per-site per-table read/write
// sets (the S/X table locks of relational::LockManager, intention
// parents implied), the acquisition order across sites, and the
// NOCOMMIT-hold footprint (locks held across the 2PC bracket until the
// plan's global decision).
//
// The summary is a sound over-approximation of the runtime lock trace:
// every lock a run can take is predicted (a task whose SQL cannot be
// statically parsed degrades to a whole-database wildcard), so two
// summaries classified conflict-free can never produce a lock wait or a
// deadlock against each other. The scheduler's conflict-aware admission
// (core/session_scheduler) and the DL301-DL308 diagnostics both build on
// this guarantee.
//
//   DL301 lock-order inversion between two inputs   DL305 2PC bracket
//   DL302 self-deadlock via aliased USE databases         spans 2+ sites
//   DL303 X lock held across a retryable vital task DL306 opaque task SQL
//   DL304 uncommitted intra-MT write/read overlap   DL307 parallel sibling
//   DL308 DDL on a table other tasks touch                writes
// ---------------------------------------------------------------------------

/// Table-level lock mode the analyzer predicts (the intention mode at
/// the database node follows from it: IS under S, IX under X).
enum class PredictedMode { kShared, kExclusive };

std::string_view PredictedModeName(PredictedMode mode);  // "S" / "X"

/// One task's predicted access to one lockable resource.
struct TaskAccess {
  std::string task;      // DOL task name
  std::string service;
  std::string database;  // the session database the lock key lives in
  /// LockManager key: "db.table", or the wildcard "db.*" when the
  /// task's SQL is opaque (may touch any table of the database).
  std::string resource;
  PredictedMode mode = PredictedMode::kShared;
  /// Plan execution step of the task: tasks of one PARBEGIN share a
  /// step (their acquisitions are mutually unordered); later program
  /// statements get later steps.
  int step = 0;
  /// Acquired by a NOCOMMIT task: held across the 2PC bracket until
  /// the plan's global commit/abort decision.
  bool held_across_2pc = false;
  /// The access is a DDL statement (CREATE/DROP TABLE, INDEX, VIEW).
  bool ddl = false;
  /// The access comes from the task's COMPENSATION block (runs only
  /// when the plan compensates, in autocommit).
  bool compensation = false;
};

/// Per-plan access summary: the analyzer's prediction of every lock a
/// run of the plan can take, with the first-acquisition partial order.
struct AccessSummary {
  /// Every task-level access, in plan walk order.
  std::vector<TaskAccess> task_accesses;
  /// Merged per-(service, resource) accesses: write dominates read,
  /// step is the earliest acquisition, hold flags are OR-ed.
  std::vector<TaskAccess> accesses;
  /// Services where some task's SQL could not be parsed (the summary
  /// holds a "db.*" wildcard write there).
  std::set<std::string> opaque_services;
  /// Distinct services NOCOMMIT locks are held at across the commit
  /// bracket (the plan's 2PC footprint width).
  int two_pc_sites = 0;

  /// Merged access for (service, resource), or nullptr.
  const TaskAccess* Find(const std::string& service,
                         const std::string& resource) const;
  /// Human-readable per-site rendering (msql_lint --conflicts, shell
  /// \conflicts): read/write sets, lock modes, acquisition order,
  /// NOCOMMIT holds.
  std::string Render() const;
};

/// True when two lock keys can denote the same resource ("db.*"
/// wildcards overlap every table of their database).
bool ResourcesOverlap(const std::string& a, const std::string& b);

/// Computes the plan's access summary: walks OPEN/TASK/TRANSFER
/// statements, parses task bodies and compensation blocks, and derives
/// read/write sets plus the acquisition partial order.
AccessSummary SummarizePlan(const translator::Plan& plan);

/// How two concurrently running plans can interact.
enum class ConflictKind {
  kNone,        // disjoint resources, or read/read only
  kReadWrite,   // S vs X on some shared resource: lock waits possible
  kWriteWrite,  // X vs X: lock waits and lost-update races possible
};

std::string_view ConflictKindName(ConflictKind kind);

/// Pairwise conflict verdict between two access summaries.
struct PairwiseConflict {
  ConflictKind kind = ConflictKind::kNone;
  /// Contended "service:resource" keys, in summary order.
  std::vector<std::string> resources;
  /// The two plans may first-acquire two contended resources in
  /// opposite orders — the static deadlock signature (hold-and-wait is
  /// possible in both directions). Implies kind != kNone.
  bool deadlock_risk = false;
};

/// Classifies what can happen when `a` and `b` run concurrently. Sound:
/// kNone means no runtime lock wait between the two is possible.
PairwiseConflict Classify(const AccessSummary& a, const AccessSummary& b);

/// DL302-DL308: intra-plan conflict diagnostics over one compiled plan
/// and its summary (vital/retry context comes from `plan`).
DiagnosticList AnalyzeConflicts(const translator::Plan& plan,
                                const AccessSummary& summary);

/// DL301: lock-order inversion between two compiled inputs that may run
/// as concurrent sessions. Diagnostics are worded against input
/// `b_index` (1-based, for "input N" messages).
DiagnosticList CheckPlanPair(const AccessSummary& a, const AccessSummary& b,
                             size_t a_index, size_t b_index);

/// Text matrix of pairwise verdicts over a script's summaries (row i /
/// column j = Classify(inputs[i], inputs[j]); '.' none, 'R' read/write,
/// 'W' write/write, '!' deadlock risk). Inputs without a summary show
/// as '-'.
std::string RenderConflictMatrix(
    const std::vector<const AccessSummary*>& summaries);

/// Conflict graph over the admitted sessions of a federation batch.
/// The scheduler registers each admitted session's summary and asks,
/// before admitting a candidate, whether its lock order inverts an
/// admitted session's (predicted deadlock) — if so, admission is
/// delayed until the risky sessions finish.
class ConflictGraph {
 public:
  void Admit(uint64_t id, std::shared_ptr<const AccessSummary> summary);
  void Remove(uint64_t id);
  size_t size() const { return admitted_.size(); }

  /// Marks an admitted session as past its lock-acquisition phase: its
  /// next remote call is a prepare/commit/rollback, so it still holds
  /// locks but will request no new ones, and a waits-for cycle through
  /// it can no longer form. WouldRiskDeadlock skips quiesced sessions
  /// (Contending still reports them — a candidate may well wait on
  /// their held locks, it just cannot deadlock with them).
  void Quiesce(uint64_t id) { quiesced_.insert(id); }
  /// Undoes Quiesce when a compensation or vital-task retry makes the
  /// session issue lock-acquiring calls again.
  void Reactivate(uint64_t id) { quiesced_.erase(id); }

  /// Ids of admitted sessions `candidate` contends with (any kind).
  std::vector<uint64_t> Contending(const AccessSummary& candidate) const;

  /// True when admitting `candidate` would create a pairwise deadlock
  /// risk with an admitted session; appends the risky ids to `against`
  /// when given.
  bool WouldRiskDeadlock(const AccessSummary& candidate,
                         std::vector<uint64_t>* against = nullptr) const;

 private:
  std::map<uint64_t, std::shared_ptr<const AccessSummary>> admitted_;
  std::set<uint64_t> quiesced_;
};

}  // namespace msql::analysis

#endif  // MSQL_ANALYSIS_CONFLICT_ANALYZER_H_
