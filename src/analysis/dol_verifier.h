#ifndef MSQL_ANALYSIS_DOL_VERIFIER_H_
#define MSQL_ANALYSIS_DOL_VERIFIER_H_

#include "analysis/diagnostics.h"
#include "dol/ast.h"
#include "translator/translator.h"

namespace msql::analysis {

// ---------------------------------------------------------------------------
// DOL plan verifier (DL2xx)
//
// A dataflow pass over dol::DolProgram. Each task is tracked as a set of
// *possible* states under the P/C/A/X machine (DESIGN.md §8):
//
//   TASK t NOCOMMIT   → {P, A}          (prepares or fails)
//   TASK t            → {C, A}          (autocommits or fails)
//   COMMIT t          → adds {C, A}     (commit may straggle or fail)
//   ABORT t           → adds {A}
//   COMPENSATE t      → adds {X}
//   IF c THEN s ELSE s' → branches analyzed separately, states unioned
//
// The pass is an over-approximation: every state the engine can reach is
// in the tracked set, so "condition is definitely false" (DL202/DL203)
// and "task can never reach the tested state" are sound rejections.
// Structural checks ride along: undefined tasks/channels, channels opened
// but never used or never closed, duplicate names, decisions on tasks
// that can never prepare, COMPENSATE without a COMPENSATION block.
//
//   DL201 state test on undefined task    DL206 undefined channel/task
//   DL202 unsatisfiable state test        DL207 COMMIT/ABORT of a task
//   DL203 unreachable IF branch                 that never prepares
//   DL204 channel opened, never used      DL208 COMPENSATE without block
//   DL205 channel never closed            DL209 vital task uncovered
//                                         DL210 duplicate task/channel
// ---------------------------------------------------------------------------

/// Structural + dataflow verification of a bare DOL program.
DiagnosticList VerifyProgram(const dol::DolProgram& program);

/// VerifyProgram plus plan-level checks: every VITAL non-retrieval task
/// must be covered by the commit and rollback decisions (DL209) — a
/// 2PC task needs both a COMMIT and an ABORT naming it, a compensable
/// task needs a COMPENSATE, and a last-resource task must gate some
/// decision (appear in a condition). This is the translator-bug oracle:
/// it must accept 100% of translator-emitted plans.
DiagnosticList VerifyPlan(const translator::Plan& plan);

}  // namespace msql::analysis

#endif  // MSQL_ANALYSIS_DOL_VERIFIER_H_
