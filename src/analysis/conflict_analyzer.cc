#include "analysis/conflict_analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <utility>

#include "relational/sql/parser.h"

namespace msql::analysis {

namespace {

std::string Lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

/// "db.table" lock key as relational::Executor builds it; `table` == "*"
/// is the analyzer's whole-database wildcard.
std::string LockKey(const std::string& database, const std::string& table) {
  return Lower(database) + "." + Lower(table);
}

/// The session a TASK/TRANSFER targets, resolved from its OPEN.
struct OpenedSession {
  std::string database;
  std::string service;
};

/// Sink for one task's predicted accesses while its SQL is walked.
struct AccessSink {
  AccessSummary* summary;
  std::string task;
  OpenedSession session;
  int step = 0;
  bool nocommit = false;
  bool compensation = false;

  void Add(const std::string& table, PredictedMode mode, bool ddl = false) {
    TaskAccess access;
    access.task = task;
    access.service = session.service;
    access.database = session.database;
    access.resource = LockKey(session.database, table);
    access.mode = mode;
    access.step = step;
    // Compensation runs autocommit after the global decision, when the
    // 2PC bracket's locks are already released.
    access.held_across_2pc = nocommit && !compensation;
    access.ddl = ddl;
    access.compensation = compensation;
    summary->task_accesses.push_back(std::move(access));
  }
};

void CollectSelectReads(const relational::SelectStmt& select,
                        AccessSink* sink);

/// Reads hidden inside scalar subqueries, at any depth.
void CollectExprReads(const relational::Expr& expr, AccessSink* sink) {
  using relational::ExprKind;
  switch (expr.kind()) {
    case ExprKind::kScalarSubquery:
      CollectSelectReads(
          static_cast<const relational::ScalarSubqueryExpr&>(expr).select(),
          sink);
      break;
    case ExprKind::kUnary:
      CollectExprReads(
          static_cast<const relational::UnaryExpr&>(expr).operand(), sink);
      break;
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const relational::BinaryExpr&>(expr);
      CollectExprReads(binary.left(), sink);
      CollectExprReads(binary.right(), sink);
      break;
    }
    case ExprKind::kFunctionCall:
      for (const auto& arg :
           static_cast<const relational::FunctionCallExpr&>(expr).args()) {
        CollectExprReads(*arg, sink);
      }
      break;
    case ExprKind::kInList: {
      const auto& in = static_cast<const relational::InListExpr&>(expr);
      CollectExprReads(in.operand(), sink);
      for (const auto& item : in.list()) CollectExprReads(*item, sink);
      break;
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const relational::BetweenExpr&>(expr);
      CollectExprReads(between.operand(), sink);
      CollectExprReads(between.lo(), sink);
      CollectExprReads(between.hi(), sink);
      break;
    }
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      break;
  }
}

void CollectSelectReads(const relational::SelectStmt& select,
                        AccessSink* sink) {
  for (const auto& ref : select.from) {
    sink->Add(ref.table, PredictedMode::kShared);
  }
  for (const auto& item : select.items) {
    if (item.expr) CollectExprReads(*item.expr, sink);
  }
  if (select.where) CollectExprReads(*select.where, sink);
  for (const auto& expr : select.group_by) CollectExprReads(*expr, sink);
  if (select.having) CollectExprReads(*select.having, sink);
  for (const auto& item : select.order_by) {
    if (item.expr) CollectExprReads(*item.expr, sink);
  }
}

/// Predicted accesses of one statement of a task body, mirroring the
/// lock points of relational::Executor (S on every FROM reference, X on
/// the INSERT/UPDATE/DELETE target and on DDL'd tables/views/indexes).
void CollectStatementAccesses(const relational::Statement& stmt,
                              AccessSink* sink) {
  using relational::StatementKind;
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      CollectSelectReads(static_cast<const relational::SelectStmt&>(stmt),
                         sink);
      break;
    case StatementKind::kInsert: {
      const auto& insert = static_cast<const relational::InsertStmt&>(stmt);
      sink->Add(insert.table.table, PredictedMode::kExclusive);
      if (insert.select_source) {
        CollectSelectReads(*insert.select_source, sink);
      }
      for (const auto& row : insert.values_rows) {
        for (const auto& expr : row) CollectExprReads(*expr, sink);
      }
      break;
    }
    case StatementKind::kUpdate: {
      const auto& update = static_cast<const relational::UpdateStmt&>(stmt);
      sink->Add(update.table.table, PredictedMode::kExclusive);
      for (const auto& assignment : update.assignments) {
        CollectExprReads(*assignment.value, sink);
      }
      if (update.where) CollectExprReads(*update.where, sink);
      break;
    }
    case StatementKind::kDelete: {
      const auto& del = static_cast<const relational::DeleteStmt&>(stmt);
      sink->Add(del.table.table, PredictedMode::kExclusive);
      if (del.where) CollectExprReads(*del.where, sink);
      break;
    }
    case StatementKind::kCreateTable:
      sink->Add(static_cast<const relational::CreateTableStmt&>(stmt)
                    .table.table,
                PredictedMode::kExclusive, /*ddl=*/true);
      break;
    case StatementKind::kDropTable:
      sink->Add(
          static_cast<const relational::DropTableStmt&>(stmt).table.table,
          PredictedMode::kExclusive, /*ddl=*/true);
      break;
    case StatementKind::kCreateView: {
      const auto& view = static_cast<const relational::CreateViewStmt&>(stmt);
      sink->Add(view.name, PredictedMode::kExclusive, /*ddl=*/true);
      if (view.definition) CollectSelectReads(*view.definition, sink);
      break;
    }
    case StatementKind::kDropView:
      sink->Add(static_cast<const relational::DropViewStmt&>(stmt).name,
                PredictedMode::kExclusive, /*ddl=*/true);
      break;
    case StatementKind::kCreateIndex:
      sink->Add(
          static_cast<const relational::CreateIndexStmt&>(stmt).table.table,
          PredictedMode::kExclusive, /*ddl=*/true);
      break;
    case StatementKind::kDropIndex:
      sink->Add(
          static_cast<const relational::DropIndexStmt&>(stmt).table.table,
          PredictedMode::kExclusive, /*ddl=*/true);
      break;
    case StatementKind::kCreateDatabase:
    case StatementKind::kDropDatabase:
      sink->Add("*", PredictedMode::kExclusive, /*ddl=*/true);
      break;
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
    case StatementKind::kPrepare:
      break;
  }
}

/// Parses and walks one SQL block; unparseable SQL degrades to the
/// whole-database wildcard write (sound fallback).
void CollectSqlAccesses(const std::string& sql, AccessSink* sink) {
  auto parsed = relational::ParseSqlScript(sql);
  if (!parsed.ok()) {
    sink->Add("*", PredictedMode::kExclusive);
    sink->summary->opaque_services.insert(sink->session.service);
    return;
  }
  for (const auto& stmt : *parsed) CollectStatementAccesses(*stmt, sink);
}

/// Flow walk assigning acquisition steps: sequential statements advance
/// the step counter; every task of one PARBEGIN shares a step (their
/// first acquisitions are mutually unordered).
class PlanWalker {
 public:
  explicit PlanWalker(AccessSummary* summary) : summary_(summary) {}

  void Walk(const dol::DolProgram& program) {
    for (const auto& stmt : program.statements) WalkStmt(*stmt, false);
  }

 private:
  void WalkStmt(const dol::DolStmt& stmt, bool in_parallel) {
    switch (stmt.kind()) {
      case dol::DolStmtKind::kOpen: {
        const auto& open = static_cast<const dol::OpenStmt&>(stmt);
        opens_[open.alias] = OpenedSession{open.database, open.service};
        break;
      }
      case dol::DolStmtKind::kTask: {
        const auto& task = static_cast<const dol::TaskStmt&>(stmt);
        tasks_[task.name] = &task;
        AccessSink sink;
        sink.summary = summary_;
        sink.task = task.name;
        sink.session = opens_[task.target_alias];
        sink.step = next_step_;
        sink.nocommit = task.nocommit;
        CollectSqlAccesses(task.body_sql, &sink);
        if (!in_parallel) ++next_step_;
        break;
      }
      case dol::DolStmtKind::kParallel: {
        const auto& par = static_cast<const dol::ParallelStmt&>(stmt);
        for (const auto& inner : par.body) WalkStmt(*inner, true);
        ++next_step_;
        break;
      }
      case dol::DolStmtKind::kIf: {
        const auto& branch = static_cast<const dol::IfStmt&>(stmt);
        for (const auto& inner : branch.then_branch) {
          WalkStmt(*inner, in_parallel);
        }
        for (const auto& inner : branch.else_branch) {
          WalkStmt(*inner, in_parallel);
        }
        break;
      }
      case dol::DolStmtKind::kCompensate: {
        const auto& comp = static_cast<const dol::CompensateStmt&>(stmt);
        for (const auto& name : comp.tasks) {
          auto it = tasks_.find(name);
          if (it == tasks_.end() || it->second->compensation_sql.empty()) {
            continue;
          }
          AccessSink sink;
          sink.summary = summary_;
          sink.task = name;
          sink.session = opens_[it->second->target_alias];
          sink.step = next_step_;
          sink.compensation = true;
          CollectSqlAccesses(it->second->compensation_sql, &sink);
        }
        break;
      }
      case dol::DolStmtKind::kTransfer: {
        const auto& transfer = static_cast<const dol::TransferStmt&>(stmt);
        AccessSink sink;
        sink.summary = summary_;
        sink.task = transfer.task;
        sink.session = opens_[transfer.target_alias];
        sink.step = next_step_;
        // Non-APPEND transfers create the target as a temporary table.
        sink.Add(transfer.table, PredictedMode::kExclusive,
                 /*ddl=*/!transfer.append);
        if (!in_parallel) ++next_step_;
        break;
      }
      case dol::DolStmtKind::kCommit:
      case dol::DolStmtKind::kAbort:
      case dol::DolStmtKind::kSetStatus:
      case dol::DolStmtKind::kClose:
        break;
    }
  }

  AccessSummary* summary_;
  std::map<std::string, OpenedSession> opens_;
  std::map<std::string, const dol::TaskStmt*> tasks_;
  int next_step_ = 1;
};

bool ModesConflict(PredictedMode a, PredictedMode b) {
  return a == PredictedMode::kExclusive || b == PredictedMode::kExclusive;
}

/// One contended (service, resource-pair) between two summaries, with
/// each side's first-acquisition step.
struct Contention {
  const TaskAccess* a;
  const TaskAccess* b;
};

std::vector<Contention> FindContentions(const AccessSummary& a,
                                        const AccessSummary& b) {
  std::vector<Contention> out;
  for (const auto& mine : a.accesses) {
    for (const auto& theirs : b.accesses) {
      if (mine.service != theirs.service) continue;
      if (!ResourcesOverlap(mine.resource, theirs.resource)) continue;
      if (!ModesConflict(mine.mode, theirs.mode)) continue;
      out.push_back(Contention{&mine, &theirs});
    }
  }
  return out;
}

}  // namespace

std::string_view PredictedModeName(PredictedMode mode) {
  return mode == PredictedMode::kExclusive ? "X" : "S";
}

std::string_view ConflictKindName(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kNone:
      return "none";
    case ConflictKind::kReadWrite:
      return "read/write";
    case ConflictKind::kWriteWrite:
      return "write/write";
  }
  return "none";
}

bool ResourcesOverlap(const std::string& a, const std::string& b) {
  if (a == b) return true;
  size_t dot_a = a.find('.');
  size_t dot_b = b.find('.');
  if (dot_a == std::string::npos || dot_b == std::string::npos) return false;
  if (a.compare(0, dot_a, b, 0, dot_b) != 0) return false;
  return a.compare(dot_a + 1, std::string::npos, "*") == 0 ||
         b.compare(dot_b + 1, std::string::npos, "*") == 0;
}

const TaskAccess* AccessSummary::Find(const std::string& service,
                                      const std::string& resource) const {
  for (const auto& access : accesses) {
    if (access.service == service && access.resource == resource) {
      return &access;
    }
  }
  return nullptr;
}

AccessSummary SummarizePlan(const translator::Plan& plan) {
  AccessSummary summary;
  PlanWalker walker(&summary);
  walker.Walk(plan.program);

  // Merge per (service, resource): write dominates read, earliest step
  // wins, hold/DDL flags accumulate; an access is compensation-only when
  // every contributing task access is.
  std::map<std::pair<std::string, std::string>, size_t> merged_index;
  for (const auto& access : summary.task_accesses) {
    auto key = std::make_pair(access.service, access.resource);
    auto it = merged_index.find(key);
    if (it == merged_index.end()) {
      merged_index[key] = summary.accesses.size();
      summary.accesses.push_back(access);
      continue;
    }
    TaskAccess& merged = summary.accesses[it->second];
    if (access.mode == PredictedMode::kExclusive) {
      merged.mode = PredictedMode::kExclusive;
    }
    merged.step = std::min(merged.step, access.step);
    merged.held_across_2pc |= access.held_across_2pc;
    merged.ddl |= access.ddl;
    merged.compensation &= access.compensation;
  }

  std::set<std::string> two_pc_services;
  for (const auto& access : summary.accesses) {
    if (access.held_across_2pc) two_pc_services.insert(access.service);
  }
  summary.two_pc_sites = static_cast<int>(two_pc_services.size());
  return summary;
}

std::string AccessSummary::Render() const {
  std::ostringstream out;
  // Group merged accesses per service, ordered by first acquisition.
  std::map<std::string, std::vector<const TaskAccess*>> by_service;
  std::map<std::string, int> first_step;
  for (const auto& access : accesses) {
    by_service[access.service].push_back(&access);
    auto it = first_step.find(access.service);
    if (it == first_step.end() || access.step < it->second) {
      first_step[access.service] = access.step;
    }
  }
  out << "access summary: " << by_service.size() << " site"
      << (by_service.size() == 1 ? "" : "s") << ", " << accesses.size()
      << " resource" << (accesses.size() == 1 ? "" : "s") << "\n";

  std::vector<std::string> services;
  for (const auto& [service, _] : by_service) services.push_back(service);
  std::sort(services.begin(), services.end(),
            [&](const std::string& x, const std::string& y) {
              if (first_step[x] != first_step[y]) {
                return first_step[x] < first_step[y];
              }
              return x < y;
            });

  for (const auto& service : services) {
    out << "  site " << service << " (step " << first_step[service] << "):\n";
    for (const TaskAccess* access : by_service[service]) {
      out << "    " << PredictedModeName(access->mode) << " "
          << access->resource << "  step " << access->step;
      if (access->held_across_2pc) out << "  [held across 2PC]";
      if (access->ddl) out << "  [ddl]";
      if (access->compensation) out << "  [compensation]";
      if (opaque_services.count(service) &&
          access->resource.size() > 2 &&
          access->resource.compare(access->resource.size() - 2, 2, ".*") ==
              0) {
        out << "  [opaque SQL]";
      }
      out << "\n";
    }
  }

  if (services.size() > 1) {
    out << "  acquisition order: ";
    for (size_t i = 0; i < services.size(); ++i) {
      if (i > 0) {
        out << (first_step[services[i]] == first_step[services[i - 1]]
                    ? " | "
                    : " -> ");
      }
      out << services[i];
    }
    out << "\n";
  }
  if (two_pc_sites > 0) {
    out << "  2PC bracket holds locks at " << two_pc_sites << " site"
        << (two_pc_sites == 1 ? "" : "s") << "\n";
  }
  return out.str();
}

PairwiseConflict Classify(const AccessSummary& a, const AccessSummary& b) {
  PairwiseConflict result;
  std::vector<Contention> contentions = FindContentions(a, b);
  if (contentions.empty()) return result;

  result.kind = ConflictKind::kReadWrite;
  std::set<std::string> seen;
  for (const auto& c : contentions) {
    if (c.a->mode == PredictedMode::kExclusive &&
        c.b->mode == PredictedMode::kExclusive) {
      result.kind = ConflictKind::kWriteWrite;
    }
    std::string key = c.a->service + ":" +
                      (c.a->resource == c.b->resource
                           ? c.a->resource
                           : c.a->resource + "|" + c.b->resource);
    if (seen.insert(key).second) result.resources.push_back(key);
  }

  // Deadlock signature: two contended resources that the plans may
  // first-acquire in opposite orders. Equal steps (PARBEGIN siblings)
  // leave the order open, so they count in both directions.
  for (size_t i = 0; i < contentions.size() && !result.deadlock_risk; ++i) {
    for (size_t j = 0; j < contentions.size(); ++j) {
      if (i == j) continue;
      const Contention& r = contentions[i];
      const Contention& s = contentions[j];
      if (r.a == s.a && r.b == s.b) continue;
      if (r.a->step <= s.a->step && s.b->step <= r.b->step) {
        result.deadlock_risk = true;
        break;
      }
    }
  }
  return result;
}

DiagnosticList AnalyzeConflicts(const translator::Plan& plan,
                                const AccessSummary& summary) {
  DiagnosticList diags;
  std::set<std::string> emitted;
  auto once = [&emitted](std::string key) {
    return emitted.insert(std::move(key)).second;
  };

  const auto& accesses = summary.task_accesses;

  // DL306: opaque task SQL degraded to a whole-database wildcard. DDL
  // wildcards (CREATE/DROP DATABASE) are real whole-db writes, not
  // parse fallbacks.
  for (const auto& access : accesses) {
    if (access.ddl || access.compensation) continue;
    if (access.resource.size() < 2 ||
        access.resource.compare(access.resource.size() - 2, 2, ".*") != 0) {
      continue;
    }
    if (!summary.opaque_services.count(access.service)) continue;
    if (!once("DL306:" + access.task)) continue;
    diags.Add(diag::kOpaqueTaskSql, Severity::kWarning, SourceSpan{},
              "task '" + access.task + "' has SQL the analyzer cannot parse; "
              "its footprint at " + access.service +
                  " widens to every table of " + access.database,
              "conflict prediction is coarse for this plan: any session "
              "touching " + access.database + " is classified as contended");
  }

  // DL302 / DL304 / DL307 / DL308: pairwise over the task accesses.
  for (const auto& holder : accesses) {
    for (const auto& other : accesses) {
      if (holder.task == other.task) continue;
      if (holder.service != other.service) continue;
      if (!ResourcesOverlap(holder.resource, other.resource)) continue;
      if (!ModesConflict(holder.mode, other.mode)) continue;

      // DL302: a NOCOMMIT task's locks release only at the global
      // decision, which waits for every task — any later (or parallel)
      // sibling needing the resource deadlocks the plan against itself.
      // The classic instance: two USE aliases of the same database.
      if (holder.held_across_2pc && !other.compensation &&
          other.step >= holder.step &&
          once("DL302:" + holder.task + ":" + other.task + ":" +
               holder.resource)) {
        diags.Add(
            diag::kSelfDeadlock, Severity::kError, SourceSpan{},
            "self-deadlock: task '" + other.task + "' needs " +
                other.resource + " (" +
                std::string(PredictedModeName(other.mode)) + ") at " +
                holder.service + ", but task '" + holder.task +
                "' holds it in " +
                std::string(PredictedModeName(holder.mode)) +
                " across the 2PC bracket; the lock releases only after "
                "'" + other.task + "' completes",
            "route both accesses through one task, or drop the aliased "
            "session so the plan opens " + holder.database + " once");
      }

      // DL304: an autocommit writer commits locally before the global
      // decision; a sibling that then reads the table sees data the MT
      // may still compensate away — a global-level dirty read.
      if (holder.mode == PredictedMode::kExclusive &&
          !holder.held_across_2pc && !holder.compensation &&
          !holder.ddl && !other.compensation &&
          other.mode == PredictedMode::kShared &&
          other.step >= holder.step &&
          once("DL304:" + holder.task + ":" + other.task + ":" +
               holder.resource)) {
        diags.Add(
            diag::kUncommittedIntraRead, Severity::kWarning, SourceSpan{},
            "task '" + other.task + "' reads " + other.resource +
                " after sibling task '" + holder.task +
                "' wrote it in autocommit; if the multitransaction later "
                "compensates, the read saw globally uncommitted data",
            "make '" + holder.task + "' NOCOMMIT (2PC) so the write stays "
            "invisible until the global decision");
      }

      // DL307: unordered sibling writers racing on one resource.
      if (holder.mode == PredictedMode::kExclusive &&
          other.mode == PredictedMode::kExclusive &&
          holder.step == other.step && !holder.held_across_2pc &&
          !other.held_across_2pc && !holder.compensation &&
          !other.compensation && holder.task < other.task &&
          once("DL307:" + holder.task + ":" + other.task + ":" +
               holder.resource)) {
        diags.Add(diag::kParallelSiblingWrites, Severity::kWarning,
                  SourceSpan{},
                  "parallel tasks '" + holder.task + "' and '" + other.task +
                      "' both write " + holder.resource +
                      "; their serialization order inside the PARBEGIN is "
                      "nondeterministic",
                  "order the tasks sequentially if the final state depends "
                  "on who writes last");
      }

      // DL308: DDL on a table other tasks of the plan also touch.
      if (holder.ddl && !other.ddl &&
          once("DL308:" + holder.task + ":" + holder.resource)) {
        diags.Add(diag::kDdlOnSharedTable, Severity::kNote, SourceSpan{},
                  "task '" + holder.task + "' runs DDL on " +
                      holder.resource + " while task '" + other.task +
                      "' also touches it",
                  "");
      }
    }
  }

  // DL303: an X lock held across the 2PC bracket while a vital task at
  // another site may still be retried (engine backoff re-sends) keeps
  // the table unavailable for the whole retry window.
  for (const auto& holder : accesses) {
    if (!holder.held_across_2pc ||
        holder.mode != PredictedMode::kExclusive) {
      continue;
    }
    for (const auto& task : plan.tasks) {
      if (!task.vital || task.service == holder.service) continue;
      const auto step_of = [&accesses](const std::string& name) {
        int step = 0;
        for (const auto& access : accesses) {
          if (access.task == name) return access.step;
        }
        return step;
      };
      if (step_of(task.task) < holder.step) continue;
      if (!once("DL303:" + holder.task + ":" + holder.resource)) break;
      diags.Add(diag::kExclusiveHeldAcrossRetry, Severity::kNote,
                SourceSpan{},
                "task '" + holder.task + "' holds " + holder.resource +
                    " exclusively across the 2PC bracket while vital task "
                    "'" + task.task + "' at " + task.service +
                    " may still be retried; the table stays blocked for "
                    "the whole retry window",
                "");
      break;
    }
  }

  // DL305: NOCOMMIT locks held at two or more sites — the widest
  // blocking footprint a multitransaction can pin during 2PC.
  if (summary.two_pc_sites >= 2) {
    diags.Add(diag::kWideTwoPcBracket, Severity::kNote, SourceSpan{},
              "2PC bracket holds locks at " +
                  std::to_string(summary.two_pc_sites) +
                  " sites until the global decision; a slow or retried "
                  "participant blocks every site's tables",
              "");
  }

  return diags;
}

DiagnosticList CheckPlanPair(const AccessSummary& a, const AccessSummary& b,
                             size_t a_index, size_t b_index) {
  DiagnosticList diags;
  PairwiseConflict conflict = Classify(a, b);
  if (!conflict.deadlock_risk) return diags;

  std::string resources;
  for (size_t i = 0; i < conflict.resources.size() && i < 4; ++i) {
    if (i > 0) resources += ", ";
    resources += conflict.resources[i];
  }
  diags.Add(diag::kLockOrderInversion, Severity::kWarning, SourceSpan{},
            "inputs " + std::to_string(a_index) + " and " +
                std::to_string(b_index) +
                " may first-acquire contended resources in opposite "
                "orders (" + resources +
                "); run concurrently they can deadlock",
            "acquire sites in one global order, or serialize the two "
            "inputs");
  return diags;
}

std::string RenderConflictMatrix(
    const std::vector<const AccessSummary*>& summaries) {
  std::ostringstream out;
  size_t n = summaries.size();
  out << "pairwise conflicts (" << n << " input" << (n == 1 ? "" : "s")
      << "): . none, R read/write, W write/write, ! deadlock risk\n";
  out << "     ";
  for (size_t j = 0; j < n; ++j) {
    out << " " << (j + 1 < 10 ? " " : "") << (j + 1);
  }
  out << "\n";
  for (size_t i = 0; i < n; ++i) {
    out << "  " << (i + 1 < 10 ? " " : "") << (i + 1) << " ";
    for (size_t j = 0; j < n; ++j) {
      std::string cell = " .";
      if (!summaries[i] || !summaries[j]) {
        cell = " -";
      } else if (i != j) {
        PairwiseConflict c = Classify(*summaries[i], *summaries[j]);
        if (c.kind != ConflictKind::kNone) {
          cell = std::string(1, c.deadlock_risk ? '!' : ' ') +
                 (c.kind == ConflictKind::kWriteWrite ? "W" : "R");
        }
      }
      out << " " << cell;
    }
    out << "\n";
  }
  return out.str();
}

void ConflictGraph::Admit(uint64_t id,
                          std::shared_ptr<const AccessSummary> summary) {
  if (summary) admitted_[id] = std::move(summary);
}

void ConflictGraph::Remove(uint64_t id) {
  admitted_.erase(id);
  quiesced_.erase(id);
}

std::vector<uint64_t> ConflictGraph::Contending(
    const AccessSummary& candidate) const {
  std::vector<uint64_t> out;
  for (const auto& [id, summary] : admitted_) {
    if (Classify(candidate, *summary).kind != ConflictKind::kNone) {
      out.push_back(id);
    }
  }
  return out;
}

bool ConflictGraph::WouldRiskDeadlock(const AccessSummary& candidate,
                                      std::vector<uint64_t>* against) const {
  bool risk = false;
  for (const auto& [id, summary] : admitted_) {
    if (quiesced_.count(id) != 0) continue;
    if (Classify(candidate, *summary).deadlock_risk) {
      risk = true;
      if (against) against->push_back(id);
    }
  }
  return risk;
}

}  // namespace msql::analysis
