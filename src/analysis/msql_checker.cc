#include "analysis/msql_checker.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "relational/sql/ast.h"
#include "relational/value.h"

namespace msql::analysis {

namespace {

using lang::CompClause;
using lang::LetBinding;
using lang::MsqlQuery;
using lang::UseEntry;
using relational::ColumnRefExpr;
using relational::Expr;
using relational::ExprKind;
using relational::SelectStmt;
using relational::Statement;
using relational::StatementKind;
using relational::TableSchema;

// ---------------------------------------------------------------------------
// Span-aware identifier inventory
// ---------------------------------------------------------------------------

struct Ident {
  SourceSpan span;
  bool optional = true;  // columns: true only if *every* occurrence is '~'
};

struct Inventory {
  std::map<std::string, Ident> tables;   // unqualified FROM/target tables
  std::map<std::string, Ident> columns;  // column names (qualifier ignored)
};

SourceSpan SpanOf(const std::string& name, int line, int column) {
  return SourceSpan::At(line, column, static_cast<int>(name.size()));
}

void NoteTable(const relational::TableRef& ref, Inventory* inv) {
  // Db-qualified references name a concrete database directly; they are
  // resolved by the decomposer, not by multiple-query expansion.
  if (!ref.database.empty()) return;
  auto [it, inserted] =
      inv->tables.emplace(ref.table, Ident{SpanOf(ref.table, ref.line,
                                                  ref.column)});
  (void)it;
  (void)inserted;
}

void NoteColumn(const std::string& name, bool optional, SourceSpan span,
                Inventory* inv) {
  auto [it, inserted] = inv->columns.emplace(name, Ident{span, optional});
  if (!inserted) {
    it->second.optional = it->second.optional && optional;
    if (!it->second.span.known() && span.known()) it->second.span = span;
  }
}

void CollectExpr(const Expr& e, Inventory* inv);

void CollectSelect(const SelectStmt& stmt, Inventory* inv) {
  for (const auto& ref : stmt.from) NoteTable(ref, inv);
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr) CollectExpr(*item.expr, inv);
  }
  if (stmt.where != nullptr) CollectExpr(*stmt.where, inv);
  for (const auto& g : stmt.group_by) CollectExpr(*g, inv);
  if (stmt.having != nullptr) CollectExpr(*stmt.having, inv);
  for (const auto& ob : stmt.order_by) CollectExpr(*ob.expr, inv);
}

void CollectExpr(const Expr& e, Inventory* inv) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      NoteColumn(ref.name(), ref.optional_column(),
                 SpanOf(ref.name(), ref.line(), ref.column()), inv);
      return;
    }
    case ExprKind::kUnary:
      CollectExpr(static_cast<const relational::UnaryExpr&>(e).operand(),
                  inv);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const relational::BinaryExpr&>(e);
      CollectExpr(b.left(), inv);
      CollectExpr(b.right(), inv);
      return;
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const relational::FunctionCallExpr&>(e);
      for (const auto& a : f.args()) CollectExpr(*a, inv);
      return;
    }
    case ExprKind::kScalarSubquery:
      CollectSelect(
          static_cast<const relational::ScalarSubqueryExpr&>(e).select(),
          inv);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const relational::InListExpr&>(e);
      CollectExpr(in.operand(), inv);
      for (const auto& item : in.list()) CollectExpr(*item, inv);
      return;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const relational::BetweenExpr&>(e);
      CollectExpr(bt.operand(), inv);
      CollectExpr(bt.lo(), inv);
      CollectExpr(bt.hi(), inv);
      return;
    }
  }
}

/// Mirrors lang::CollectIdentifiers but keeps source spans. Returns false
/// for statement kinds the expander replicates verbatim (DDL), which get
/// no identifier checks.
bool CollectStatement(const Statement& stmt, Inventory* inv) {
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      CollectSelect(static_cast<const SelectStmt&>(stmt), inv);
      return true;
    case StatementKind::kInsert: {
      const auto& ins = static_cast<const relational::InsertStmt&>(stmt);
      NoteTable(ins.table, inv);
      for (const auto& col : ins.columns) {
        NoteColumn(col, false, SourceSpan{}, inv);
      }
      for (const auto& row : ins.values_rows) {
        for (const auto& e : row) CollectExpr(*e, inv);
      }
      if (ins.select_source != nullptr) {
        CollectSelect(*ins.select_source, inv);
      }
      return true;
    }
    case StatementKind::kUpdate: {
      const auto& upd = static_cast<const relational::UpdateStmt&>(stmt);
      NoteTable(upd.table, inv);
      for (const auto& a : upd.assignments) {
        NoteColumn(a.column, false, SourceSpan{}, inv);
        CollectExpr(*a.value, inv);
      }
      if (upd.where != nullptr) CollectExpr(*upd.where, inv);
      return true;
    }
    case StatementKind::kDelete: {
      const auto& del = static_cast<const relational::DeleteStmt&>(stmt);
      NoteTable(del.table, inv);
      if (del.where != nullptr) CollectExpr(*del.where, inv);
      return true;
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

class Checker {
 public:
  Checker(const mdbs::GlobalDataDictionary& gdd,
          const mdbs::AuxiliaryDirectory& ad, bool check_vital_set)
      : gdd_(gdd), ad_(ad), check_vital_set_(check_vital_set) {}

  void Check(const MsqlQuery& query, DiagnosticList* out);

 private:
  /// Databases of the scope that exist in the GDD (skipping unknown ones
  /// keeps a single MS101 from cascading into MS102/MS103 noise).
  std::vector<const UseEntry*> known_;

  void CheckScope(const MsqlQuery& query, DiagnosticList* out);
  void CheckLet(const MsqlQuery& query, DiagnosticList* out);
  void CheckBody(const MsqlQuery& query, DiagnosticList* out);
  void CheckComps(const MsqlQuery& query, DiagnosticList* out);
  void CheckVitalSet(const MsqlQuery& query, DiagnosticList* out);

  bool LetBoundColumn(const MsqlQuery& query, const std::string& name) const;
  const LetBinding* FindBinding(const MsqlQuery& query,
                                const std::string& name,
                                size_t component) const;
  bool Supports2pcFor(const UseEntry& entry, StatementKind kind) const;
  bool HasComp(const MsqlQuery& query, const UseEntry& entry) const;

  const mdbs::GlobalDataDictionary& gdd_;
  const mdbs::AuxiliaryDirectory& ad_;
  bool check_vital_set_;
};

void Checker::Check(const MsqlQuery& query, DiagnosticList* out) {
  known_.clear();
  CheckScope(query, out);
  CheckLet(query, out);
  if (!known_.empty()) CheckBody(query, out);
  CheckComps(query, out);
  if (check_vital_set_) CheckVitalSet(query, out);
}

void Checker::CheckScope(const MsqlQuery& query, DiagnosticList* out) {
  std::set<std::string> seen;
  for (const auto& entry : query.use.entries) {
    SourceSpan span = SpanOf(entry.database, entry.line, entry.column);
    if (!seen.insert(entry.EffectiveName()).second) {
      out->Add(diag::kDuplicateEffectiveName, Severity::kError, span,
               "'" + entry.EffectiveName() +
                   "' appears twice in the USE scope",
               "give the second occurrence a distinct alias: USE (" +
                   entry.database + " <alias>)");
    }
    if (!gdd_.HasDatabase(entry.database)) {
      out->Add(diag::kUnknownDatabase, Severity::kError, span,
               "database '" + entry.database +
                   "' is not in the GDD (IMPORT it first)");
      continue;
    }
    const mdbs::GddDatabase* db = gdd_.GetDatabase(entry.database).value();
    if (!ad_.HasService(db->service)) {
      out->Add(diag::kServiceNotIncorporated, Severity::kError, span,
               "database '" + entry.database + "' is served by '" +
                   db->service +
                   "', which is not incorporated in the AD",
               "INCORPORATE SERVICE " + db->service + " first");
      continue;
    }
    known_.push_back(&entry);
  }
}

void Checker::CheckLet(const MsqlQuery& query, DiagnosticList* out) {
  if (!query.let.has_value()) return;
  const size_t scope_size = query.use.entries.size();
  for (const auto& binding : query.let->bindings) {
    SourceSpan span =
        binding.variable_path.empty()
            ? SourceSpan::At(binding.line, binding.column)
            : SpanOf(binding.variable_path[0], binding.line, binding.column);
    if (binding.targets.size() != scope_size) {
      out->Add(diag::kLetArityMismatch, Severity::kError, span,
               "LET " + Join(binding.variable_path, ".") + " provides " +
                   std::to_string(binding.targets.size()) +
                   " targets for " + std::to_string(scope_size) +
                   " scope databases",
               "LET targets bind positionally: give one per USE entry");
      continue;
    }
    // Per-database resolution of the positional targets. The table
    // component missing makes the database non-pertinent (a warning per
    // database, an error when that happens everywhere: the variable
    // dangles).
    size_t resolved_tables = 0;
    size_t table_sites = 0;
    std::vector<size_t> resolved_cols(binding.variable_path.size(), 0);
    std::vector<size_t> col_sites(binding.variable_path.size(), 0);
    // Distinct local types seen per column component (for MS104).
    std::vector<std::map<relational::Type, std::string>> types(
        binding.variable_path.size());
    for (size_t i = 0; i < query.use.entries.size(); ++i) {
      const UseEntry& entry = query.use.entries[i];
      if (!gdd_.HasDatabase(entry.database)) continue;
      const auto& target = binding.targets[i];
      const std::string& table = target[0];
      ++table_sites;
      if (!gdd_.HasTable(entry.database, table)) {
        out->Add(diag::kLetTargetMissing, Severity::kWarning,
                 SpanOf(binding.variable_path[0], binding.line,
                        binding.column),
                 "LET target table '" + table + "' does not exist in '" +
                     entry.database +
                     "'; the database is non-pertinent for this binding");
        continue;
      }
      ++resolved_tables;
      const TableSchema* schema =
          gdd_.GetTable(entry.database, table).value();
      for (size_t c = 1; c < binding.variable_path.size(); ++c) {
        const std::string& column = target[c];
        ++col_sites[c];
        std::optional<size_t> idx = schema->FindColumn(column);
        if (!idx.has_value()) {
          out->Add(diag::kLetTargetMissing, Severity::kWarning, span,
                   "LET target column '" + column + "' does not exist in '" +
                       entry.database + "." + table + "'");
          continue;
        }
        ++resolved_cols[c];
        types[c].emplace(schema->columns()[*idx].type,
                         entry.database + "." + table + "." + column);
      }
    }
    if (table_sites > 0 && resolved_tables == 0) {
      out->Add(diag::kUnknownTable, Severity::kError, span,
               "LET variable '" + binding.variable_path[0] +
                   "' resolves in no scope database: every target table "
                   "is missing");
    }
    for (size_t c = 1; c < binding.variable_path.size(); ++c) {
      if (col_sites[c] > 0 && resolved_tables > 0 && resolved_cols[c] == 0) {
        out->Add(diag::kUnknownColumn, Severity::kError, span,
                 "LET variable '" + binding.variable_path[c] +
                     "' resolves in no scope database: every target "
                     "column is missing");
      }
      if (types[c].size() > 1) {
        std::string detail;
        for (const auto& [type, site] : types[c]) {
          if (!detail.empty()) detail += ", ";
          detail += site + ":" + std::string(relational::TypeName(type));
        }
        out->Add(diag::kLetTypeMismatch, Severity::kWarning, span,
                 "LET variable '" + binding.variable_path[c] +
                     "' binds columns of incompatible types (" + detail +
                     ")",
                 "comparisons and arithmetic over this variable may "
                 "behave differently per database");
      }
    }
  }
}

bool Checker::LetBoundColumn(const MsqlQuery& query,
                             const std::string& name) const {
  if (!query.let.has_value()) return false;
  for (const auto& binding : query.let->bindings) {
    for (size_t c = 1; c < binding.variable_path.size(); ++c) {
      if (binding.variable_path[c] == name) return true;
    }
  }
  return false;
}

const LetBinding* Checker::FindBinding(const MsqlQuery& query,
                                       const std::string& name,
                                       size_t component) const {
  if (!query.let.has_value()) return nullptr;
  for (const auto& binding : query.let->bindings) {
    if (component < binding.variable_path.size() &&
        binding.variable_path[component] == name) {
      return &binding;
    }
  }
  return nullptr;
}

void Checker::CheckBody(const MsqlQuery& query, DiagnosticList* out) {
  Inventory inv;
  if (!CollectStatement(*query.body, &inv)) return;  // DDL: no expansion

  // Resolve body tables per known database → the candidate local tables
  // columns are checked against.
  std::map<std::string, std::vector<const TableSchema*>> local_tables;
  for (const auto& [name, ident] : inv.tables) {
    size_t hits = 0;
    for (const UseEntry* entry : known_) {
      const std::string& db = entry->database;
      std::vector<std::string> resolved;
      const LetBinding* binding = FindBinding(query, name, 0);
      if (binding != nullptr) {
        // Positional target for this entry (arity already checked).
        size_t index =
            static_cast<size_t>(entry - query.use.entries.data());
        if (index < binding->targets.size()) {
          const std::string& t = binding->targets[index][0];
          if (gdd_.HasTable(db, t)) resolved.push_back(t);
        }
      } else if (HasWildcard(name)) {
        auto matches = gdd_.MatchTables(db, name);
        if (matches.ok()) resolved = std::move(matches).value();
      } else if (gdd_.HasTable(db, name)) {
        resolved.push_back(name);
      }
      if (!resolved.empty()) ++hits;
      for (const auto& t : resolved) {
        local_tables[entry->EffectiveName()].push_back(
            gdd_.GetTable(db, t).value());
      }
    }
    if (hits > 0) continue;
    if (FindBinding(query, name, 0) != nullptr) continue;  // CheckLet's job
    if (HasWildcard(name)) {
      out->Add(diag::kEmptyWildcard, Severity::kError, ident.span,
               "implicit variable '" + name +
                   "' matches no table in any scope database");
    } else {
      out->Add(diag::kUnknownTable, Severity::kError, ident.span,
               "table '" + name + "' resolves in no scope database");
    }
  }

  for (const auto& [name, ident] : inv.columns) {
    if (LetBoundColumn(query, name)) continue;  // reported by CheckLet
    // Databases (by effective name) where the column resolves against
    // some candidate table.
    size_t present = 0;
    size_t candidates = 0;
    for (const UseEntry* entry : known_) {
      auto it = local_tables.find(entry->EffectiveName());
      if (it == local_tables.end()) continue;
      ++candidates;
      bool found = false;
      for (const TableSchema* schema : it->second) {
        if (HasWildcard(name) ? !schema->MatchColumns(name).empty()
                              : schema->HasColumn(name)) {
          found = true;
          break;
        }
      }
      if (found) ++present;
    }
    if (candidates == 0) continue;  // table errors already reported
    if (present == 0) {
      if (HasWildcard(name)) {
        out->Add(diag::kEmptyWildcard, Severity::kError, ident.span,
                 "implicit variable '" + name +
                     "' matches no column in any scope database");
      } else if (ident.optional) {
        out->Add(diag::kOptionalNowhere, Severity::kWarning, ident.span,
                 "optional column '~" + name +
                     "' exists in no scope database and is always "
                     "dropped",
                 "remove it, or check the spelling");
      } else {
        out->Add(diag::kUnknownColumn, Severity::kError, ident.span,
                 "column '" + name + "' resolves in no scope database");
      }
    } else if (ident.optional && present == candidates && candidates > 1) {
      out->Add(diag::kOptionalEverywhere, Severity::kWarning, ident.span,
               "optional column '~" + name +
                   "' exists in every scope database; the '~' marker is "
                   "redundant");
    }
  }
}

void Checker::CheckComps(const MsqlQuery& query, DiagnosticList* out) {
  for (const auto& comp : query.comps) {
    SourceSpan span = SpanOf(comp.database, comp.line, comp.column);
    const UseEntry* match = nullptr;
    for (const auto& entry : query.use.entries) {
      if (EqualsIgnoreCase(entry.EffectiveName(), comp.database) ||
          EqualsIgnoreCase(entry.database, comp.database)) {
        match = &entry;
        break;
      }
    }
    if (match == nullptr) {
      out->Add(diag::kCompUnknownDatabase, Severity::kError, span,
               "COMP clause names '" + comp.database +
                   "', which is not in the USE scope");
      continue;
    }
    if (!match->vital) {
      out->Add(diag::kCompOnNonVital, Severity::kWarning, span,
               "COMP clause names NON-VITAL database '" + comp.database +
                   "'; its failure never triggers global rollback, so "
                   "the compensation can only run unnecessarily",
               "mark the database VITAL or drop the COMP clause");
    }
  }
}

bool Checker::Supports2pcFor(const UseEntry& entry,
                             StatementKind kind) const {
  auto db = gdd_.GetDatabase(entry.database);
  if (!db.ok()) return true;  // unknown database reported elsewhere
  auto service = ad_.GetService((*db)->service);
  if (!service.ok()) return true;
  bool verb_autocommits = false;
  switch (kind) {
    case StatementKind::kCreateTable:
      verb_autocommits = (*service)->ddl_modes.create_autocommits;
      break;
    case StatementKind::kInsert:
      verb_autocommits = (*service)->ddl_modes.insert_autocommits;
      break;
    case StatementKind::kDropTable:
      verb_autocommits = (*service)->ddl_modes.drop_autocommits;
      break;
    default:
      break;
  }
  return (*service)->SupportsTwoPhaseCommit() && !verb_autocommits;
}

bool Checker::HasComp(const MsqlQuery& query, const UseEntry& entry) const {
  for (const auto& comp : query.comps) {
    if (EqualsIgnoreCase(entry.EffectiveName(), comp.database) ||
        EqualsIgnoreCase(entry.database, comp.database)) {
      return true;
    }
  }
  return false;
}

void Checker::CheckVitalSet(const MsqlQuery& query, DiagnosticList* out) {
  if (query.body->kind() == StatementKind::kSelect) return;  // retrieval
  // Mirrors Translator::Resolve: a VITAL database that neither supports
  // 2PC for this verb nor has a COMP clause must run as the last
  // resource, and only one task can run last (DESIGN.md §5).
  std::vector<const UseEntry*> last_resource;
  for (const UseEntry* entry : known_) {
    if (!entry->vital) continue;
    if (Supports2pcFor(*entry, query.body->kind())) continue;
    if (HasComp(query, *entry)) continue;
    last_resource.push_back(entry);
  }
  if (last_resource.size() < 2) return;
  std::string names;
  for (const UseEntry* entry : last_resource) {
    if (!names.empty()) names += ", ";
    names += entry->EffectiveName();
  }
  const UseEntry* second = last_resource[1];
  out->Add(diag::kVitalSetUnenforceable, Severity::kError,
           SpanOf(second->database, second->line, second->column),
           "vital set is not enforceable: databases {" + names +
               "} neither support 2PC nor provide COMP clauses; failure "
               "atomicity with respect to the vital set cannot be "
               "guaranteed",
           "add COMP clauses, or mark all but one of them NON-VITAL");
}

}  // namespace

DiagnosticList CheckQuery(const MsqlQuery& query,
                          const mdbs::GlobalDataDictionary& gdd,
                          const mdbs::AuxiliaryDirectory& ad) {
  DiagnosticList out;
  Checker(gdd, ad, /*check_vital_set=*/true).Check(query, &out);
  return out;
}

DiagnosticList CheckMultiTransaction(const lang::MultiTransaction& mt,
                                     const mdbs::GlobalDataDictionary& gdd,
                                     const mdbs::AuxiliaryDirectory& ad) {
  DiagnosticList out;
  for (const auto& member : mt.queries) {
    if (member.use.entries.empty()) continue;  // unresolved USE CURRENT
    Checker(gdd, ad, /*check_vital_set=*/false).Check(member, &out);
  }
  return out;
}

}  // namespace msql::analysis
