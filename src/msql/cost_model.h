#ifndef MSQL_MSQL_COST_MODEL_H_
#define MSQL_MSQL_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace msql::lang {

/// Per-link transfer parameters, mirrored from the netsim topology as
/// plain data so the decomposer can cost plans without depending on a
/// live Environment (tests hand-craft contexts).
struct LinkCost {
  int64_t latency_micros = 1000;
  int64_t micros_per_kb = 100;
};

/// Per-column slice of a fresh ANALYZE snapshot.
struct ColumnCostStats {
  int64_t distinct_values = 0;
  double avg_width_bytes = 0.0;
};

/// Per-table slice of a fresh ANALYZE snapshot. Only *fresh* snapshots
/// belong in a CostContext — the builder filters out stale ones (taken
/// before a re-IMPORT), so a missing entry here means "fall back to the
/// paper heuristics".
struct TableCostStats {
  int64_t row_count = 0;
  double avg_row_bytes = 0.0;
  std::map<std::string, ColumnCostStats> columns;
};

/// Everything the cost-based decomposer consults, snapshotted from the
/// GDD statistics catalog, the netsim topology and the obs health
/// registry. Transfers in this system always transit the MDBS
/// coordinator site (a task result returns there in the EXEC response
/// before a TRANSFER pushes it to the target service), so shipping
/// between two databases is modelled as two hops through `mdbs_site`.
struct CostContext {
  /// Site of the MDBS federation coordinator.
  std::string mdbs_site;
  /// database → site name.
  std::map<std::string, std::string> site_of_db;
  /// database → observed request latency (micros, median) from the
  /// health registry; absent when the service has never been called.
  std::map<std::string, double> observed_latency_micros;
  /// (from site, to site) → link parameters; `default_link` otherwise.
  std::map<std::pair<std::string, std::string>, LinkCost> links;
  LinkCost default_link;
  /// (database, table) → fresh statistics.
  std::map<std::pair<std::string, std::string>, TableCostStats> stats;

  /// Fresh stats for `database.table`, or nullptr (→ heuristics).
  const TableCostStats* FindStats(const std::string& database,
                                  const std::string& table) const;

  const LinkCost& LinkBetween(const std::string& from_site,
                              const std::string& to_site) const;

  /// Estimated micros for one hop carrying `bytes` between a database's
  /// site and the MDBS site. The effective latency is the larger of the
  /// topology's link latency and the health registry's observed median,
  /// so a degraded site gets costed as degraded.
  double HopMicros(const std::string& database, double bytes) const;

  /// Estimated micros to ship `bytes` from `from_db` to `to_db` via the
  /// MDBS site (two hops; same formula when the databases coincide —
  /// the partial result still makes the round trip through the MDBS).
  double ShipMicros(const std::string& from_db, const std::string& to_db,
                    double bytes) const;
};

}  // namespace msql::lang

#endif  // MSQL_MSQL_COST_MODEL_H_
