#include "msql/parser.h"

#include "analysis/diagnostics.h"
#include "common/string_util.h"
#include "relational/sql/lexer.h"

namespace msql::lang {

using relational::LexerOptions;
using relational::StatementPtr;
using relational::Token;
using relational::TokenCursor;
using relational::TokenType;
using relational::Tokenize;

Result<std::vector<MsqlInput>> MsqlParser::ParseScript(
    std::string_view text) {
  LexerOptions lex_options;
  lex_options.percent_in_identifiers = true;
  MSQL_ASSIGN_OR_RETURN(auto tokens, Tokenize(text, lex_options));
  TokenCursor cursor(std::move(tokens));
  MsqlParser parser(&cursor);
  std::vector<MsqlInput> out;
  while (cursor.Match(TokenType::kSemicolon)) {
  }
  while (!cursor.AtEnd()) {
    MSQL_ASSIGN_OR_RETURN(MsqlInput input, parser.ParseInput());
    out.push_back(std::move(input));
    while (cursor.Match(TokenType::kSemicolon)) {
    }
  }
  return out;
}

Result<MsqlInput> MsqlParser::ParseOne(std::string_view text) {
  MSQL_ASSIGN_OR_RETURN(auto items, ParseScript(text));
  if (items.size() != 1) {
    return Status::ParseError("expected exactly one MSQL input, got " +
                              std::to_string(items.size()));
  }
  return std::move(items[0]);
}

bool MsqlParser::AtBodyStart() const {
  const Token& tok = cursor_->Peek();
  return tok.IsKeyword("select") || tok.IsKeyword("insert") ||
         tok.IsKeyword("update") || tok.IsKeyword("delete") ||
         tok.IsKeyword("create") || tok.IsKeyword("drop");
}

Result<MsqlInput> MsqlParser::ParseInput() {
  const Token& tok = cursor_->Peek();
  MsqlInput input;
  if (tok.IsKeyword("incorporate")) {
    input.kind = MsqlInput::Kind::kIncorporate;
    MSQL_ASSIGN_OR_RETURN(input.incorporate, ParseIncorporate());
    return input;
  }
  if (tok.IsKeyword("import")) {
    input.kind = MsqlInput::Kind::kImport;
    MSQL_ASSIGN_OR_RETURN(input.import, ParseImport());
    return input;
  }
  if (tok.IsKeyword("analyze")) {
    input.kind = MsqlInput::Kind::kAnalyze;
    MSQL_ASSIGN_OR_RETURN(input.analyze, ParseAnalyze());
    return input;
  }
  if (tok.IsKeyword("begin") &&
      cursor_->Peek(1).IsKeyword("multitransaction")) {
    input.kind = MsqlInput::Kind::kMultiTransaction;
    MSQL_ASSIGN_OR_RETURN(input.multitransaction, ParseMultiTransaction());
    return input;
  }
  // Multidatabase-level DDL forms shadow the statement verbs CREATE and
  // DROP; dispatch on the second word.
  if (tok.IsKeyword("create") || tok.IsKeyword("drop")) {
    bool create = tok.IsKeyword("create");
    const relational::Token& next = cursor_->Peek(1);
    if (next.IsKeyword("multidatabase")) {
      if (create) {
        input.kind = MsqlInput::Kind::kCreateMultidatabase;
        MSQL_ASSIGN_OR_RETURN(input.create_multidatabase,
                              ParseCreateMultidatabase());
      } else {
        cursor_->Get();
        cursor_->Get();
        input.kind = MsqlInput::Kind::kDropMultidatabase;
        DropMultidatabaseStmt stmt;
        MSQL_ASSIGN_OR_RETURN(
            stmt.name, cursor_->ExpectIdentifier("multidatabase name"));
        input.drop_multidatabase = std::move(stmt);
      }
      return input;
    }
    if (next.IsKeyword("multiview")) {
      if (create) {
        input.kind = MsqlInput::Kind::kCreateView;
        MSQL_ASSIGN_OR_RETURN(input.create_view, ParseCreateView());
      } else {
        cursor_->Get();
        cursor_->Get();
        input.kind = MsqlInput::Kind::kDropView;
        DropViewStmt stmt;
        MSQL_ASSIGN_OR_RETURN(stmt.name,
                              cursor_->ExpectIdentifier("view name"));
        input.drop_view = std::move(stmt);
      }
      return input;
    }
    if (next.IsKeyword("trigger")) {
      if (create) {
        input.kind = MsqlInput::Kind::kCreateTrigger;
        MSQL_ASSIGN_OR_RETURN(input.create_trigger, ParseCreateTrigger());
      } else {
        cursor_->Get();
        cursor_->Get();
        input.kind = MsqlInput::Kind::kDropTrigger;
        DropTriggerStmt stmt;
        MSQL_ASSIGN_OR_RETURN(stmt.name,
                              cursor_->ExpectIdentifier("trigger name"));
        input.drop_trigger = std::move(stmt);
      }
      return input;
    }
  }
  if (tok.IsKeyword("use") || AtBodyStart() || tok.IsKeyword("let")) {
    input.kind = MsqlInput::Kind::kQuery;
    MSQL_ASSIGN_OR_RETURN(input.query, ParseQuery());
    return input;
  }
  return Status::ParseError("unrecognized MSQL input starting with '" +
                            tok.text + "' at " + tok.Where());
}

Result<MsqlQuery> MsqlParser::ParseQuery() {
  MsqlQuery query;
  if (cursor_->Peek().IsKeyword("use")) {
    MSQL_ASSIGN_OR_RETURN(query.use, ParseUse());
  } else {
    query.use.current = true;  // inherit the session's current scope
  }
  if (cursor_->Peek().IsKeyword("let")) {
    MSQL_ASSIGN_OR_RETURN(query.let, ParseLet());
  }
  MSQL_ASSIGN_OR_RETURN(query.body, ParseBody());
  while (cursor_->Peek().IsKeyword("comp")) {
    cursor_->Get();
    const Token& db_tok = cursor_->Peek();
    int line = db_tok.line, column = db_tok.column;
    MSQL_ASSIGN_OR_RETURN(std::string db,
                          cursor_->ExpectIdentifier("database name"));
    MSQL_ASSIGN_OR_RETURN(StatementPtr action, ParseBody());
    CompClause comp(std::move(db), std::move(action));
    comp.line = line;
    comp.column = column;
    query.comps.push_back(std::move(comp));
  }
  return query;
}

Result<UseClause> MsqlParser::ParseUse() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("use"));
  UseClause use;
  use.current = cursor_->MatchKeyword("current");
  // Entries end where the LET clause or query body begins.
  while (!cursor_->AtEnd() && !cursor_->Peek().IsKeyword("let") &&
         !AtBodyStart() && cursor_->Peek().type != TokenType::kSemicolon) {
    UseEntry entry;
    if (cursor_->Match(TokenType::kLParen)) {
      const Token& db_tok = cursor_->Peek();
      entry.line = db_tok.line;
      entry.column = db_tok.column;
      MSQL_ASSIGN_OR_RETURN(entry.database,
                            cursor_->ExpectIdentifier("database name"));
      MSQL_ASSIGN_OR_RETURN(entry.alias,
                            cursor_->ExpectIdentifier("database alias"));
      MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
    } else {
      const Token& db_tok = cursor_->Peek();
      entry.line = db_tok.line;
      entry.column = db_tok.column;
      MSQL_ASSIGN_OR_RETURN(entry.database,
                            cursor_->ExpectIdentifier("database name"));
    }
    entry.vital = cursor_->MatchKeyword("vital");
    // A later entry with the same effective name would silently shadow
    // the earlier one positionally (LET targets bind by index), so a
    // duplicate is always a bug in the program.
    for (const UseEntry& prior : use.entries) {
      if (EqualsIgnoreCase(prior.EffectiveName(), entry.EffectiveName())) {
        analysis::Diagnostic d;
        d.code = std::string(analysis::diag::kDuplicateEffectiveName);
        d.severity = analysis::Severity::kError;
        d.span = analysis::SourceSpan::At(
            entry.line, entry.column,
            static_cast<int>(entry.database.size()));
        d.message = "'" + entry.EffectiveName() +
                    "' appears twice in the USE scope";
        d.fix_hint = "give the second occurrence a distinct alias: USE (" +
                     entry.database + " <alias>)";
        return Status::InvalidArgument(d.Render());
      }
    }
    use.entries.push_back(std::move(entry));
  }
  if (!use.current && use.entries.empty()) {
    return Status::ParseError("USE clause names no databases at " +
                              cursor_->Peek().Where());
  }
  return use;
}

Result<LetClause> MsqlParser::ParseLet() {
  LetClause let;
  while (cursor_->Peek().IsKeyword("let")) {
    MSQL_ASSIGN_OR_RETURN(LetBinding binding, ParseLetBinding());
    let.bindings.push_back(std::move(binding));
  }
  return let;
}

Result<LetBinding> MsqlParser::ParseLetBinding() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("let"));
  LetBinding binding;
  const Token& var_tok = cursor_->Peek();
  binding.line = var_tok.line;
  binding.column = var_tok.column;
  MSQL_ASSIGN_OR_RETURN(binding.variable_path, ParseDottedPath());
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("be"));
  // Targets: dotted paths until LET / body / COMP / end.
  while (cursor_->Peek().type == TokenType::kIdentifier &&
         !cursor_->Peek().IsKeyword("let") && !AtBodyStart() &&
         !cursor_->Peek().IsKeyword("comp")) {
    MSQL_ASSIGN_OR_RETURN(auto target, ParseDottedPath());
    binding.targets.push_back(std::move(target));
  }
  if (binding.targets.empty()) {
    return Status::ParseError("LET binding for " +
                              Join(binding.variable_path, ".") +
                              " has no BE targets");
  }
  for (const auto& target : binding.targets) {
    if (target.size() != binding.variable_path.size()) {
      return Status::ParseError(
          "LET target " + Join(target, ".") + " has " +
          std::to_string(target.size()) + " components but the variable " +
          Join(binding.variable_path, ".") + " has " +
          std::to_string(binding.variable_path.size()));
    }
  }
  return binding;
}

Result<std::vector<std::string>> MsqlParser::ParseDottedPath() {
  std::vector<std::string> path;
  MSQL_ASSIGN_OR_RETURN(std::string first,
                        cursor_->ExpectIdentifier("name"));
  path.push_back(std::move(first));
  while (cursor_->Match(TokenType::kDot)) {
    MSQL_ASSIGN_OR_RETURN(std::string next,
                          cursor_->ExpectIdentifier("name"));
    path.push_back(std::move(next));
  }
  return path;
}

Result<StatementPtr> MsqlParser::ParseBody() {
  return sql_parser_.ParseStatement();
}

Result<IncorporateStmt> MsqlParser::ParseIncorporate() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("incorporate"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("service"));
  IncorporateStmt stmt;
  MSQL_ASSIGN_OR_RETURN(stmt.service,
                        cursor_->ExpectIdentifier("service name"));
  if (cursor_->MatchKeyword("site")) {
    MSQL_ASSIGN_OR_RETURN(stmt.site, cursor_->ExpectIdentifier("site name"));
  }
  auto parse_commit_word = [this](bool* autocommits) -> Status {
    if (cursor_->MatchKeyword("commit")) {
      *autocommits = true;
      return Status::OK();
    }
    if (cursor_->MatchKeyword("nocommit")) {
      *autocommits = false;
      return Status::OK();
    }
    return Status::ParseError("expected COMMIT or NOCOMMIT at " +
                              cursor_->Peek().Where());
  };
  // The clauses may come in any order; each at most once.
  bool saw_connect = false, saw_commit = false;
  while (true) {
    if (cursor_->MatchKeyword("connectmode")) {
      if (cursor_->MatchKeyword("connect")) {
        stmt.connect_mode = true;
      } else if (cursor_->MatchKeyword("noconnect")) {
        stmt.connect_mode = false;
      } else {
        return Status::ParseError("expected CONNECT or NOCONNECT at " +
                                  cursor_->Peek().Where());
      }
      saw_connect = true;
    } else if (cursor_->MatchKeyword("commitmode")) {
      MSQL_RETURN_IF_ERROR(parse_commit_word(&stmt.autocommit_only));
      saw_commit = true;
    } else if (cursor_->MatchKeyword("create")) {
      MSQL_RETURN_IF_ERROR(parse_commit_word(&stmt.create_autocommits));
    } else if (cursor_->MatchKeyword("insert")) {
      MSQL_RETURN_IF_ERROR(parse_commit_word(&stmt.insert_autocommits));
    } else if (cursor_->MatchKeyword("drop")) {
      MSQL_RETURN_IF_ERROR(parse_commit_word(&stmt.drop_autocommits));
    } else {
      break;
    }
  }
  if (!saw_connect || !saw_commit) {
    return Status::ParseError(
        "INCORPORATE requires CONNECTMODE and COMMITMODE clauses");
  }
  return stmt;
}

Result<ImportStmt> MsqlParser::ParseImport() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("import"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("database"));
  ImportStmt stmt;
  MSQL_ASSIGN_OR_RETURN(stmt.database,
                        cursor_->ExpectIdentifier("database name"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("from"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("service"));
  MSQL_ASSIGN_OR_RETURN(stmt.service,
                        cursor_->ExpectIdentifier("service name"));
  if (cursor_->MatchKeyword("table")) {
    MSQL_ASSIGN_OR_RETURN(std::string table,
                          cursor_->ExpectIdentifier("table name"));
    stmt.table = std::move(table);
    if (cursor_->MatchKeyword("column")) {
      while (cursor_->Peek().type == TokenType::kIdentifier &&
             !cursor_->Peek().IsKeyword("view")) {
        MSQL_ASSIGN_OR_RETURN(std::string col,
                              cursor_->ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(col));
      }
    }
  } else if (cursor_->MatchKeyword("view")) {
    MSQL_ASSIGN_OR_RETURN(std::string view,
                          cursor_->ExpectIdentifier("view name"));
    stmt.view = std::move(view);
    if (cursor_->MatchKeyword("column")) {
      while (cursor_->Peek().type == TokenType::kIdentifier) {
        MSQL_ASSIGN_OR_RETURN(std::string col,
                              cursor_->ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(col));
      }
    }
  }
  return stmt;
}

Result<AnalyzeStmt> MsqlParser::ParseAnalyze() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("analyze"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("database"));
  AnalyzeStmt stmt;
  MSQL_ASSIGN_OR_RETURN(stmt.database,
                        cursor_->ExpectIdentifier("database name"));
  if (cursor_->MatchKeyword("table")) {
    MSQL_ASSIGN_OR_RETURN(std::string table,
                          cursor_->ExpectIdentifier("table name"));
    stmt.table = std::move(table);
  }
  return stmt;
}

Result<CreateMultidatabaseStmt> MsqlParser::ParseCreateMultidatabase() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("create"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("multidatabase"));
  CreateMultidatabaseStmt stmt;
  MSQL_ASSIGN_OR_RETURN(stmt.name,
                        cursor_->ExpectIdentifier("multidatabase name"));
  MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kLParen));
  while (cursor_->Peek().type == TokenType::kIdentifier) {
    MSQL_ASSIGN_OR_RETURN(std::string member,
                          cursor_->ExpectIdentifier("database name"));
    stmt.members.push_back(std::move(member));
    cursor_->Match(TokenType::kComma);  // commas are optional
  }
  MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
  if (stmt.members.empty()) {
    return Status::ParseError("CREATE MULTIDATABASE lists no members");
  }
  return stmt;
}

Result<CreateViewStmt> MsqlParser::ParseCreateView() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("create"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("multiview"));
  CreateViewStmt stmt;
  MSQL_ASSIGN_OR_RETURN(stmt.name, cursor_->ExpectIdentifier("view name"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("as"));
  MSQL_ASSIGN_OR_RETURN(MsqlQuery definition, ParseQuery());
  if (definition.body->kind() != relational::StatementKind::kSelect) {
    return Status::ParseError(
        "a multidatabase view must be defined by a SELECT query");
  }
  stmt.definition = std::make_shared<MsqlQuery>(std::move(definition));
  return stmt;
}

Result<CreateTriggerStmt> MsqlParser::ParseCreateTrigger() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("create"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("trigger"));
  CreateTriggerStmt stmt;
  MSQL_ASSIGN_OR_RETURN(stmt.name,
                        cursor_->ExpectIdentifier("trigger name"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("on"));
  MSQL_ASSIGN_OR_RETURN(stmt.database,
                        cursor_->ExpectIdentifier("database name"));
  MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kDot));
  MSQL_ASSIGN_OR_RETURN(stmt.table, cursor_->ExpectIdentifier("table name"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("after"));
  if (cursor_->MatchKeyword("update")) {
    stmt.event = TriggerEvent::kUpdate;
  } else if (cursor_->MatchKeyword("insert")) {
    stmt.event = TriggerEvent::kInsert;
  } else if (cursor_->MatchKeyword("delete")) {
    stmt.event = TriggerEvent::kDelete;
  } else {
    return Status::ParseError(
        "expected UPDATE, INSERT or DELETE after AFTER at " +
        cursor_->Peek().Where());
  }
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("do"));
  MSQL_ASSIGN_OR_RETURN(MsqlQuery action, ParseQuery());
  if (action.use.current) {
    return Status::ParseError(
        "a trigger action must carry its own explicit USE scope");
  }
  stmt.action = std::make_shared<MsqlQuery>(std::move(action));
  return stmt;
}

Result<MultiTransaction> MsqlParser::ParseMultiTransaction() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("begin"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("multitransaction"));
  MultiTransaction mt;
  while (!cursor_->Peek().IsKeyword("commit")) {
    if (cursor_->AtEnd()) {
      return Status::ParseError(
          "MULTITRANSACTION is missing its COMMIT clause");
    }
    MSQL_ASSIGN_OR_RETURN(MsqlQuery query, ParseQuery());
    mt.queries.push_back(std::move(query));
    while (cursor_->Match(TokenType::kSemicolon)) {
    }
  }
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("commit"));
  // Acceptable states: maximal AND-chains of database names/aliases.
  while (cursor_->Peek().type == TokenType::kIdentifier &&
         !cursor_->Peek().IsKeyword("end")) {
    AcceptableState state;
    MSQL_ASSIGN_OR_RETURN(std::string db,
                          cursor_->ExpectIdentifier("database name"));
    state.databases.push_back(std::move(db));
    while (cursor_->MatchKeyword("and")) {
      MSQL_ASSIGN_OR_RETURN(std::string next,
                            cursor_->ExpectIdentifier("database name"));
      state.databases.push_back(std::move(next));
    }
    mt.acceptable_states.push_back(std::move(state));
  }
  if (mt.acceptable_states.empty()) {
    return Status::ParseError(
        "MULTITRANSACTION COMMIT names no acceptable states");
  }
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("end"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("multitransaction"));
  return mt;
}

}  // namespace msql::lang
