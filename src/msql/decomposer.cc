#include "msql/decomposer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/string_util.h"

namespace msql::lang {

using relational::BinaryExpr;
using relational::BinaryOp;
using relational::ColumnDef;
using relational::ColumnRefExpr;
using relational::Expr;
using relational::ExprKind;
using relational::ExprPtr;
using relational::SelectItem;
using relational::SelectStmt;
using relational::TableRef;
using relational::TableSchema;

namespace {

/// Where one effective FROM name lives and what it looks like.
struct BoundTable {
  std::string database;
  const TableSchema* schema;
};

using BindingMap = std::map<std::string, BoundTable>;  // effective name →

/// Flattens top-level AND conjuncts.
void FlattenConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kAnd) {
      FlattenConjuncts(b.left(), out);
      FlattenConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(&e);
}

/// Resolves a column ref to its effective FROM table name.
Result<std::string> ResolveTableOf(const ColumnRefExpr& ref,
                                   const BindingMap& binding) {
  if (!ref.qualifier().empty()) {
    auto it = binding.find(ref.qualifier());
    if (it == binding.end()) {
      return Status::NotFound("qualifier '" + ref.qualifier() +
                              "' does not name a FROM table");
    }
    if (!it->second.schema->HasColumn(ref.name())) {
      return Status::NotFound("column '" + ref.FullName() +
                              "' not found in its table");
    }
    return it->first;
  }
  std::string found;
  for (const auto& [name, bound] : binding) {
    if (bound.schema->HasColumn(ref.name())) {
      if (!found.empty()) {
        return Status::InvalidArgument("unqualified column '" + ref.name() +
                                       "' is ambiguous across databases");
      }
      found = name;
    }
  }
  if (found.empty()) {
    return Status::NotFound("column '" + ref.name() +
                            "' not found in any FROM table");
  }
  return found;
}

/// Collects the column refs of `e` (no subqueries allowed here).
Status CollectRefs(const Expr& e, std::vector<const ColumnRefExpr*>* out) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(&e));
      return Status::OK();
    case ExprKind::kUnary:
      return CollectRefs(static_cast<const relational::UnaryExpr&>(e).operand(),
                         out);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      MSQL_RETURN_IF_ERROR(CollectRefs(b.left(), out));
      return CollectRefs(b.right(), out);
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const relational::FunctionCallExpr&>(e);
      for (const auto& a : f.args()) {
        MSQL_RETURN_IF_ERROR(CollectRefs(*a, out));
      }
      return Status::OK();
    }
    case ExprKind::kScalarSubquery:
      return Status::InvalidArgument(
          "scalar subqueries are not supported in multidatabase joins");
    case ExprKind::kInList: {
      const auto& in = static_cast<const relational::InListExpr&>(e);
      MSQL_RETURN_IF_ERROR(CollectRefs(in.operand(), out));
      for (const auto& item : in.list()) {
        MSQL_RETURN_IF_ERROR(CollectRefs(*item, out));
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const relational::BetweenExpr&>(e);
      MSQL_RETURN_IF_ERROR(CollectRefs(bt.operand(), out));
      MSQL_RETURN_IF_ERROR(CollectRefs(bt.lo(), out));
      return CollectRefs(bt.hi(), out);
    }
  }
  return Status::Internal("unhandled expression kind");
}

/// Rewrites every column ref in `e` to its temp-table home:
/// (temp_table_of_db, "<effective>__<col>").
Status RewriteToTemp(
    Expr* e, const BindingMap& binding,
    const std::map<std::string, std::string>& temp_of_database) {
  switch (e->kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef: {
      auto* ref = static_cast<ColumnRefExpr*>(e);
      MSQL_ASSIGN_OR_RETURN(std::string table, ResolveTableOf(*ref, binding));
      const BoundTable& bound = binding.at(table);
      ref->set_qualifier(temp_of_database.at(bound.database));
      ref->set_name(table + "__" + ref->name());
      return Status::OK();
    }
    case ExprKind::kUnary:
      return RewriteToTemp(
          static_cast<relational::UnaryExpr*>(e)->mutable_operand(), binding,
          temp_of_database);
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(b->mutable_left(), binding, temp_of_database));
      return RewriteToTemp(b->mutable_right(), binding, temp_of_database);
    }
    case ExprKind::kFunctionCall: {
      auto* f = static_cast<relational::FunctionCallExpr*>(e);
      for (auto& a : f->mutable_args()) {
        MSQL_RETURN_IF_ERROR(
            RewriteToTemp(a.get(), binding, temp_of_database));
      }
      return Status::OK();
    }
    case ExprKind::kScalarSubquery:
      return Status::InvalidArgument(
          "scalar subqueries are not supported in multidatabase joins");
    case ExprKind::kInList: {
      auto* in = static_cast<relational::InListExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(in->mutable_operand(), binding, temp_of_database));
      for (auto& item : in->mutable_list()) {
        MSQL_RETURN_IF_ERROR(
            RewriteToTemp(item.get(), binding, temp_of_database));
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      auto* bt = static_cast<relational::BetweenExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(bt->mutable_operand(), binding, temp_of_database));
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(bt->mutable_lo(), binding, temp_of_database));
      return RewriteToTemp(bt->mutable_hi(), binding, temp_of_database);
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

bool Decomposer::IsMultidatabase(const SelectStmt& stmt) {
  std::set<std::string> dbs;
  for (const auto& ref : stmt.from) {
    dbs.insert(ToLower(ref.database));  // "" groups the unqualified ones
  }
  // Two or more distinct qualifiers (including "mixed qualified and
  // unqualified", which Decompose will reject with a clear error).
  return dbs.size() > 1;
}

Result<Decomposition> Decomposer::Decompose(const SelectStmt& stmt) const {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  // Bind every FROM table.
  BindingMap binding;
  std::vector<std::string> database_order;  // first-appearance order
  std::map<std::string, std::vector<std::string>> tables_of_db;
  for (const auto& ref : stmt.from) {
    if (ref.database.empty()) {
      return Status::InvalidArgument(
          "multidatabase join requires database-qualified table '" +
          ref.table + "'");
    }
    MSQL_ASSIGN_OR_RETURN(const TableSchema* schema,
                          gdd_->GetTable(ref.database, ref.table));
    std::string eff = ToLower(ref.EffectiveName());
    if (binding.count(eff) > 0) {
      return Status::InvalidArgument("duplicate FROM name '" + eff + "'");
    }
    std::string db = ToLower(ref.database);
    binding.emplace(eff, BoundTable{db, schema});
    if (tables_of_db.count(db) == 0) database_order.push_back(db);
    tables_of_db[db].push_back(eff);
  }
  if (database_order.size() < 2) {
    return Status::InvalidArgument(
        "query references a single database; no decomposition needed");
  }

  // Conjunct classification.
  std::vector<const Expr*> conjuncts;
  if (stmt.where != nullptr) FlattenConjuncts(*stmt.where, &conjuncts);
  std::map<std::string, std::vector<const Expr*>> local_conjuncts;
  std::vector<const Expr*> global_conjuncts;
  for (const Expr* c : conjuncts) {
    std::vector<const ColumnRefExpr*> refs;
    MSQL_RETURN_IF_ERROR(CollectRefs(*c, &refs));
    std::set<std::string> dbs;
    for (const auto* ref : refs) {
      MSQL_ASSIGN_OR_RETURN(std::string table, ResolveTableOf(*ref, binding));
      dbs.insert(binding.at(table).database);
    }
    if (dbs.size() == 1 && push_down_conjuncts_) {
      local_conjuncts[*dbs.begin()].push_back(c);
    } else {
      global_conjuncts.push_back(c);  // dbs.empty() → constant: keep global
    }
  }

  // Needed columns per effective table: referenced anywhere outside a
  // pushed-down local conjunct (i.e. select list, global conjuncts,
  // group/having/order).
  std::map<std::string, std::set<std::string>> needed;  // eff table → cols
  auto need_from = [&](const Expr& e) -> Status {
    std::vector<const ColumnRefExpr*> refs;
    MSQL_RETURN_IF_ERROR(CollectRefs(e, &refs));
    for (const auto* ref : refs) {
      MSQL_ASSIGN_OR_RETURN(std::string table, ResolveTableOf(*ref, binding));
      needed[table].insert(ref->name());
    }
    return Status::OK();
  };
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      // `*` needs every column of the matching tables.
      for (const auto& [eff, bound] : binding) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(eff, item.star_qualifier)) {
          continue;
        }
        for (const auto& col : bound.schema->columns()) {
          needed[eff].insert(col.name);
        }
      }
      continue;
    }
    MSQL_RETURN_IF_ERROR(need_from(*item.expr));
  }
  for (const Expr* c : global_conjuncts) {
    MSQL_RETURN_IF_ERROR(need_from(*c));
  }
  for (const auto& g : stmt.group_by) MSQL_RETURN_IF_ERROR(need_from(*g));
  if (stmt.having != nullptr) MSQL_RETURN_IF_ERROR(need_from(*stmt.having));
  for (const auto& ob : stmt.order_by) {
    MSQL_RETURN_IF_ERROR(need_from(*ob.expr));
  }

  // Heuristic coordinator: database contributing the most tables.
  // Candidates are iterated in sorted name order with a strict '>', so
  // ties deterministically resolve to the first alphabetically — never
  // to FROM/USE clause order or map iteration order.
  std::string heuristic_coordinator;
  {
    size_t best = 0;
    std::vector<std::string> sorted = database_order;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& db : sorted) {
      if (tables_of_db[db].size() > best) {
        best = tables_of_db[db].size();
        heuristic_coordinator = db;
      }
    }
  }

  // -- Cost-based coordinator + movement strategy -------------------------
  // With fresh ANALYZE statistics for every involved table, estimate each
  // database's post-pushdown partial result (rows × shipped bytes/row)
  // and (a) pick the coordinator minimizing the total estimated transfer
  // cost, (b) per remote subquery choose ship-whole vs. a semi-join-style
  // key-filter transfer. Any statistics gap falls back to the paper
  // heuristics for the whole query.
  std::string coordinator = heuristic_coordinator;
  bool cost_based_applied = false;
  std::string cost_text;
  struct SemiChoice {
    std::string target_eff, target_col;      // join column on this db
    std::string provider_eff, provider_col;  // join column at coordinator
    double key_count = 0;
    double key_bytes = 0;
    double reduced_rows = 0;
    double semi_micros = 0;
    double whole_micros = 0;
  };
  std::map<std::string, SemiChoice> semi_of_db;
  std::map<std::string, double> est_rows_of_db;
  std::map<std::string, double> est_row_bytes_of_db;
  if (cost_based_ && cost_context_ != nullptr) {
    const CostContext& ctx = *cost_context_;
    // Fresh stats for every effective table, or name what's missing.
    std::map<std::string, const TableCostStats*> stats_of_eff;
    std::string missing;
    for (const auto& [eff, bound] : binding) {
      const TableCostStats* ts =
          ctx.FindStats(bound.database, bound.schema->table_name());
      if (ts == nullptr && missing.empty()) {
        missing = bound.database + "." + bound.schema->table_name();
      }
      stats_of_eff[eff] = ts;
    }
    if (!missing.empty()) {
      cost_text = "cost: mode=heuristic coordinator=" +
                  heuristic_coordinator + " (no fresh statistics for " +
                  missing + "; run ANALYZE)\n";
    } else {
      auto distinct_of = [&](const ColumnRefExpr& ref) -> double {
        auto resolved = ResolveTableOf(ref, binding);
        if (!resolved.ok()) return 0.0;
        const TableCostStats* ts = stats_of_eff[*resolved];
        auto it = ts->columns.find(ToLower(ref.name()));
        return it == ts->columns.end()
                   ? 0.0
                   : static_cast<double>(it->second.distinct_values);
      };
      auto width_of = [&](const ColumnRefExpr& ref) -> double {
        auto resolved = ResolveTableOf(ref, binding);
        if (!resolved.ok()) return 8.0;
        const TableCostStats* ts = stats_of_eff[*resolved];
        auto it = ts->columns.find(ToLower(ref.name()));
        return it == ts->columns.end() || it->second.avg_width_bytes <= 0.0
                   ? 8.0
                   : it->second.avg_width_bytes;
      };
      // Selectivity of one pushed-down conjunct, using column distinct
      // counts when available and the planner's textbook fractions
      // (eq 1/10, other 1/3) otherwise.
      auto selectivity_of = [&](const Expr* c) -> double {
        if (c->kind() != ExprKind::kBinary) return 1.0 / 3.0;
        const auto& b = static_cast<const BinaryExpr&>(*c);
        if (b.op() != BinaryOp::kEq) return 1.0 / 3.0;
        const ColumnRefExpr* l =
            b.left().kind() == ExprKind::kColumnRef
                ? static_cast<const ColumnRefExpr*>(&b.left())
                : nullptr;
        const ColumnRefExpr* r =
            b.right().kind() == ExprKind::kColumnRef
                ? static_cast<const ColumnRefExpr*>(&b.right())
                : nullptr;
        if (l != nullptr && r != nullptr) {
          double d = std::max({distinct_of(*l), distinct_of(*r), 1.0});
          return 1.0 / d;
        }
        const ColumnRefExpr* col = l != nullptr ? l : r;
        if (col != nullptr) {
          double d = distinct_of(*col);
          if (d >= 1.0) return 1.0 / d;
        }
        return 1.0 / 10.0;
      };
      for (const auto& db : database_order) {
        double rows = 1.0;
        double row_bytes = 0.0;
        for (const auto& eff : tables_of_db[db]) {
          rows *= static_cast<double>(stats_of_eff[eff]->row_count);
          const TableCostStats* ts = stats_of_eff[eff];
          for (const auto& col : needed[eff]) {
            auto it = ts->columns.find(ToLower(col));
            row_bytes += it == ts->columns.end() ||
                                 it->second.avg_width_bytes <= 0.0
                             ? 8.0
                             : it->second.avg_width_bytes;
          }
        }
        for (const Expr* c : local_conjuncts[db]) {
          rows *= selectivity_of(c);
        }
        est_rows_of_db[db] = std::max(rows, 1.0);
        // A table shipping only the constant `one` still moves ~8 bytes
        // per row of framing.
        est_row_bytes_of_db[db] = std::max(row_bytes, 8.0);
      }
      // (a) Coordinator: minimize the total cost of moving every partial
      // result to the candidate. Iteration is in sorted name order with
      // table count as the tie-breaker, so exact cost ties resolve by
      // contribution size then name — again independent of clause order.
      std::vector<std::string> sorted = database_order;
      std::sort(sorted.begin(), sorted.end());
      double best_cost = 0.0;
      size_t best_tables = 0;
      bool first = true;
      for (const auto& candidate : sorted) {
        double total = 0.0;
        for (const auto& db : database_order) {
          total += ctx.ShipMicros(
              db, candidate, est_rows_of_db[db] * est_row_bytes_of_db[db]);
        }
        const size_t tables = tables_of_db[candidate].size();
        if (first || total < best_cost ||
            (total == best_cost && tables > best_tables)) {
          first = false;
          best_cost = total;
          best_tables = tables;
          coordinator = candidate;
        }
      }
      cost_based_applied = true;
      // (b) Movement: for each remote subquery, look for an equi-join
      // conjunct against the coordinator and compare shipping the whole
      // partial result with shipping the coordinator's DISTINCT join
      // keys there first (two extra round trips to install and drop the
      // key table, then only the matching rows travel).
      for (const auto& db : database_order) {
        if (db == coordinator) continue;
        for (const Expr* c : global_conjuncts) {
          if (c->kind() != ExprKind::kBinary) continue;
          const auto& b = static_cast<const BinaryExpr&>(*c);
          if (b.op() != BinaryOp::kEq) continue;
          if (b.left().kind() != ExprKind::kColumnRef ||
              b.right().kind() != ExprKind::kColumnRef) {
            continue;
          }
          const auto& l = static_cast<const ColumnRefExpr&>(b.left());
          const auto& r = static_cast<const ColumnRefExpr&>(b.right());
          auto lt = ResolveTableOf(l, binding);
          auto rt = ResolveTableOf(r, binding);
          if (!lt.ok() || !rt.ok()) continue;
          const std::string& ldb = binding.at(*lt).database;
          const std::string& rdb = binding.at(*rt).database;
          const ColumnRefExpr* target = nullptr;
          const ColumnRefExpr* provider = nullptr;
          std::string target_eff, provider_eff;
          if (ldb == db && rdb == coordinator) {
            target = &l, provider = &r;
            target_eff = *lt, provider_eff = *rt;
          } else if (rdb == db && ldb == coordinator) {
            target = &r, provider = &l;
            target_eff = *rt, provider_eff = *lt;
          } else {
            continue;
          }
          SemiChoice choice;
          choice.target_eff = target_eff;
          choice.target_col = ToLower(target->name());
          choice.provider_eff = provider_eff;
          choice.provider_col = ToLower(provider->name());
          choice.key_count = std::max(distinct_of(*provider), 1.0);
          choice.key_bytes = choice.key_count * width_of(*provider);
          const double target_distinct =
              std::max(distinct_of(*target), 1.0);
          const double reduction =
              std::min(1.0, choice.key_count / target_distinct);
          choice.reduced_rows =
              std::max(1.0, est_rows_of_db[db] * reduction);
          const double bytes_whole =
              est_rows_of_db[db] * est_row_bytes_of_db[db];
          choice.whole_micros = ctx.ShipMicros(db, coordinator, bytes_whole);
          choice.semi_micros =
              ctx.ShipMicros(coordinator, db, choice.key_bytes) +
              ctx.ShipMicros(db, coordinator,
                             choice.reduced_rows * est_row_bytes_of_db[db]) +
              2.0 * ctx.HopMicros(db, 0.0);
          if (choice.semi_micros < choice.whole_micros) {
            semi_of_db[db] = choice;
          }
          break;  // first matching conjunct decides — deterministic
        }
      }
      // Deterministic cost breakdown for EXPLAIN/profile output.
      auto fmt = [](double v) {
        return std::to_string(std::llround(v));
      };
      cost_text = "cost: mode=cost-based coordinator=" + coordinator;
      cost_text += coordinator == heuristic_coordinator
                       ? " (same as heuristic)\n"
                       : " (heuristic would pick " + heuristic_coordinator +
                             ")\n";
      double total = 0.0;
      double heuristic_total = 0.0;
      for (const auto& db : database_order) {
        const double bytes =
            est_rows_of_db[db] * est_row_bytes_of_db[db];
        heuristic_total +=
            ctx.ShipMicros(db, heuristic_coordinator, bytes);
        auto semi_it = semi_of_db.find(db);
        cost_text += "  sub " + db + ": est " + fmt(est_rows_of_db[db]) +
                     " row(s) x " + fmt(est_row_bytes_of_db[db]) +
                     " bytes/row -> ";
        if (semi_it == semi_of_db.end()) {
          const double us = ctx.ShipMicros(db, coordinator, bytes);
          total += us;
          cost_text += "ship-whole, est " + fmt(us) + "us\n";
        } else {
          const SemiChoice& sc = semi_it->second;
          total += sc.semi_micros;
          cost_text += "semi-join keys " + sc.provider_eff + "." +
                       sc.provider_col + " (" + fmt(sc.key_count) +
                       " key(s), est reduced " + fmt(sc.reduced_rows) +
                       " row(s)), est " + fmt(sc.semi_micros) +
                       "us (ship-whole " + fmt(sc.whole_micros) + "us)\n";
        }
      }
      cost_text += "  total est transfer " + fmt(total) +
                   "us (all-to-heuristic-coordinator " +
                   fmt(heuristic_total) + "us); pushdown " +
                   (push_down_conjuncts_ ? "on" : "off") + "\n";
    }
  }

  Decomposition out;
  out.coordinator = coordinator;
  out.cost_based = cost_based_applied;
  out.cost_text = std::move(cost_text);
  std::map<std::string, std::string> temp_of_database;
  for (const auto& db : database_order) {
    temp_of_database[db] = "mdbs_tmp_" + db;
  }

  // Build the per-database largest-possible local subqueries.
  for (const auto& db : database_order) {
    Decomposition::SubQuery sub;
    sub.database = db;
    sub.temp_table = temp_of_database[db];
    sub.select = std::make_unique<SelectStmt>();
    std::vector<ColumnDef> temp_cols;
    for (const auto& eff : tables_of_db[db]) {
      // FROM entry with the db qualifier stripped (it runs locally).
      const BoundTable& bound = binding.at(eff);
      TableRef local_ref;
      local_ref.table = bound.schema->table_name();
      if (!EqualsIgnoreCase(eff, bound.schema->table_name())) {
        local_ref.alias = eff;
      }
      sub.select->from.push_back(std::move(local_ref));
      for (const auto& col : needed[eff]) {
        SelectItem item;
        item.expr = std::make_unique<ColumnRefExpr>(eff, col);
        item.alias = eff + "__" + col;
        sub.select->items.push_back(std::move(item));
        auto idx = bound.schema->FindColumn(col);
        if (!idx.has_value()) {
          return Status::Internal("needed column vanished: " + col);
        }
        ColumnDef def = bound.schema->column(*idx);
        def.name = eff + "__" + col;
        temp_cols.push_back(std::move(def));
      }
    }
    if (sub.select->items.empty()) {
      // A table none of whose columns are needed still contributes its
      // existence (cross product cardinality): ship a constant.
      SelectItem item;
      item.expr = std::make_unique<relational::LiteralExpr>(
          relational::Value::Integer(1));
      item.alias = "one";
      sub.select->items.push_back(std::move(item));
      temp_cols.push_back(ColumnDef{"one", relational::Type::kInteger, 0});
    }
    // AND together the pushed-down conjuncts.
    ExprPtr local_where;
    for (const Expr* c : local_conjuncts[db]) {
      ExprPtr clone = c->Clone();
      local_where = local_where == nullptr
                        ? std::move(clone)
                        : std::make_unique<BinaryExpr>(
                              BinaryOp::kAnd, std::move(local_where),
                              std::move(clone));
    }
    sub.select->where = std::move(local_where);
    // Semi-join movement: rewrite this subquery to join against the key
    // table the translator will install from the coordinator's DISTINCT
    // join keys, so only matching rows ship back. The keys are exactly
    // those surviving the coordinator's own pushed-down filters, hence a
    // superset of the keys in Q''s final join — dropping non-matching
    // rows here cannot change the global result.
    auto semi_it = semi_of_db.find(db);
    if (semi_it != semi_of_db.end()) {
      const SemiChoice& sc = semi_it->second;
      sub.semi_join = true;
      sub.key_provider_db = coordinator;
      sub.key_table = "mdbs_key_" + db;
      auto key_select = std::make_unique<SelectStmt>();
      key_select->distinct = true;
      SelectItem key_item;
      key_item.expr =
          std::make_unique<ColumnRefExpr>(sc.provider_eff, sc.provider_col);
      key_item.alias = "k0";
      key_select->items.push_back(std::move(key_item));
      for (const auto& provider_eff : tables_of_db[coordinator]) {
        const BoundTable& pb = binding.at(provider_eff);
        TableRef pref;
        pref.table = pb.schema->table_name();
        if (!EqualsIgnoreCase(provider_eff, pb.schema->table_name())) {
          pref.alias = provider_eff;
        }
        key_select->from.push_back(std::move(pref));
      }
      ExprPtr key_where;
      for (const Expr* c : local_conjuncts[coordinator]) {
        ExprPtr clone = c->Clone();
        key_where = key_where == nullptr
                        ? std::move(clone)
                        : std::make_unique<BinaryExpr>(
                              BinaryOp::kAnd, std::move(key_where),
                              std::move(clone));
      }
      key_select->where = std::move(key_where);
      sub.key_select = std::move(key_select);
      const BoundTable& pb = binding.at(sc.provider_eff);
      auto pidx = pb.schema->FindColumn(sc.provider_col);
      if (!pidx.has_value()) {
        return Status::Internal("semi-join key column vanished: " +
                                sc.provider_col);
      }
      ColumnDef key_def = pb.schema->column(*pidx);
      key_def.name = "k0";
      std::vector<ColumnDef> key_cols;
      key_cols.push_back(std::move(key_def));
      MSQL_ASSIGN_OR_RETURN(
          sub.key_schema,
          TableSchema::Create(sub.key_table, std::move(key_cols)));
      TableRef key_ref;
      key_ref.table = sub.key_table;
      sub.select->from.push_back(std::move(key_ref));
      ExprPtr key_eq = std::make_unique<BinaryExpr>(
          BinaryOp::kEq,
          std::make_unique<ColumnRefExpr>(sc.target_eff, sc.target_col),
          std::make_unique<ColumnRefExpr>(sub.key_table, "k0"));
      sub.select->where =
          sub.select->where == nullptr
              ? std::move(key_eq)
              : std::make_unique<BinaryExpr>(BinaryOp::kAnd,
                                             std::move(sub.select->where),
                                             std::move(key_eq));
    }
    MSQL_ASSIGN_OR_RETURN(
        sub.temp_schema,
        TableSchema::Create(sub.temp_table, std::move(temp_cols)));
    out.subqueries.push_back(std::move(sub));
  }

  // Build the modified global query Q' over the temp tables.
  auto global = std::make_unique<SelectStmt>();
  global->distinct = stmt.distinct;
  for (const auto& db : database_order) {
    TableRef ref;
    ref.table = temp_of_database[db];
    global->from.push_back(std::move(ref));
  }
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      // Expand to all shipped columns of the matching tables.
      for (const auto& [eff, bound] : binding) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(eff, item.star_qualifier)) {
          continue;
        }
        for (const auto& col : needed[eff]) {
          SelectItem out_item;
          out_item.expr = std::make_unique<ColumnRefExpr>(
              temp_of_database[bound.database], eff + "__" + col);
          out_item.alias = col;
          global->items.push_back(std::move(out_item));
        }
      }
      continue;
    }
    SelectItem out_item = item.CloneItem();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(out_item.expr.get(), binding, temp_of_database));
    if (out_item.alias.empty() &&
        item.expr->kind() == ExprKind::kColumnRef) {
      out_item.alias =
          static_cast<const ColumnRefExpr&>(*item.expr).name();
    }
    global->items.push_back(std::move(out_item));
  }
  ExprPtr global_where;
  for (const Expr* c : global_conjuncts) {
    ExprPtr clone = c->Clone();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(clone.get(), binding, temp_of_database));
    global_where = global_where == nullptr
                       ? std::move(clone)
                       : std::make_unique<BinaryExpr>(BinaryOp::kAnd,
                                                      std::move(global_where),
                                                      std::move(clone));
  }
  global->where = std::move(global_where);
  for (const auto& g : stmt.group_by) {
    ExprPtr clone = g->Clone();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(clone.get(), binding, temp_of_database));
    global->group_by.push_back(std::move(clone));
  }
  if (stmt.having != nullptr) {
    ExprPtr clone = stmt.having->Clone();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(clone.get(), binding, temp_of_database));
    global->having = std::move(clone);
  }
  for (const auto& ob : stmt.order_by) {
    relational::OrderItem out_ob = ob.CloneItem();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(out_ob.expr.get(), binding, temp_of_database));
    global->order_by.push_back(std::move(out_ob));
  }
  out.global_query = std::move(global);
  return out;
}

}  // namespace msql::lang
