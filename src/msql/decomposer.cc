#include "msql/decomposer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace msql::lang {

using relational::BinaryExpr;
using relational::BinaryOp;
using relational::ColumnDef;
using relational::ColumnRefExpr;
using relational::Expr;
using relational::ExprKind;
using relational::ExprPtr;
using relational::SelectItem;
using relational::SelectStmt;
using relational::TableRef;
using relational::TableSchema;

namespace {

/// Where one effective FROM name lives and what it looks like.
struct BoundTable {
  std::string database;
  const TableSchema* schema;
};

using BindingMap = std::map<std::string, BoundTable>;  // effective name →

/// Flattens top-level AND conjuncts.
void FlattenConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kAnd) {
      FlattenConjuncts(b.left(), out);
      FlattenConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(&e);
}

/// Resolves a column ref to its effective FROM table name.
Result<std::string> ResolveTableOf(const ColumnRefExpr& ref,
                                   const BindingMap& binding) {
  if (!ref.qualifier().empty()) {
    auto it = binding.find(ref.qualifier());
    if (it == binding.end()) {
      return Status::NotFound("qualifier '" + ref.qualifier() +
                              "' does not name a FROM table");
    }
    if (!it->second.schema->HasColumn(ref.name())) {
      return Status::NotFound("column '" + ref.FullName() +
                              "' not found in its table");
    }
    return it->first;
  }
  std::string found;
  for (const auto& [name, bound] : binding) {
    if (bound.schema->HasColumn(ref.name())) {
      if (!found.empty()) {
        return Status::InvalidArgument("unqualified column '" + ref.name() +
                                       "' is ambiguous across databases");
      }
      found = name;
    }
  }
  if (found.empty()) {
    return Status::NotFound("column '" + ref.name() +
                            "' not found in any FROM table");
  }
  return found;
}

/// Collects the column refs of `e` (no subqueries allowed here).
Status CollectRefs(const Expr& e, std::vector<const ColumnRefExpr*>* out) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(&e));
      return Status::OK();
    case ExprKind::kUnary:
      return CollectRefs(static_cast<const relational::UnaryExpr&>(e).operand(),
                         out);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      MSQL_RETURN_IF_ERROR(CollectRefs(b.left(), out));
      return CollectRefs(b.right(), out);
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const relational::FunctionCallExpr&>(e);
      for (const auto& a : f.args()) {
        MSQL_RETURN_IF_ERROR(CollectRefs(*a, out));
      }
      return Status::OK();
    }
    case ExprKind::kScalarSubquery:
      return Status::InvalidArgument(
          "scalar subqueries are not supported in multidatabase joins");
    case ExprKind::kInList: {
      const auto& in = static_cast<const relational::InListExpr&>(e);
      MSQL_RETURN_IF_ERROR(CollectRefs(in.operand(), out));
      for (const auto& item : in.list()) {
        MSQL_RETURN_IF_ERROR(CollectRefs(*item, out));
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const relational::BetweenExpr&>(e);
      MSQL_RETURN_IF_ERROR(CollectRefs(bt.operand(), out));
      MSQL_RETURN_IF_ERROR(CollectRefs(bt.lo(), out));
      return CollectRefs(bt.hi(), out);
    }
  }
  return Status::Internal("unhandled expression kind");
}

/// Rewrites every column ref in `e` to its temp-table home:
/// (temp_table_of_db, "<effective>__<col>").
Status RewriteToTemp(
    Expr* e, const BindingMap& binding,
    const std::map<std::string, std::string>& temp_of_database) {
  switch (e->kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef: {
      auto* ref = static_cast<ColumnRefExpr*>(e);
      MSQL_ASSIGN_OR_RETURN(std::string table, ResolveTableOf(*ref, binding));
      const BoundTable& bound = binding.at(table);
      ref->set_qualifier(temp_of_database.at(bound.database));
      ref->set_name(table + "__" + ref->name());
      return Status::OK();
    }
    case ExprKind::kUnary:
      return RewriteToTemp(
          static_cast<relational::UnaryExpr*>(e)->mutable_operand(), binding,
          temp_of_database);
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(b->mutable_left(), binding, temp_of_database));
      return RewriteToTemp(b->mutable_right(), binding, temp_of_database);
    }
    case ExprKind::kFunctionCall: {
      auto* f = static_cast<relational::FunctionCallExpr*>(e);
      for (auto& a : f->mutable_args()) {
        MSQL_RETURN_IF_ERROR(
            RewriteToTemp(a.get(), binding, temp_of_database));
      }
      return Status::OK();
    }
    case ExprKind::kScalarSubquery:
      return Status::InvalidArgument(
          "scalar subqueries are not supported in multidatabase joins");
    case ExprKind::kInList: {
      auto* in = static_cast<relational::InListExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(in->mutable_operand(), binding, temp_of_database));
      for (auto& item : in->mutable_list()) {
        MSQL_RETURN_IF_ERROR(
            RewriteToTemp(item.get(), binding, temp_of_database));
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      auto* bt = static_cast<relational::BetweenExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(bt->mutable_operand(), binding, temp_of_database));
      MSQL_RETURN_IF_ERROR(
          RewriteToTemp(bt->mutable_lo(), binding, temp_of_database));
      return RewriteToTemp(bt->mutable_hi(), binding, temp_of_database);
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

bool Decomposer::IsMultidatabase(const SelectStmt& stmt) {
  std::set<std::string> dbs;
  for (const auto& ref : stmt.from) {
    dbs.insert(ToLower(ref.database));  // "" groups the unqualified ones
  }
  // Two or more distinct qualifiers (including "mixed qualified and
  // unqualified", which Decompose will reject with a clear error).
  return dbs.size() > 1;
}

Result<Decomposition> Decomposer::Decompose(const SelectStmt& stmt) const {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  // Bind every FROM table.
  BindingMap binding;
  std::vector<std::string> database_order;  // first-appearance order
  std::map<std::string, std::vector<std::string>> tables_of_db;
  for (const auto& ref : stmt.from) {
    if (ref.database.empty()) {
      return Status::InvalidArgument(
          "multidatabase join requires database-qualified table '" +
          ref.table + "'");
    }
    MSQL_ASSIGN_OR_RETURN(const TableSchema* schema,
                          gdd_->GetTable(ref.database, ref.table));
    std::string eff = ToLower(ref.EffectiveName());
    if (binding.count(eff) > 0) {
      return Status::InvalidArgument("duplicate FROM name '" + eff + "'");
    }
    std::string db = ToLower(ref.database);
    binding.emplace(eff, BoundTable{db, schema});
    if (tables_of_db.count(db) == 0) database_order.push_back(db);
    tables_of_db[db].push_back(eff);
  }
  if (database_order.size() < 2) {
    return Status::InvalidArgument(
        "query references a single database; no decomposition needed");
  }

  // Conjunct classification.
  std::vector<const Expr*> conjuncts;
  if (stmt.where != nullptr) FlattenConjuncts(*stmt.where, &conjuncts);
  std::map<std::string, std::vector<const Expr*>> local_conjuncts;
  std::vector<const Expr*> global_conjuncts;
  for (const Expr* c : conjuncts) {
    std::vector<const ColumnRefExpr*> refs;
    MSQL_RETURN_IF_ERROR(CollectRefs(*c, &refs));
    std::set<std::string> dbs;
    for (const auto* ref : refs) {
      MSQL_ASSIGN_OR_RETURN(std::string table, ResolveTableOf(*ref, binding));
      dbs.insert(binding.at(table).database);
    }
    if (dbs.size() == 1 && push_down_conjuncts_) {
      local_conjuncts[*dbs.begin()].push_back(c);
    } else {
      global_conjuncts.push_back(c);  // dbs.empty() → constant: keep global
    }
  }

  // Needed columns per effective table: referenced anywhere outside a
  // pushed-down local conjunct (i.e. select list, global conjuncts,
  // group/having/order).
  std::map<std::string, std::set<std::string>> needed;  // eff table → cols
  auto need_from = [&](const Expr& e) -> Status {
    std::vector<const ColumnRefExpr*> refs;
    MSQL_RETURN_IF_ERROR(CollectRefs(e, &refs));
    for (const auto* ref : refs) {
      MSQL_ASSIGN_OR_RETURN(std::string table, ResolveTableOf(*ref, binding));
      needed[table].insert(ref->name());
    }
    return Status::OK();
  };
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      // `*` needs every column of the matching tables.
      for (const auto& [eff, bound] : binding) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(eff, item.star_qualifier)) {
          continue;
        }
        for (const auto& col : bound.schema->columns()) {
          needed[eff].insert(col.name);
        }
      }
      continue;
    }
    MSQL_RETURN_IF_ERROR(need_from(*item.expr));
  }
  for (const Expr* c : global_conjuncts) {
    MSQL_RETURN_IF_ERROR(need_from(*c));
  }
  for (const auto& g : stmt.group_by) MSQL_RETURN_IF_ERROR(need_from(*g));
  if (stmt.having != nullptr) MSQL_RETURN_IF_ERROR(need_from(*stmt.having));
  for (const auto& ob : stmt.order_by) {
    MSQL_RETURN_IF_ERROR(need_from(*ob.expr));
  }

  // Coordinator: database contributing the most tables (ties → first
  // alphabetically).
  std::string coordinator;
  size_t best = 0;
  {
    std::vector<std::string> sorted = database_order;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& db : sorted) {
      if (tables_of_db[db].size() > best) {
        best = tables_of_db[db].size();
        coordinator = db;
      }
    }
  }

  Decomposition out;
  out.coordinator = coordinator;
  std::map<std::string, std::string> temp_of_database;
  for (const auto& db : database_order) {
    temp_of_database[db] = "mdbs_tmp_" + db;
  }

  // Build the per-database largest-possible local subqueries.
  for (const auto& db : database_order) {
    Decomposition::SubQuery sub;
    sub.database = db;
    sub.temp_table = temp_of_database[db];
    sub.select = std::make_unique<SelectStmt>();
    std::vector<ColumnDef> temp_cols;
    for (const auto& eff : tables_of_db[db]) {
      // FROM entry with the db qualifier stripped (it runs locally).
      const BoundTable& bound = binding.at(eff);
      TableRef local_ref;
      local_ref.table = bound.schema->table_name();
      if (!EqualsIgnoreCase(eff, bound.schema->table_name())) {
        local_ref.alias = eff;
      }
      sub.select->from.push_back(std::move(local_ref));
      for (const auto& col : needed[eff]) {
        SelectItem item;
        item.expr = std::make_unique<ColumnRefExpr>(eff, col);
        item.alias = eff + "__" + col;
        sub.select->items.push_back(std::move(item));
        auto idx = bound.schema->FindColumn(col);
        if (!idx.has_value()) {
          return Status::Internal("needed column vanished: " + col);
        }
        ColumnDef def = bound.schema->column(*idx);
        def.name = eff + "__" + col;
        temp_cols.push_back(std::move(def));
      }
    }
    if (sub.select->items.empty()) {
      // A table none of whose columns are needed still contributes its
      // existence (cross product cardinality): ship a constant.
      SelectItem item;
      item.expr = std::make_unique<relational::LiteralExpr>(
          relational::Value::Integer(1));
      item.alias = "one";
      sub.select->items.push_back(std::move(item));
      temp_cols.push_back(ColumnDef{"one", relational::Type::kInteger, 0});
    }
    // AND together the pushed-down conjuncts.
    ExprPtr local_where;
    for (const Expr* c : local_conjuncts[db]) {
      ExprPtr clone = c->Clone();
      local_where = local_where == nullptr
                        ? std::move(clone)
                        : std::make_unique<BinaryExpr>(
                              BinaryOp::kAnd, std::move(local_where),
                              std::move(clone));
    }
    sub.select->where = std::move(local_where);
    MSQL_ASSIGN_OR_RETURN(
        sub.temp_schema,
        TableSchema::Create(sub.temp_table, std::move(temp_cols)));
    out.subqueries.push_back(std::move(sub));
  }

  // Build the modified global query Q' over the temp tables.
  auto global = std::make_unique<SelectStmt>();
  global->distinct = stmt.distinct;
  for (const auto& db : database_order) {
    TableRef ref;
    ref.table = temp_of_database[db];
    global->from.push_back(std::move(ref));
  }
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      // Expand to all shipped columns of the matching tables.
      for (const auto& [eff, bound] : binding) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(eff, item.star_qualifier)) {
          continue;
        }
        for (const auto& col : needed[eff]) {
          SelectItem out_item;
          out_item.expr = std::make_unique<ColumnRefExpr>(
              temp_of_database[bound.database], eff + "__" + col);
          out_item.alias = col;
          global->items.push_back(std::move(out_item));
        }
      }
      continue;
    }
    SelectItem out_item = item.CloneItem();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(out_item.expr.get(), binding, temp_of_database));
    if (out_item.alias.empty() &&
        item.expr->kind() == ExprKind::kColumnRef) {
      out_item.alias =
          static_cast<const ColumnRefExpr&>(*item.expr).name();
    }
    global->items.push_back(std::move(out_item));
  }
  ExprPtr global_where;
  for (const Expr* c : global_conjuncts) {
    ExprPtr clone = c->Clone();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(clone.get(), binding, temp_of_database));
    global_where = global_where == nullptr
                       ? std::move(clone)
                       : std::make_unique<BinaryExpr>(BinaryOp::kAnd,
                                                      std::move(global_where),
                                                      std::move(clone));
  }
  global->where = std::move(global_where);
  for (const auto& g : stmt.group_by) {
    ExprPtr clone = g->Clone();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(clone.get(), binding, temp_of_database));
    global->group_by.push_back(std::move(clone));
  }
  if (stmt.having != nullptr) {
    ExprPtr clone = stmt.having->Clone();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(clone.get(), binding, temp_of_database));
    global->having = std::move(clone);
  }
  for (const auto& ob : stmt.order_by) {
    relational::OrderItem out_ob = ob.CloneItem();
    MSQL_RETURN_IF_ERROR(
        RewriteToTemp(out_ob.expr.get(), binding, temp_of_database));
    global->order_by.push_back(std::move(out_ob));
  }
  out.global_query = std::move(global);
  return out;
}

}  // namespace msql::lang
