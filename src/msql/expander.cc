#include "msql/expander.h"

#include <algorithm>

#include "analysis/diagnostics.h"
#include "common/string_util.h"

namespace msql::lang {

namespace {

/// Renders a span-carrying expander error in the diagnostics format so
/// messages point at the offending token (satellite of DESIGN.md §8).
Status ExpansionError(std::string_view code, int line, int column,
                      int length, std::string message,
                      std::string fix_hint = "") {
  analysis::Diagnostic d;
  d.code = std::string(code);
  d.severity = analysis::Severity::kError;
  d.span = analysis::SourceSpan::At(line, column, length);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  return Status::InvalidArgument(d.Render());
}

}  // namespace

using relational::ColumnRefExpr;
using relational::Expr;
using relational::ExprKind;
using relational::ExprPtr;
using relational::SelectStmt;
using relational::Statement;
using relational::StatementKind;
using relational::StatementPtr;

namespace {

// ---------------------------------------------------------------------------
// Identifier collection
// ---------------------------------------------------------------------------

void CollectExpr(const Expr& e, std::set<std::string>* tables,
                 std::map<std::string, bool>* columns);

void CollectSelect(const SelectStmt& stmt, std::set<std::string>* tables,
                   std::map<std::string, bool>* columns) {
  for (const auto& ref : stmt.from) tables->insert(ref.table);
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr) CollectExpr(*item.expr, tables, columns);
  }
  if (stmt.where != nullptr) CollectExpr(*stmt.where, tables, columns);
  for (const auto& g : stmt.group_by) CollectExpr(*g, tables, columns);
  if (stmt.having != nullptr) CollectExpr(*stmt.having, tables, columns);
  for (const auto& ob : stmt.order_by) {
    CollectExpr(*ob.expr, tables, columns);
  }
}

void NoteColumn(const std::string& name, bool optional,
                std::map<std::string, bool>* columns) {
  auto [it, inserted] = columns->emplace(name, optional);
  if (!inserted) it->second = it->second && optional;
}

void CollectExpr(const Expr& e, std::set<std::string>* tables,
                 std::map<std::string, bool>* columns) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      NoteColumn(ref.name(), ref.optional_column(), columns);
      return;
    }
    case ExprKind::kUnary:
      CollectExpr(static_cast<const relational::UnaryExpr&>(e).operand(),
                  tables, columns);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const relational::BinaryExpr&>(e);
      CollectExpr(b.left(), tables, columns);
      CollectExpr(b.right(), tables, columns);
      return;
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const relational::FunctionCallExpr&>(e);
      for (const auto& a : f.args()) CollectExpr(*a, tables, columns);
      return;
    }
    case ExprKind::kScalarSubquery:
      CollectSelect(
          static_cast<const relational::ScalarSubqueryExpr&>(e).select(),
          tables, columns);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const relational::InListExpr&>(e);
      CollectExpr(in.operand(), tables, columns);
      for (const auto& item : in.list()) {
        CollectExpr(*item, tables, columns);
      }
      return;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const relational::BetweenExpr&>(e);
      CollectExpr(bt.operand(), tables, columns);
      CollectExpr(bt.lo(), tables, columns);
      CollectExpr(bt.hi(), tables, columns);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Rewriting
// ---------------------------------------------------------------------------

using NameMap = std::map<std::string, std::string>;

Status RewriteExpr(Expr* e, const NameMap& table_map,
                   const NameMap& column_map);

Status RewriteSelect(SelectStmt* stmt, const NameMap& table_map,
                     const NameMap& column_map) {
  for (auto& ref : stmt->from) {
    auto it = table_map.find(ref.table);
    if (it != table_map.end()) ref.table = it->second;
  }
  // Select items: a dropped optional column removes its item.
  std::vector<relational::SelectItem> kept;
  for (auto& item : stmt->items) {
    if (item.expr != nullptr &&
        item.expr->kind() == ExprKind::kColumnRef) {
      auto* ref = static_cast<ColumnRefExpr*>(item.expr.get());
      auto col_it = column_map.find(ref->name());
      if (col_it != column_map.end()) {
        if (col_it->second.empty()) continue;  // dropped optional column
        if (item.alias.empty()) item.alias = SemanticAlias(ref->name());
        ref->set_name(col_it->second);
      }
      ref->clear_optional();
      auto q_it = table_map.find(ref->qualifier());
      if (q_it != table_map.end()) ref->set_qualifier(q_it->second);
      kept.push_back(std::move(item));
      continue;
    }
    if (item.expr != nullptr) {
      MSQL_RETURN_IF_ERROR(
          RewriteExpr(item.expr.get(), table_map, column_map));
    }
    kept.push_back(std::move(item));
  }
  if (kept.empty() && !stmt->items.empty()) {
    return Status::InvalidArgument(
        "all select items were dropped as optional columns");
  }
  stmt->items = std::move(kept);
  if (stmt->where != nullptr) {
    MSQL_RETURN_IF_ERROR(
        RewriteExpr(stmt->where.get(), table_map, column_map));
  }
  for (auto& g : stmt->group_by) {
    MSQL_RETURN_IF_ERROR(RewriteExpr(g.get(), table_map, column_map));
  }
  if (stmt->having != nullptr) {
    MSQL_RETURN_IF_ERROR(
        RewriteExpr(stmt->having.get(), table_map, column_map));
  }
  for (auto& ob : stmt->order_by) {
    MSQL_RETURN_IF_ERROR(RewriteExpr(ob.expr.get(), table_map, column_map));
  }
  return Status::OK();
}

Status RewriteExpr(Expr* e, const NameMap& table_map,
                   const NameMap& column_map) {
  switch (e->kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef: {
      auto* ref = static_cast<ColumnRefExpr*>(e);
      auto it = column_map.find(ref->name());
      if (it != column_map.end()) {
        if (it->second.empty()) {
          return Status::InvalidArgument(
              "optional column '" + ref->name() +
              "' does not resolve and is used outside the select list");
        }
        ref->set_name(it->second);
      }
      ref->clear_optional();
      auto q_it = table_map.find(ref->qualifier());
      if (q_it != table_map.end()) ref->set_qualifier(q_it->second);
      return Status::OK();
    }
    case ExprKind::kUnary:
      return RewriteExpr(
          static_cast<relational::UnaryExpr*>(e)->mutable_operand(),
          table_map, column_map);
    case ExprKind::kBinary: {
      auto* b = static_cast<relational::BinaryExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteExpr(b->mutable_left(), table_map, column_map));
      return RewriteExpr(b->mutable_right(), table_map, column_map);
    }
    case ExprKind::kFunctionCall: {
      auto* f = static_cast<relational::FunctionCallExpr*>(e);
      for (auto& a : f->mutable_args()) {
        MSQL_RETURN_IF_ERROR(RewriteExpr(a.get(), table_map, column_map));
      }
      return Status::OK();
    }
    case ExprKind::kScalarSubquery: {
      auto* sub = static_cast<relational::ScalarSubqueryExpr*>(e);
      return RewriteSelect(sub->mutable_select(), table_map, column_map);
    }
    case ExprKind::kInList: {
      auto* in = static_cast<relational::InListExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteExpr(in->mutable_operand(), table_map, column_map));
      for (auto& item : in->mutable_list()) {
        MSQL_RETURN_IF_ERROR(
            RewriteExpr(item.get(), table_map, column_map));
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      auto* bt = static_cast<relational::BetweenExpr*>(e);
      MSQL_RETURN_IF_ERROR(
          RewriteExpr(bt->mutable_operand(), table_map, column_map));
      MSQL_RETURN_IF_ERROR(
          RewriteExpr(bt->mutable_lo(), table_map, column_map));
      return RewriteExpr(bt->mutable_hi(), table_map, column_map);
    }
  }
  return Status::Internal("unhandled expression kind in rewrite");
}

/// Cartesian-product iterator over per-name candidate lists.
class ComboIterator {
 public:
  explicit ComboIterator(
      const std::vector<std::pair<std::string, std::vector<std::string>>>&
          candidates)
      : candidates_(candidates), indices_(candidates.size(), 0) {
    for (const auto& [name, cands] : candidates_) {
      if (cands.empty()) exhausted_ = true;
    }
  }

  bool exhausted() const { return exhausted_; }

  NameMap Current() const {
    NameMap map;
    for (size_t i = 0; i < candidates_.size(); ++i) {
      map[candidates_[i].first] = candidates_[i].second[indices_[i]];
    }
    return map;
  }

  void Advance() {
    size_t level = candidates_.size();
    while (level > 0) {
      --level;
      if (++indices_[level] < candidates_[level].second.size()) return;
      indices_[level] = 0;
      if (level == 0) exhausted_ = true;
    }
    if (candidates_.empty()) exhausted_ = true;
  }

 private:
  const std::vector<std::pair<std::string, std::vector<std::string>>>&
      candidates_;
  std::vector<size_t> indices_;
  bool exhausted_ = false;
};

}  // namespace

std::string SemanticAlias(const std::string& written_name) {
  if (!HasWildcard(written_name)) return written_name;
  std::string out;
  for (char c : written_name) {
    if (c != '%') out += c;
  }
  return out.empty() ? "col" : out;
}

void CollectIdentifiers(const Statement& stmt,
                        std::set<std::string>* tables,
                        std::map<std::string, bool>* columns) {
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      CollectSelect(static_cast<const SelectStmt&>(stmt), tables, columns);
      return;
    case StatementKind::kInsert: {
      const auto& ins = static_cast<const relational::InsertStmt&>(stmt);
      tables->insert(ins.table.table);
      for (const auto& col : ins.columns) NoteColumn(col, false, columns);
      for (const auto& row : ins.values_rows) {
        for (const auto& e : row) CollectExpr(*e, tables, columns);
      }
      if (ins.select_source != nullptr) {
        CollectSelect(*ins.select_source, tables, columns);
      }
      return;
    }
    case StatementKind::kUpdate: {
      const auto& upd = static_cast<const relational::UpdateStmt&>(stmt);
      tables->insert(upd.table.table);
      for (const auto& a : upd.assignments) {
        NoteColumn(a.column, false, columns);
        CollectExpr(*a.value, tables, columns);
      }
      if (upd.where != nullptr) CollectExpr(*upd.where, tables, columns);
      return;
    }
    case StatementKind::kDelete: {
      const auto& del = static_cast<const relational::DeleteStmt&>(stmt);
      tables->insert(del.table.table);
      if (del.where != nullptr) CollectExpr(*del.where, tables, columns);
      return;
    }
    default:
      // DDL and transaction-control statements carry literal names that
      // are never expanded.
      return;
  }
}

Status RewriteIdentifiers(Statement* stmt, const NameMap& table_map,
                          const NameMap& column_map) {
  switch (stmt->kind()) {
    case StatementKind::kSelect:
      return RewriteSelect(static_cast<SelectStmt*>(stmt), table_map,
                           column_map);
    case StatementKind::kInsert: {
      auto* ins = static_cast<relational::InsertStmt*>(stmt);
      auto it = table_map.find(ins->table.table);
      if (it != table_map.end()) ins->table.table = it->second;
      for (auto& col : ins->columns) {
        auto col_it = column_map.find(col);
        if (col_it != column_map.end()) {
          if (col_it->second.empty()) {
            return Status::InvalidArgument(
                "optional column '" + col + "' cannot be an INSERT target");
          }
          col = col_it->second;
        }
      }
      for (auto& row : ins->values_rows) {
        for (auto& e : row) {
          MSQL_RETURN_IF_ERROR(RewriteExpr(e.get(), table_map, column_map));
        }
      }
      if (ins->select_source != nullptr) {
        MSQL_RETURN_IF_ERROR(RewriteSelect(ins->select_source.get(),
                                           table_map, column_map));
      }
      return Status::OK();
    }
    case StatementKind::kUpdate: {
      auto* upd = static_cast<relational::UpdateStmt*>(stmt);
      auto it = table_map.find(upd->table.table);
      if (it != table_map.end()) upd->table.table = it->second;
      for (auto& a : upd->assignments) {
        auto col_it = column_map.find(a.column);
        if (col_it != column_map.end()) {
          if (col_it->second.empty()) {
            return Status::InvalidArgument(
                "optional column '" + a.column +
                "' cannot be an UPDATE target");
          }
          a.column = col_it->second;
        }
        MSQL_RETURN_IF_ERROR(
            RewriteExpr(a.value.get(), table_map, column_map));
      }
      if (upd->where != nullptr) {
        MSQL_RETURN_IF_ERROR(
            RewriteExpr(upd->where.get(), table_map, column_map));
      }
      return Status::OK();
    }
    case StatementKind::kDelete: {
      auto* del = static_cast<relational::DeleteStmt*>(stmt);
      auto it = table_map.find(del->table.table);
      if (it != table_map.end()) del->table.table = it->second;
      if (del->where != nullptr) {
        MSQL_RETURN_IF_ERROR(
            RewriteExpr(del->where.get(), table_map, column_map));
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Result<ExpansionResult> Expander::Expand(const MsqlQuery& query) const {
  ExpansionResult out;
  MSQL_RETURN_IF_ERROR(ExpandInto(query, &out));
  return out;
}

Status Expander::ExpandInto(const MsqlQuery& query,
                            ExpansionResult* out) const {
  const auto& entries = query.use.entries;
  if (entries.empty()) {
    return Status::InvalidArgument(
        "query has an empty scope (no USE databases resolved)");
  }
  // Scope databases must be unique by effective name.
  {
    std::set<std::string> seen;
    for (const auto& e : entries) {
      if (!seen.insert(e.EffectiveName()).second) {
        return ExpansionError(
            analysis::diag::kDuplicateEffectiveName, e.line, e.column,
            static_cast<int>(e.database.size()),
            "database or alias '" + e.EffectiveName() +
                "' appears twice in the USE scope",
            "give the second occurrence a distinct alias");
      }
    }
  }
  // LET targets must align with the scope.
  if (query.let.has_value()) {
    for (const auto& binding : query.let->bindings) {
      if (binding.targets.size() != entries.size()) {
        return ExpansionError(
            analysis::diag::kLetArityMismatch, binding.line, binding.column,
            static_cast<int>(binding.variable_path.empty()
                                 ? 1
                                 : binding.variable_path[0].size()),
            "LET " + Join(binding.variable_path, ".") + " provides " +
                std::to_string(binding.targets.size()) + " targets for " +
                std::to_string(entries.size()) + " scope databases",
            "LET targets bind positionally: give one per USE entry");
      }
    }
  }

  NameInventory inventory;
  CollectIdentifiers(*query.body, &inventory.tables, &inventory.columns);

  for (size_t i = 0; i < entries.size(); ++i) {
    MSQL_ASSIGN_OR_RETURN(StatementPtr stmt,
                          ExpandForDatabase(query, i, inventory));
    if (stmt == nullptr) {
      out->non_pertinent.push_back(entries[i].EffectiveName());
      continue;
    }
    ElementaryQuery eq;
    eq.database = entries[i].database;
    eq.effective_name = entries[i].EffectiveName();
    eq.vital = entries[i].vital;
    eq.statement = std::move(stmt);
    out->queries.push_back(std::move(eq));
  }

  // Attach compensating actions.
  for (const auto& comp : query.comps) {
    bool attached = false;
    for (auto& eq : out->queries) {
      if (EqualsIgnoreCase(eq.effective_name, comp.database) ||
          EqualsIgnoreCase(eq.database, comp.database)) {
        eq.compensation = comp.action->Clone();
        attached = true;
        break;
      }
    }
    if (!attached) {
      return ExpansionError(
          analysis::diag::kCompUnknownDatabase, comp.line, comp.column,
          static_cast<int>(comp.database.size()),
          "COMP clause names '" + comp.database +
              "', which has no subquery in this multiple query");
    }
  }
  return Status::OK();
}

Result<StatementPtr> Expander::ExpandForDatabase(
    const MsqlQuery& query, size_t entry_index,
    const NameInventory& inventory) const {
  const UseEntry& entry = query.use.entries[entry_index];
  const std::string& db = entry.database;
  if (!gdd_->HasDatabase(db)) {
    analysis::Diagnostic d;
    d.code = std::string(analysis::diag::kUnknownDatabase);
    d.severity = analysis::Severity::kError;
    d.span = analysis::SourceSpan::At(entry.line, entry.column,
                                      static_cast<int>(db.size()));
    d.message = "database '" + db + "' is not in the GDD (IMPORT it first)";
    return Status::NotFound(d.Render());
  }

  // DDL bodies are replicated verbatim (multidatabase table definition).
  if (query.body->kind() == StatementKind::kCreateTable) {
    return query.body->Clone();
  }
  if (query.body->kind() == StatementKind::kDropTable) {
    const auto& drop =
        static_cast<const relational::DropTableStmt&>(*query.body);
    if (!gdd_->HasTable(db, drop.table.table)) return StatementPtr(nullptr);
    return query.body->Clone();
  }

  // LET maps for this database.
  NameMap table_let;
  NameMap column_let;
  if (query.let.has_value()) {
    for (const auto& binding : query.let->bindings) {
      const auto& target = binding.targets[entry_index];
      for (size_t c = 0; c < binding.variable_path.size(); ++c) {
        NameMap& map = (c == 0) ? table_let : column_let;
        const std::string& var = binding.variable_path[c];
        auto [it, inserted] = map.emplace(var, target[c]);
        if (!inserted && it->second != target[c]) {
          return Status::InvalidArgument(
              "semantic variable '" + var +
              "' is bound twice with different targets");
        }
      }
    }
  }

  // Table candidates.
  std::vector<std::pair<std::string, std::vector<std::string>>> table_cands;
  for (const auto& t : inventory.tables) {
    std::vector<std::string> cands;
    auto let_it = table_let.find(t);
    if (let_it != table_let.end()) {
      if (gdd_->HasTable(db, let_it->second)) cands.push_back(let_it->second);
    } else if (HasWildcard(t)) {
      MSQL_ASSIGN_OR_RETURN(cands, gdd_->MatchTables(db, t));
    } else if (gdd_->HasTable(db, t)) {
      cands.push_back(t);
    }
    if (cands.empty()) return StatementPtr(nullptr);  // non-pertinent
    table_cands.emplace_back(t, std::move(cands));
  }

  std::vector<StatementPtr> pertinent;
  std::set<std::string> pertinent_sql;  // dedupe identical rewrites

  for (ComboIterator tables_it(table_cands); !tables_it.exhausted();
       tables_it.Advance()) {
    NameMap table_map = tables_it.Current();
    // The set of local tables this combination reads/writes.
    std::vector<const relational::TableSchema*> local_tables;
    for (const auto& [written, local] : table_map) {
      MSQL_ASSIGN_OR_RETURN(const relational::TableSchema* schema,
                            gdd_->GetTable(db, local));
      local_tables.push_back(schema);
    }

    auto column_exists = [&](const std::string& name) {
      for (const auto* schema : local_tables) {
        if (schema->HasColumn(name)) return true;
      }
      return false;
    };

    // Column candidates under this table combination.
    std::vector<std::pair<std::string, std::vector<std::string>>> col_cands;
    bool combo_dead = false;
    for (const auto& [name, optional] : inventory.columns) {
      std::vector<std::string> cands;
      auto let_it = column_let.find(name);
      if (let_it != column_let.end()) {
        if (column_exists(let_it->second)) cands.push_back(let_it->second);
      } else if (HasWildcard(name)) {
        std::set<std::string> uniq;
        for (const auto* schema : local_tables) {
          for (const auto& m : schema->MatchColumns(name)) uniq.insert(m);
        }
        cands.assign(uniq.begin(), uniq.end());
      } else if (column_exists(name)) {
        cands.push_back(name);
      }
      if (cands.empty()) {
        if (optional) {
          cands.push_back("");  // dropped optional column
        } else {
          combo_dead = true;
          break;
        }
      }
      col_cands.emplace_back(name, std::move(cands));
    }
    if (combo_dead) continue;

    for (ComboIterator cols_it(col_cands); !cols_it.exhausted();
         cols_it.Advance()) {
      NameMap column_map = cols_it.Current();
      StatementPtr candidate = query.body->Clone();
      Status rewritten =
          RewriteIdentifiers(candidate.get(), table_map, column_map);
      if (!rewritten.ok()) continue;  // substitution not pertinent
      std::string sql = candidate->ToSql();
      if (pertinent_sql.insert(sql).second) {
        pertinent.push_back(std::move(candidate));
      }
    }
  }

  if (pertinent.empty()) return StatementPtr(nullptr);
  if (pertinent.size() > 1) {
    std::string alternatives;
    for (const auto& p : pertinent) alternatives += "\n  " + p->ToSql();
    return Status::InvalidArgument(
        "multiple query is ambiguous on database '" + db + "' — " +
        std::to_string(pertinent.size()) +
        " pertinent substitutions remain after disambiguation:" +
        alternatives);
  }
  return std::move(pertinent[0]);
}

}  // namespace msql::lang
