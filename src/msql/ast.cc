#include "msql/ast.h"

#include "common/string_util.h"

namespace msql::lang {

std::string UseClause::ToMsql() const {
  std::string out = "USE";
  if (current) out += " CURRENT";
  for (const auto& e : entries) {
    if (e.alias.empty()) {
      out += " " + e.database;
    } else {
      out += " (" + e.database + " " + e.alias + ")";
    }
    if (e.vital) out += " VITAL";
  }
  return out;
}

std::string LetBinding::ToMsql() const {
  std::string out = "LET " + Join(variable_path, ".") + " BE";
  for (const auto& target : targets) {
    out += " " + Join(target, ".");
  }
  return out;
}

std::string LetClause::ToMsql() const {
  std::string out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += "\n";
    out += bindings[i].ToMsql();
  }
  return out;
}

std::string CompClause::ToMsql() const {
  return "COMP " + database + " " + action->ToSql();
}

MsqlQuery MsqlQuery::CloneQuery() const {
  MsqlQuery out;
  out.use = use;
  out.let = let;
  out.body = body->Clone();
  out.comps.reserve(comps.size());
  for (const auto& c : comps) out.comps.push_back(c.CloneComp());
  return out;
}

std::string MsqlQuery::ToMsql() const {
  std::string out = use.ToMsql() + "\n";
  if (let.has_value()) out += let->ToMsql() + "\n";
  out += body->ToSql();
  for (const auto& c : comps) out += "\n" + c.ToMsql();
  return out;
}

std::string IncorporateStmt::ToMsql() const {
  auto word = [](bool autocommits) {
    return autocommits ? "COMMIT" : "NOCOMMIT";
  };
  std::string out = "INCORPORATE SERVICE " + service;
  if (!site.empty()) out += " SITE " + site;
  out += std::string(" CONNECTMODE ") +
         (connect_mode ? "CONNECT" : "NOCONNECT");
  out += std::string(" COMMITMODE ") + word(autocommit_only);
  out += std::string(" CREATE ") + word(create_autocommits);
  out += std::string(" INSERT ") + word(insert_autocommits);
  out += std::string(" DROP ") + word(drop_autocommits);
  return out;
}

std::string ImportStmt::ToMsql() const {
  std::string out = "IMPORT DATABASE " + database + " FROM SERVICE " +
                    service;
  if (table.has_value()) {
    out += " TABLE " + *table;
    if (!columns.empty()) out += " COLUMN " + Join(columns, " ");
  }
  if (view.has_value()) {
    out += " VIEW " + *view;
    if (!columns.empty() && !table.has_value()) {
      out += " COLUMN " + Join(columns, " ");
    }
  }
  return out;
}

std::string AnalyzeStmt::ToMsql() const {
  std::string out = "ANALYZE DATABASE " + database;
  if (table.has_value()) out += " TABLE " + *table;
  return out;
}

std::string CreateMultidatabaseStmt::ToMsql() const {
  return "CREATE MULTIDATABASE " + name + " (" + Join(members, " ") + ")";
}

std::string DropMultidatabaseStmt::ToMsql() const {
  return "DROP MULTIDATABASE " + name;
}

std::string CreateViewStmt::ToMsql() const {
  return "CREATE MULTIVIEW " + name + " AS\n" + definition->ToMsql();
}

std::string DropViewStmt::ToMsql() const {
  return "DROP MULTIVIEW " + name;
}

std::string_view TriggerEventName(TriggerEvent event) {
  switch (event) {
    case TriggerEvent::kUpdate: return "UPDATE";
    case TriggerEvent::kInsert: return "INSERT";
    case TriggerEvent::kDelete: return "DELETE";
  }
  return "UNKNOWN";
}

std::string CreateTriggerStmt::ToMsql() const {
  return "CREATE TRIGGER " + name + " ON " + database + "." + table +
         " AFTER " + std::string(TriggerEventName(event)) + " DO\n" +
         action->ToMsql();
}

std::string DropTriggerStmt::ToMsql() const {
  return "DROP TRIGGER " + name;
}

std::string AcceptableState::ToMsql() const {
  return Join(databases, " AND ");
}

std::string MultiTransaction::ToMsql() const {
  std::string out = "BEGIN MULTITRANSACTION\n";
  for (const auto& q : queries) out += q.ToMsql() + ";\n";
  out += "COMMIT\n";
  for (const auto& s : acceptable_states) out += "  " + s.ToMsql() + "\n";
  out += "END MULTITRANSACTION";
  return out;
}

}  // namespace msql::lang
