#ifndef MSQL_MSQL_DECOMPOSER_H_
#define MSQL_MSQL_DECOMPOSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mdbs/global_data_dictionary.h"
#include "msql/cost_model.h"
#include "relational/schema.h"
#include "relational/sql/ast.h"

namespace msql::lang {

/// Decomposition of a global fully-qualified query Q into SQL subqueries
/// q1..qn and a modified global query Q' (§4.3): each subquery is the
/// largest-possible local query for one database; its result is shipped
/// to the coordinator database as a temporary table; Q' joins the
/// temporary tables there.
struct Decomposition {
  struct SubQuery {
    std::string database;
    /// Temporary-table name the partial result materializes under at the
    /// coordinator.
    std::string temp_table;
    std::unique_ptr<relational::SelectStmt> select;
    /// Schema of the shipped partial result.
    relational::TableSchema temp_schema;

    // -- Semi-join movement (cost-based mode only) ----------------------
    /// When true, this subquery is reduced before shipping: the
    /// translator first runs `key_select` at `key_provider_db` (SELECT
    /// DISTINCT of the join key through that database's local filters),
    /// transfers the keys to this subquery's database as `key_table`,
    /// and `select` — already rewritten to join against `key_table` —
    /// ships only the matching rows to the coordinator.
    bool semi_join = false;
    std::string key_provider_db;
    std::string key_table;
    std::unique_ptr<relational::SelectStmt> key_select;
    relational::TableSchema key_schema;
  };
  std::vector<SubQuery> subqueries;
  /// "One of the LDBSs is designated as the coordinator and will
  /// evaluate the modified global query."
  std::string coordinator;
  std::unique_ptr<relational::SelectStmt> global_query;
  /// True when the coordinator/movement choices came from the cost
  /// model (fresh statistics were available for every involved table).
  bool cost_based = false;
  /// Deterministic cost breakdown of the chosen plan (or the reason the
  /// optimizer fell back to the paper heuristics). Empty when the
  /// cost-based mode is disabled entirely.
  std::string cost_text;
};

/// Query-graph decomposer for multidatabase joins ("joining of data that
/// reside in different databases", §2). WHERE conjuncts whose columns
/// all bind to one database are pushed into that database's subquery;
/// cross-database conjuncts stay in Q'.
///
/// Coordinator choice — the paper-heuristic path picks the database
/// contributing the most tables, breaking ties deterministically by
/// database name (first alphabetically); it never depends on FROM/USE
/// clause order or map iteration order. The cost-based path (enabled
/// via set_cost_based + a CostContext) instead picks the candidate
/// minimizing the estimated bytes·link cost of moving every partial
/// result to it, and additionally chooses per-subquery movement:
/// ship-whole vs. a semi-join-style key-filter transfer. Whenever any
/// involved table lacks fresh ANALYZE statistics the decomposer falls
/// back to the paper heuristics for the whole query, so behavior is
/// bit-identical to the legacy path until ANALYZE has run.
class Decomposer {
 public:
  explicit Decomposer(const mdbs::GlobalDataDictionary* gdd) : gdd_(gdd) {}

  /// Ablation knob: when false, single-database conjuncts are NOT pushed
  /// into the local subqueries — everything ships to the coordinator and
  /// filters there. Used to quantify the data-flow benefit of pushdown
  /// (experiment E11); defaults to true.
  void set_push_down_conjuncts(bool push_down) {
    push_down_conjuncts_ = push_down;
  }

  /// Enables cost-based coordinator/movement selection. Also requires a
  /// CostContext; without one the paper heuristics apply.
  void set_cost_based(bool cost_based) { cost_based_ = cost_based; }

  /// Borrowed cost inputs (statistics + topology + health snapshot);
  /// must outlive Decompose calls. nullptr disables costing.
  void set_cost_context(const CostContext* context) {
    cost_context_ = context;
  }

  /// True if the SELECT's FROM clause spans more than one database
  /// (every table ref must then carry an explicit database qualifier).
  static bool IsMultidatabase(const relational::SelectStmt& stmt);

  /// Decomposes `stmt`. Requirements: every FROM ref db-qualified, all
  /// schemas present in the GDD, no scalar subqueries (unsupported in
  /// cross-database joins), unqualified columns unambiguous.
  Result<Decomposition> Decompose(const relational::SelectStmt& stmt) const;

 private:
  const mdbs::GlobalDataDictionary* gdd_;
  bool push_down_conjuncts_ = true;
  bool cost_based_ = false;
  const CostContext* cost_context_ = nullptr;
};

}  // namespace msql::lang

#endif  // MSQL_MSQL_DECOMPOSER_H_
