#ifndef MSQL_MSQL_DECOMPOSER_H_
#define MSQL_MSQL_DECOMPOSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mdbs/global_data_dictionary.h"
#include "relational/schema.h"
#include "relational/sql/ast.h"

namespace msql::lang {

/// Decomposition of a global fully-qualified query Q into SQL subqueries
/// q1..qn and a modified global query Q' (§4.3): each subquery is the
/// largest-possible local query for one database; its result is shipped
/// to the coordinator database as a temporary table; Q' joins the
/// temporary tables there.
struct Decomposition {
  struct SubQuery {
    std::string database;
    /// Temporary-table name the partial result materializes under at the
    /// coordinator.
    std::string temp_table;
    std::unique_ptr<relational::SelectStmt> select;
    /// Schema of the shipped partial result.
    relational::TableSchema temp_schema;
  };
  std::vector<SubQuery> subqueries;
  /// "One of the LDBSs is designated as the coordinator and will
  /// evaluate the modified global query."
  std::string coordinator;
  std::unique_ptr<relational::SelectStmt> global_query;
};

/// Query-graph decomposer for multidatabase joins ("joining of data that
/// reside in different databases", §2). WHERE conjuncts whose columns
/// all bind to one database are pushed into that database's subquery;
/// cross-database conjuncts stay in Q'. The coordinator is the database
/// contributing the most tables (first alphabetically on ties) — a
/// data-flow heuristic in the spirit of §5's "optimization ... related
/// more to data flow control and parallelism".
class Decomposer {
 public:
  explicit Decomposer(const mdbs::GlobalDataDictionary* gdd) : gdd_(gdd) {}

  /// Ablation knob: when false, single-database conjuncts are NOT pushed
  /// into the local subqueries — everything ships to the coordinator and
  /// filters there. Used to quantify the data-flow benefit of pushdown
  /// (experiment E11); defaults to true.
  void set_push_down_conjuncts(bool push_down) {
    push_down_conjuncts_ = push_down;
  }

  /// True if the SELECT's FROM clause spans more than one database
  /// (every table ref must then carry an explicit database qualifier).
  static bool IsMultidatabase(const relational::SelectStmt& stmt);

  /// Decomposes `stmt`. Requirements: every FROM ref db-qualified, all
  /// schemas present in the GDD, no scalar subqueries (unsupported in
  /// cross-database joins), unqualified columns unambiguous.
  Result<Decomposition> Decompose(const relational::SelectStmt& stmt) const;

 private:
  const mdbs::GlobalDataDictionary* gdd_;
  bool push_down_conjuncts_ = true;
};

}  // namespace msql::lang

#endif  // MSQL_MSQL_DECOMPOSER_H_
