#ifndef MSQL_MSQL_EXPANDER_H_
#define MSQL_MSQL_EXPANDER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "mdbs/global_data_dictionary.h"
#include "msql/ast.h"

namespace msql::lang {

/// One per-database elementary query produced by multiple-identifier
/// substitution: plain SQL executable by that database's LDBMS.
struct ElementaryQuery {
  std::string database;        // real database name
  std::string effective_name;  // alias if the USE entry has one
  bool vital = false;
  relational::StatementPtr statement;
  /// The compensating action bound to this database, if any.
  relational::StatementPtr compensation;

  ElementaryQuery() = default;
  ElementaryQuery(const ElementaryQuery&) = delete;
  ElementaryQuery& operator=(const ElementaryQuery&) = delete;
  ElementaryQuery(ElementaryQuery&&) noexcept = default;
  ElementaryQuery& operator=(ElementaryQuery&&) noexcept = default;
};

/// Result of expanding one multiple query.
struct ExpansionResult {
  std::vector<ElementaryQuery> queries;
  /// Scope databases discarded during disambiguation (no pertinent
  /// substitution existed).
  std::vector<std::string> non_pertinent;
};

/// Expands MSQL multiple queries into elementary per-database queries
/// (§4.3 phases: multiple identifier substitution + disambiguation).
///
/// For each database of the USE scope, every multiple identifier is
/// given its candidate substitutions — LET targets for explicit semantic
/// variables, GDD wildcard matches for implicit ones ('%'), the literal
/// name otherwise — and the cartesian product of candidates is filtered
/// to the substitutions under which the query is *pertinent* (all tables
/// and all non-optional columns resolve). Optional columns ('~') that do
/// not resolve are dropped from that database's select list. Exactly one
/// pertinent substitution may remain per database (the paper assumes at
/// most one subquery per database); several is an ambiguity error, zero
/// discards the database.
class Expander {
 public:
  explicit Expander(const mdbs::GlobalDataDictionary* gdd) : gdd_(gdd) {}

  /// Expands `query`. The USE scope must already be resolved (no
  /// `current` indirection left) and every scope database known to the
  /// GDD. COMP clauses are attached to their elementary queries.
  Result<ExpansionResult> Expand(const MsqlQuery& query) const;

 private:
  /// Collected identifier occurrences of a statement.
  struct NameInventory {
    std::set<std::string> tables;
    /// column name → true if *every* occurrence is optional ('~').
    std::map<std::string, bool> columns;
  };

  /// One database's name mapping (written name → local name; an empty
  /// string marks a dropped optional column).
  struct NameSubstitution {
    std::map<std::string, std::string> tables;
    std::map<std::string, std::string> columns;
  };

  Status ExpandInto(const MsqlQuery& query, ExpansionResult* out) const;

  /// Produces the (at most one) pertinent elementary statement of
  /// `query.body` for scope entry `entry_index`; nullptr when the
  /// database is not pertinent.
  Result<relational::StatementPtr> ExpandForDatabase(
      const MsqlQuery& query, size_t entry_index,
      const NameInventory& inventory) const;

  const mdbs::GlobalDataDictionary* gdd_;
};

/// Walks `stmt` collecting table and column identifier occurrences at
/// every depth (subqueries included). Exposed for tests.
void CollectIdentifiers(const relational::Statement& stmt,
                        std::set<std::string>* tables,
                        std::map<std::string, bool>* columns);

/// Rewrites `stmt` in place under the given table/column name maps.
/// Unmapped names are left untouched. A column mapped to "" (dropped
/// optional) is removed from select lists; its use anywhere else is an
/// error. Select items that are rewritten column refs get their written
/// semantic name as output alias so multitable columns align.
Status RewriteIdentifiers(
    relational::Statement* stmt,
    const std::map<std::string, std::string>& table_map,
    const std::map<std::string, std::string>& column_map);

/// Output alias for a semantic identifier: LET variables keep their
/// name, '%' wildcards are stripped of '%' ("%code" → "code",
/// "flight%" → "flight", bare "%" → "col").
std::string SemanticAlias(const std::string& written_name);

}  // namespace msql::lang

#endif  // MSQL_MSQL_EXPANDER_H_
