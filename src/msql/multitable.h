#ifndef MSQL_MSQL_MULTITABLE_H_
#define MSQL_MSQL_MULTITABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/result_set.h"

namespace msql::lang {

/// The result of an MSQL multiple retrieval: "a multitable, which is a
/// set of two tables. These two tables are generated as partial results
/// by the accessed databases" (§2) — one ResultSet per contributing
/// database, kept separate because the databases are non-integrated.
struct Multitable {
  struct Element {
    std::string database;
    relational::ResultSet table;
  };
  std::vector<Element> elements;

  bool empty() const { return elements.empty(); }
  size_t size() const { return elements.size(); }

  /// Element for `database`, or nullptr.
  const Element* Find(const std::string& database) const;

  /// Total rows across all elements.
  size_t TotalRows() const;

  /// Rendering with one captioned table per database.
  std::string ToString() const;

  /// Merges the elements into a single table — the "merging them into
  /// the final result" step of §2, possible when semantic aliasing gave
  /// every element the same column list. A leading `mdb` column records
  /// each row's source database. Fails when the elements' column lists
  /// disagree (the multitable is then inherently non-integrable).
  Result<relational::ResultSet> Merge() const;
};

}  // namespace msql::lang

#endif  // MSQL_MSQL_MULTITABLE_H_
