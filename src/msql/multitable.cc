#include "msql/multitable.h"

#include "common/string_util.h"

namespace msql::lang {

const Multitable::Element* Multitable::Find(
    const std::string& database) const {
  for (const auto& element : elements) {
    if (EqualsIgnoreCase(element.database, database)) return &element;
  }
  return nullptr;
}

size_t Multitable::TotalRows() const {
  size_t total = 0;
  for (const auto& element : elements) total += element.table.rows.size();
  return total;
}

Result<relational::ResultSet> Multitable::Merge() const {
  relational::ResultSet merged;
  merged.columns.push_back("mdb");
  for (size_t i = 0; i < elements.size(); ++i) {
    const Element& element = elements[i];
    if (i == 0) {
      merged.columns.insert(merged.columns.end(),
                            element.table.columns.begin(),
                            element.table.columns.end());
    } else if (element.table.columns !=
               std::vector<std::string>(merged.columns.begin() + 1,
                                        merged.columns.end())) {
      return Status::InvalidArgument(
          "multitable elements have different column lists ('" +
          elements[0].database + "' vs '" + element.database +
          "'); the partial results cannot be merged");
    }
    for (const auto& row : element.table.rows) {
      relational::Row out;
      out.reserve(row.size() + 1);
      out.push_back(relational::Value::Text(element.database));
      out.insert(out.end(), row.begin(), row.end());
      merged.rows.push_back(std::move(out));
    }
  }
  return merged;
}

std::string Multitable::ToString() const {
  std::string out;
  for (const auto& element : elements) {
    out += "-- " + element.database + " --\n";
    out += element.table.ToString();
  }
  return out;
}

}  // namespace msql::lang
