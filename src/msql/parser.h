#ifndef MSQL_MSQL_PARSER_H_
#define MSQL_MSQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "msql/ast.h"
#include "relational/sql/parser.h"

namespace msql::lang {

/// Parser for extended MSQL.
///
/// Accepted top-level items:
///  * multiple queries: `USE ...` `[LET ... BE ...]` body `[COMP db q]...`
///    (a body without a USE inherits the session's current scope, which
///    the parser records as `use.current = true` with no entries);
///  * `INCORPORATE SERVICE ...`;
///  * `IMPORT DATABASE ... FROM SERVICE ...`;
///  * `BEGIN MULTITRANSACTION ... COMMIT <states> END MULTITRANSACTION`.
///
/// Acceptable states in the COMMIT clause are maximal AND-chains: in
/// `COMMIT continental AND national delta AND avis` the missing AND
/// between `national` and `delta` starts the second state, exactly as
/// the paper's line-per-state layout reads.
class MsqlParser {
 public:
  /// Parses a whole script (items optionally separated by ';').
  static Result<std::vector<MsqlInput>> ParseScript(std::string_view text);

  /// Parses exactly one input item.
  static Result<MsqlInput> ParseOne(std::string_view text);

 private:
  explicit MsqlParser(relational::TokenCursor* cursor)
      : cursor_(cursor), sql_parser_(cursor, MsqlSqlOptions()) {}

  static relational::ParseOptions MsqlSqlOptions() {
    relational::ParseOptions options;
    options.msql_extensions = true;
    return options;
  }

  Result<MsqlInput> ParseInput();
  Result<MsqlQuery> ParseQuery();
  Result<UseClause> ParseUse();
  Result<LetClause> ParseLet();
  Result<LetBinding> ParseLetBinding();
  Result<std::vector<std::string>> ParseDottedPath();
  Result<relational::StatementPtr> ParseBody();
  Result<IncorporateStmt> ParseIncorporate();
  Result<ImportStmt> ParseImport();
  Result<AnalyzeStmt> ParseAnalyze();
  Result<MultiTransaction> ParseMultiTransaction();
  Result<CreateMultidatabaseStmt> ParseCreateMultidatabase();
  Result<CreateViewStmt> ParseCreateView();
  Result<CreateTriggerStmt> ParseCreateTrigger();

  /// True if the upcoming token starts an MSQL query body.
  bool AtBodyStart() const;

  relational::TokenCursor* cursor_;
  relational::SqlParser sql_parser_;
};

}  // namespace msql::lang

#endif  // MSQL_MSQL_PARSER_H_
