#include "msql/cost_model.h"

#include <algorithm>

namespace msql::lang {

const TableCostStats* CostContext::FindStats(
    const std::string& database, const std::string& table) const {
  auto it = stats.find({database, table});
  return it == stats.end() ? nullptr : &it->second;
}

const LinkCost& CostContext::LinkBetween(const std::string& from_site,
                                         const std::string& to_site) const {
  auto it = links.find({from_site, to_site});
  return it == links.end() ? default_link : it->second;
}

double CostContext::HopMicros(const std::string& database,
                              double bytes) const {
  auto site_it = site_of_db.find(database);
  const std::string site =
      site_it == site_of_db.end() ? std::string() : site_it->second;
  const LinkCost& link = LinkBetween(site, mdbs_site);
  double latency = static_cast<double>(link.latency_micros);
  auto obs_it = observed_latency_micros.find(database);
  if (obs_it != observed_latency_micros.end()) {
    latency = std::max(latency, obs_it->second);
  }
  return latency +
         bytes * static_cast<double>(link.micros_per_kb) / 1024.0;
}

double CostContext::ShipMicros(const std::string& from_db,
                               const std::string& to_db,
                               double bytes) const {
  return HopMicros(from_db, bytes) + HopMicros(to_db, bytes);
}

}  // namespace msql::lang
