#ifndef MSQL_MSQL_AST_H_
#define MSQL_MSQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/sql/ast.h"

namespace msql::lang {

/// One database in a USE scope: `name [alias] [VITAL]` (§3.2.1).
struct UseEntry {
  std::string database;
  std::string alias;  // optional; unique handle inside a multitransaction
  bool vital = false;
  int line = 0;    // 1-based position of the database token
  int column = 0;  // (0 when synthesized, e.g. USE CURRENT merges)

  /// Name the entry is referenced by (alias if present).
  const std::string& EffectiveName() const {
    return alias.empty() ? database : alias;
  }
};

/// USE [CURRENT] db [alias] [VITAL] ... — defines the query scope.
struct UseClause {
  bool current = false;  // USE CURRENT keeps the previous scope's entries
  std::vector<UseEntry> entries;

  std::string ToMsql() const;
};

/// One explicit semantic variable declaration:
///   LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
/// The variable path's first component names a table variable and the
/// remaining components name column variables; each BE target supplies,
/// positionally for each database of the USE scope, the local names.
struct LetBinding {
  std::vector<std::string> variable_path;
  std::vector<std::vector<std::string>> targets;  // one per USE entry
  int line = 0;    // 1-based position of the semantic-variable token
  int column = 0;

  std::string ToMsql() const;
};

/// LET clause: one or more bindings.
struct LetClause {
  std::vector<LetBinding> bindings;

  std::string ToMsql() const;
};

/// COMP <database|alias> <compensating subquery> (§3.3): a user-supplied
/// semantic undo for a VITAL database without 2PC.
struct CompClause {
  std::string database;  // database name or alias in the current scope
  relational::StatementPtr action;
  int line = 0;    // 1-based position of the database token
  int column = 0;

  CompClause() = default;
  CompClause(std::string db, relational::StatementPtr a)
      : database(std::move(db)), action(std::move(a)) {}
  CompClause CloneComp() const {
    CompClause copy(database, action->Clone());
    copy.line = line;
    copy.column = column;
    return copy;
  }
  std::string ToMsql() const;
};

/// One MSQL *multiple query*: scope + semantic variables + an SQL body
/// that may contain multiple identifiers, plus compensating actions.
struct MsqlQuery {
  UseClause use;
  std::optional<LetClause> let;
  relational::StatementPtr body;
  std::vector<CompClause> comps;

  MsqlQuery CloneQuery() const;
  std::string ToMsql() const;
};

/// INCORPORATE SERVICE ... (§3.1).
struct IncorporateStmt {
  std::string service;
  std::string site;
  bool connect_mode = true;     // CONNECTMODE CONNECT | NOCONNECT
  bool autocommit_only = false;  // COMMITMODE COMMIT | NOCOMMIT
  bool create_autocommits = false;
  bool insert_autocommits = false;
  bool drop_autocommits = false;

  std::string ToMsql() const;
};

/// IMPORT DATABASE ... FROM SERVICE ...
///   [TABLE t [COLUMN c...]] [VIEW v [COLUMN c...]] (§3.1).
struct ImportStmt {
  std::string database;
  std::string service;
  std::optional<std::string> table;
  std::optional<std::string> view;
  std::vector<std::string> columns;

  std::string ToMsql() const;
};

/// ANALYZE DATABASE <db> [TABLE <t>] — gathers per-table/per-column
/// statistics (row counts, distinct values, min/max, average tuple
/// bytes) from the database's local engine into the GDD statistics
/// catalog, for the cost-based distributed optimizer.
struct AnalyzeStmt {
  std::string database;
  std::optional<std::string> table;

  std::string ToMsql() const;
};

/// CREATE MULTIDATABASE <name> ( <db> [,] <db> ... ) — defines a virtual
/// database aggregating existing ones; USE <name> then stands for its
/// members ("creation and manipulation of ... virtual databases", §2).
struct CreateMultidatabaseStmt {
  std::string name;
  std::vector<std::string> members;

  std::string ToMsql() const;
};

/// DROP MULTIDATABASE <name>.
struct DropMultidatabaseStmt {
  std::string name;

  std::string ToMsql() const;
};

/// CREATE MULTIVIEW <name> AS <multiple query> — a multidatabase view:
/// a stored multiple query whose multitable result can be further
/// queried with `SELECT ... FROM <name>` ("creation and manipulation of
/// multidatabase views", §2).
struct CreateViewStmt {
  std::string name;
  /// Deliberately heap-held: MsqlQuery is move-only through its body.
  std::shared_ptr<MsqlQuery> definition;

  std::string ToMsql() const;
};

/// DROP MULTIVIEW <name>.
struct DropViewStmt {
  std::string name;

  std::string ToMsql() const;
};

/// Interdatabase trigger event.
enum class TriggerEvent { kUpdate, kInsert, kDelete };

std::string_view TriggerEventName(TriggerEvent event);

/// CREATE TRIGGER <name> ON <db>.<table> AFTER UPDATE|INSERT|DELETE DO
/// <multiple query> — when a multidatabase query commits a matching
/// statement on <db>.<table>, the action query runs afterwards
/// ("definition of interdatabase triggers", §2). The action must carry
/// its own USE scope.
struct CreateTriggerStmt {
  std::string name;
  std::string database;
  std::string table;
  TriggerEvent event = TriggerEvent::kUpdate;
  std::shared_ptr<MsqlQuery> action;

  std::string ToMsql() const;
};

/// DROP TRIGGER <name>.
struct DropTriggerStmt {
  std::string name;

  std::string ToMsql() const;
};

/// One acceptable termination state: conjunction of database names or
/// aliases whose subqueries must have succeeded (§3.4).
struct AcceptableState {
  std::vector<std::string> databases;

  std::string ToMsql() const;
};

/// BEGIN MULTITRANSACTION <queries> COMMIT <states> END MULTITRANSACTION.
struct MultiTransaction {
  std::vector<MsqlQuery> queries;
  /// Checked in order; the first reachable state wins.
  std::vector<AcceptableState> acceptable_states;

  std::string ToMsql() const;
};

/// A top-level MSQL input item.
struct MsqlInput {
  enum class Kind {
    kQuery,
    kMultiTransaction,
    kIncorporate,
    kImport,
    kAnalyze,
    kCreateMultidatabase,
    kDropMultidatabase,
    kCreateView,
    kDropView,
    kCreateTrigger,
    kDropTrigger,
  };
  Kind kind = Kind::kQuery;
  // Exactly one of these is populated, per `kind`.
  std::optional<MsqlQuery> query;
  std::optional<MultiTransaction> multitransaction;
  std::optional<IncorporateStmt> incorporate;
  std::optional<ImportStmt> import;
  std::optional<AnalyzeStmt> analyze;
  std::optional<CreateMultidatabaseStmt> create_multidatabase;
  std::optional<DropMultidatabaseStmt> drop_multidatabase;
  std::optional<CreateViewStmt> create_view;
  std::optional<DropViewStmt> drop_view;
  std::optional<CreateTriggerStmt> create_trigger;
  std::optional<DropTriggerStmt> drop_trigger;
};

}  // namespace msql::lang

#endif  // MSQL_MSQL_AST_H_
