#ifndef MSQL_DOL_PARSER_H_
#define MSQL_DOL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dol/ast.h"
#include "relational/sql/parser.h"

namespace msql::dol {

/// Parses a DOL program:
///
///   DOLBEGIN
///     OPEN <db> AT <service> AS <alias>;
///     TASK <t> [NOCOMMIT] FOR <alias> { sql }
///       [COMPENSATION { sql }] ENDTASK;
///     PARBEGIN <stmts> PAREND;
///     IF (t1=P) AND (t3=P) THEN BEGIN ... END; ELSE BEGIN ... END;
///     COMMIT t1, t3;  ABORT t1;  COMPENSATE t1;
///     TRANSFER t1 TO coord TABLE tmp (col TYPE, ...);
///     DOLSTATUS = 0;
///     CLOSE cont delta;
///   DOLEND
///
/// Braced SQL bodies are captured as text (tokens re-rendered), so a
/// program printed by DolProgram::ToDol round-trips through this parser.
Result<DolProgram> ParseDol(std::string_view text);

/// Re-renders a token slice to SQL text (used for `{ ... }` bodies).
std::string RenderTokens(const std::vector<relational::Token>& tokens);

}  // namespace msql::dol

#endif  // MSQL_DOL_PARSER_H_
