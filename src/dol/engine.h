#ifndef MSQL_DOL_ENGINE_H_
#define MSQL_DOL_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dol/ast.h"
#include "dol/task.h"
#include "netsim/environment.h"
#include "relational/result_set.h"

namespace msql::dol {

/// Retry discipline of the coordinator (simulated-clock semantics).
///
/// Undelivered failures (transient rejections, unreachable sites) are
/// re-sent up to `max_attempts` times with exponential backoff charged
/// to the simulated clock. Timed-out calls are *not* blindly re-sent —
/// the request may have been executed — except for idempotent probe
/// verbs; commit/prepare timeouts are instead resolved through a
/// kQueryTxnState re-probe when `reprobe_on_timeout` is set, which is
/// what keeps a lost commit ACK from being declared incorrect.
struct RetryPolicy {
  /// Total send attempts per call (1 = no retry).
  int max_attempts = 1;
  /// Backoff before the first re-send.
  int64_t initial_backoff_micros = 1000;
  /// Multiplier applied to the backoff after every re-send.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  int64_t max_backoff_micros = 64000;
  /// Resolve commit/prepare timeouts by re-probing the transaction
  /// state instead of assuming failure.
  bool reprobe_on_timeout = true;

  /// No retries, no re-probing: every fault is taken at face value.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    p.reprobe_on_timeout = false;
    return p;
  }
  /// `attempts` sends with default backoff, re-probing enabled.
  static RetryPolicy WithAttempts(int attempts) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }
};

/// Final record of one task's execution.
struct TaskOutcome {
  std::string name;
  /// Service and database of the channel the task ran on (from the
  /// OPEN the task's alias resolved to) — what the profiler joins task
  /// rows to sites with.
  std::string service;
  std::string database;
  DolTaskState state = DolTaskState::kNotRun;
  /// Failure detail of the last operation that aborted the task (OK for
  /// clean runs).
  Status last_status;
  /// Retrieval result (SELECT tasks) or rows-affected (DML tasks).
  relational::ResultSet result;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
};

/// Result of running one DOL program.
struct DolRunResult {
  /// Value of DOLSTATUS when the program ended (0 = success by the
  /// convention of the §4.3 listing; the translator uses 0 = committed,
  /// 1 = aborted, 2 = incorrect).
  int dol_status = 0;
  std::map<std::string, TaskOutcome> tasks;
  /// Simulated makespan of the whole program.
  int64_t makespan_micros = 0;
  /// Network traffic incurred by this run alone, summed from the per-call
  /// accounting (NOT a delta of the global network counters, which would
  /// misattribute any unrelated traffic on the same environment).
  int64_t messages = 0;
  int64_t bytes = 0;
  /// Re-sends performed under the retry policy (0 for clean runs).
  int64_t retries = 0;
  /// Re-probes (kQueryTxnState) issued to resolve timed-out calls.
  int64_t reprobes = 0;
  /// Channels whose OPEN failed, with the failure detail — previously a
  /// poisoned channel was silent and degraded runs were undiagnosable.
  std::map<std::string, Status> failed_channels;

  const TaskOutcome* FindTask(const std::string& name) const;

  /// Human-readable run trace: per-task state, failure detail and
  /// simulated interval, plus the program totals.
  std::string ToString() const;
};

/// Interpreter for DOL programs against the simulated multi-system
/// environment (the role Narada's engine plays in Figure 1).
///
/// Timeline semantics: statements execute sequentially on a simulated
/// clock; a PARBEGIN block forks the clock — every contained statement
/// starts at the block's start time and the block completes at the
/// latest end time, which is how the engine exposes the parallelism the
/// paper attributes its optimization opportunities to.
///
/// Failure semantics: a failed OPEN poisons its channel (tasks targeting
/// it abort rather than erroring the program); any failed local
/// operation aborts its task; condition logic in the plan decides what
/// happens next. Only protocol violations (committing an aborted task,
/// compensating a task without a COMPENSATION block) and compensation
/// failures abort the whole program with an error, since no sound plan
/// reaches them.
class DolEngine {
 public:
  explicit DolEngine(netsim::Environment* env, RetryPolicy policy = {})
      : env_(env), policy_(policy) {}
  ~DolEngine() { AbandonRun(); }

  DolEngine(const DolEngine&) = delete;
  DolEngine& operator=(const DolEngine&) = delete;

  const RetryPolicy& retry_policy() const { return policy_; }

  /// Runs `program` from simulated time 0. The engine is reusable: all
  /// per-run state (channels, tasks, compensations, counters, status)
  /// is reset at entry, so one engine instance can run a sequence of
  /// programs without leaking prior-run state into the next result.
  ///
  /// Implemented on top of the stepper below — BeginRun, then a loop
  /// that services each pending RPC against the environment in program
  /// order, which reproduces the pre-stepper run-to-completion
  /// interpreter operation for operation.
  Result<DolRunResult> Run(const DolProgram& program);

  // -- Resumable stepper (DESIGN.md §12) ---------------------------------
  //
  // A run is a cooperative task: the interpreter executes until it needs
  // a remote call, then parks with that call exposed through pending().
  // The driver (Run above, or the concurrent federation scheduler)
  // decides when and with what outcome the call completes and resumes
  // the run with Deliver. At most one RPC is pending per engine — DOL
  // PARBEGIN keeps its forked-clock semantics (every branch starts at
  // the block's start time), so branches are *stepped* sequentially
  // while their simulated intervals overlap.

  /// One remote call the parked run is waiting on.
  struct PendingRpc {
    std::string service;
    netsim::LamRequest request;
    /// Simulated time the coordinator issues the call.
    int64_t at = 0;
  };

  /// Starts `program` at simulated time `start_micros` and executes up
  /// to the first pending RPC (or to completion for programs that never
  /// call out). `program` must outlive the run. Fails if a run is
  /// already in flight.
  Status BeginRun(const DolProgram& program, int64_t start_micros = 0);

  /// A run has been started and not yet collected with TakeResult.
  bool running() const { return running_; }
  /// The run finished (TakeResult is ready).
  bool done() const { return running_ && root_ && root_->Done(); }
  /// The RPC the run is parked on (nullptr when !running or done).
  const PendingRpc* pending() const {
    return pending_ ? &pending_->rpc : nullptr;
  }

  /// Resumes the parked run with the outcome of its pending call;
  /// afterwards the engine is either done() or parked on a new RPC.
  void Deliver(Result<netsim::CallOutcome> outcome);

  /// Collects the finished run's result and ends the run.
  Result<DolRunResult> TakeResult();

  /// Drops an in-flight run (frames unwound, no result). No-op when no
  /// run is active.
  void AbandonRun();

 private:
  struct Channel {
    std::string service;
    std::string database;
    relational::SessionId session = 0;
    bool failed = false;     // OPEN failed or channel closed
    Status open_status;      // failure detail
  };

  /// Awaiting this parks the run and exposes the call via pending();
  /// Deliver fills `outcome` and resumes.
  struct RpcAwaiter {
    DolEngine* engine;
    PendingRpc rpc;
    std::optional<Result<netsim::CallOutcome>> outcome;

    bool await_ready() { return false; }
    void await_suspend(std::coroutine_handle<> handle);
    Result<netsim::CallOutcome> await_resume() {
      return std::move(*outcome);
    }
  };

  /// The parked run: the continuation to resume and the awaiter slot the
  /// delivered outcome goes into.
  struct PendingState {
    PendingRpc rpc;
    std::coroutine_handle<> continuation;
    RpcAwaiter* awaiter = nullptr;
  };

  /// Clears every piece of per-run state; called at the top of BeginRun.
  void ResetRunState();

  /// Root coroutine of one run: the statement loop of the pre-stepper
  /// Run, ending at the program's final simulated time.
  DolTask<int64_t> RunProgram(const DolProgram& program);

  /// Executes one statement starting at `at`; returns its end time.
  DolTask<int64_t> ExecStmt(const DolStmt& stmt, int64_t at);

  DolTask<int64_t> ExecOpen(const OpenStmt& stmt, int64_t at);
  /// Best-effort rollback of a channel's possibly-open transaction after
  /// a timed-out call; returns the rollback's end time.
  DolTask<int64_t> DrainTxn(Channel* channel, int64_t when);
  DolTask<int64_t> ExecTask(const TaskStmt& stmt, int64_t at);
  DolTask<int64_t> ExecParallel(const ParallelStmt& stmt, int64_t at);
  DolTask<int64_t> ExecIf(const IfStmt& stmt, int64_t at);
  DolTask<int64_t> ExecCommit(const CommitStmt& stmt, int64_t at);
  DolTask<int64_t> ExecAbort(const AbortStmt& stmt, int64_t at);
  DolTask<int64_t> ExecCompensate(const CompensateStmt& stmt, int64_t at);
  DolTask<int64_t> ExecTransfer(const TransferStmt& stmt, int64_t at);
  DolTask<int64_t> ExecClose(const CloseStmt& stmt, int64_t at);

  Result<bool> EvalCond(const DolCond& cond) const;

  Result<Channel*> FindChannel(const std::string& alias);
  Result<TaskOutcome*> FindTask(const std::string& name);

  /// One RPC to `service` under the retry policy: undelivered
  /// kUnavailable failures (rejections, down sites) are re-sent with
  /// backoff; timeouts are returned to the caller for verb-specific
  /// handling, except idempotent probe verbs which retry too. Returns
  /// the final outcome (end time in timing). `attempt_base` numbers the
  /// first send of this call in its logical operation, so the rpc spans
  /// of verb-level re-send loops (prepare/commit) keep counting up
  /// instead of restarting at 1.
  DolTask<netsim::CallOutcome> CallService(
      const std::string& service, const netsim::LamRequest& request,
      int64_t at, int attempt_base = 1);

  /// CallService on a channel's service.
  DolTask<netsim::CallOutcome> Call(Channel* channel,
                                    const netsim::LamRequest& request,
                                    int64_t at, int attempt_base = 1);

  /// Resolves a timed-out prepare/commit by re-probing the session's
  /// transaction state; returns the observed state (kActive when the
  /// probe itself could not be resolved, flagged via `probe_failed`).
  DolTask<relational::TxnState> Reprobe(Channel* channel, int64_t* now,
                                        bool* probe_failed);

  netsim::Environment* env_;
  RetryPolicy policy_;
  /// Stepper state of the in-flight run.
  std::optional<DolTask<int64_t>> root_;
  std::optional<PendingState> pending_;
  bool running_ = false;
  int64_t run_start_micros_ = 0;
  int64_t retries_ = 0;
  int64_t reprobes_ = 0;
  /// Traffic of the current run, summed from CallOutcome accounting.
  int64_t run_messages_ = 0;
  int64_t run_bytes_ = 0;
  std::map<std::string, Channel> channels_;
  std::map<std::string, TaskOutcome> tasks_;
  /// task name → alias of the channel it ran on.
  std::map<std::string, std::string> task_channel_;
  /// task name → declared COMPENSATION SQL ("" = none).
  std::map<std::string, std::string> compensations_;
  int dol_status_ = 0;
};

}  // namespace msql::dol

#endif  // MSQL_DOL_ENGINE_H_
