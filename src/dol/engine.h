#ifndef MSQL_DOL_ENGINE_H_
#define MSQL_DOL_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dol/ast.h"
#include "netsim/environment.h"
#include "relational/result_set.h"

namespace msql::dol {

/// Retry discipline of the coordinator (simulated-clock semantics).
///
/// Undelivered failures (transient rejections, unreachable sites) are
/// re-sent up to `max_attempts` times with exponential backoff charged
/// to the simulated clock. Timed-out calls are *not* blindly re-sent —
/// the request may have been executed — except for idempotent probe
/// verbs; commit/prepare timeouts are instead resolved through a
/// kQueryTxnState re-probe when `reprobe_on_timeout` is set, which is
/// what keeps a lost commit ACK from being declared incorrect.
struct RetryPolicy {
  /// Total send attempts per call (1 = no retry).
  int max_attempts = 1;
  /// Backoff before the first re-send.
  int64_t initial_backoff_micros = 1000;
  /// Multiplier applied to the backoff after every re-send.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  int64_t max_backoff_micros = 64000;
  /// Resolve commit/prepare timeouts by re-probing the transaction
  /// state instead of assuming failure.
  bool reprobe_on_timeout = true;

  /// No retries, no re-probing: every fault is taken at face value.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    p.reprobe_on_timeout = false;
    return p;
  }
  /// `attempts` sends with default backoff, re-probing enabled.
  static RetryPolicy WithAttempts(int attempts) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }
};

/// Final record of one task's execution.
struct TaskOutcome {
  std::string name;
  /// Service and database of the channel the task ran on (from the
  /// OPEN the task's alias resolved to) — what the profiler joins task
  /// rows to sites with.
  std::string service;
  std::string database;
  DolTaskState state = DolTaskState::kNotRun;
  /// Failure detail of the last operation that aborted the task (OK for
  /// clean runs).
  Status last_status;
  /// Retrieval result (SELECT tasks) or rows-affected (DML tasks).
  relational::ResultSet result;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
};

/// Result of running one DOL program.
struct DolRunResult {
  /// Value of DOLSTATUS when the program ended (0 = success by the
  /// convention of the §4.3 listing; the translator uses 0 = committed,
  /// 1 = aborted, 2 = incorrect).
  int dol_status = 0;
  std::map<std::string, TaskOutcome> tasks;
  /// Simulated makespan of the whole program.
  int64_t makespan_micros = 0;
  /// Network traffic incurred by this run alone, summed from the per-call
  /// accounting (NOT a delta of the global network counters, which would
  /// misattribute any unrelated traffic on the same environment).
  int64_t messages = 0;
  int64_t bytes = 0;
  /// Re-sends performed under the retry policy (0 for clean runs).
  int64_t retries = 0;
  /// Re-probes (kQueryTxnState) issued to resolve timed-out calls.
  int64_t reprobes = 0;
  /// Channels whose OPEN failed, with the failure detail — previously a
  /// poisoned channel was silent and degraded runs were undiagnosable.
  std::map<std::string, Status> failed_channels;

  const TaskOutcome* FindTask(const std::string& name) const;

  /// Human-readable run trace: per-task state, failure detail and
  /// simulated interval, plus the program totals.
  std::string ToString() const;
};

/// Interpreter for DOL programs against the simulated multi-system
/// environment (the role Narada's engine plays in Figure 1).
///
/// Timeline semantics: statements execute sequentially on a simulated
/// clock; a PARBEGIN block forks the clock — every contained statement
/// starts at the block's start time and the block completes at the
/// latest end time, which is how the engine exposes the parallelism the
/// paper attributes its optimization opportunities to.
///
/// Failure semantics: a failed OPEN poisons its channel (tasks targeting
/// it abort rather than erroring the program); any failed local
/// operation aborts its task; condition logic in the plan decides what
/// happens next. Only protocol violations (committing an aborted task,
/// compensating a task without a COMPENSATION block) and compensation
/// failures abort the whole program with an error, since no sound plan
/// reaches them.
class DolEngine {
 public:
  explicit DolEngine(netsim::Environment* env, RetryPolicy policy = {})
      : env_(env), policy_(policy) {}

  const RetryPolicy& retry_policy() const { return policy_; }

  /// Runs `program` from simulated time 0. The engine is reusable: all
  /// per-run state (channels, tasks, compensations, counters, status)
  /// is reset at entry, so one engine instance can run a sequence of
  /// programs without leaking prior-run state into the next result.
  Result<DolRunResult> Run(const DolProgram& program);

 private:
  struct Channel {
    std::string service;
    std::string database;
    relational::SessionId session = 0;
    bool failed = false;     // OPEN failed or channel closed
    Status open_status;      // failure detail
  };

  /// Clears every piece of per-run state; called at the top of Run.
  void ResetRunState();

  /// Executes one statement starting at `at`; returns its end time.
  Result<int64_t> ExecStmt(const DolStmt& stmt, int64_t at);

  Result<int64_t> ExecOpen(const OpenStmt& stmt, int64_t at);
  Result<int64_t> ExecTask(const TaskStmt& stmt, int64_t at);
  Result<int64_t> ExecParallel(const ParallelStmt& stmt, int64_t at);
  Result<int64_t> ExecIf(const IfStmt& stmt, int64_t at);
  Result<int64_t> ExecCommit(const CommitStmt& stmt, int64_t at);
  Result<int64_t> ExecAbort(const AbortStmt& stmt, int64_t at);
  Result<int64_t> ExecCompensate(const CompensateStmt& stmt, int64_t at);
  Result<int64_t> ExecTransfer(const TransferStmt& stmt, int64_t at);
  Result<int64_t> ExecClose(const CloseStmt& stmt, int64_t at);

  Result<bool> EvalCond(const DolCond& cond) const;

  Result<Channel*> FindChannel(const std::string& alias);
  Result<TaskOutcome*> FindTask(const std::string& name);

  /// One RPC to `service` under the retry policy: undelivered
  /// kUnavailable failures (rejections, down sites) are re-sent with
  /// backoff; timeouts are returned to the caller for verb-specific
  /// handling, except idempotent probe verbs which retry too. Returns
  /// the final outcome (end time in timing). `attempt_base` numbers the
  /// first send of this call in its logical operation, so the rpc spans
  /// of verb-level re-send loops (prepare/commit) keep counting up
  /// instead of restarting at 1.
  Result<netsim::CallOutcome> CallService(
      const std::string& service, const netsim::LamRequest& request,
      int64_t at, int attempt_base = 1);

  /// CallService on a channel's service.
  Result<netsim::CallOutcome> Call(Channel* channel,
                                   const netsim::LamRequest& request,
                                   int64_t at, int attempt_base = 1);

  /// Resolves a timed-out prepare/commit by re-probing the session's
  /// transaction state; returns the observed state (kActive when the
  /// probe itself could not be resolved, flagged via `probe_failed`).
  Result<relational::TxnState> Reprobe(Channel* channel, int64_t* now,
                                       bool* probe_failed);

  netsim::Environment* env_;
  RetryPolicy policy_;
  int64_t retries_ = 0;
  int64_t reprobes_ = 0;
  /// Traffic of the current run, summed from CallOutcome accounting.
  int64_t run_messages_ = 0;
  int64_t run_bytes_ = 0;
  std::map<std::string, Channel> channels_;
  std::map<std::string, TaskOutcome> tasks_;
  /// task name → alias of the channel it ran on.
  std::map<std::string, std::string> task_channel_;
  /// task name → declared COMPENSATION SQL ("" = none).
  std::map<std::string, std::string> compensations_;
  int dol_status_ = 0;
};

}  // namespace msql::dol

#endif  // MSQL_DOL_ENGINE_H_
