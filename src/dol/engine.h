#ifndef MSQL_DOL_ENGINE_H_
#define MSQL_DOL_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dol/ast.h"
#include "netsim/environment.h"
#include "relational/result_set.h"

namespace msql::dol {

/// Final record of one task's execution.
struct TaskOutcome {
  std::string name;
  DolTaskState state = DolTaskState::kNotRun;
  /// Failure detail of the last operation that aborted the task (OK for
  /// clean runs).
  Status last_status;
  /// Retrieval result (SELECT tasks) or rows-affected (DML tasks).
  relational::ResultSet result;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
};

/// Result of running one DOL program.
struct DolRunResult {
  /// Value of DOLSTATUS when the program ended (0 = success by the
  /// convention of the §4.3 listing; the translator uses 0 = committed,
  /// 1 = aborted, 2 = incorrect).
  int dol_status = 0;
  std::map<std::string, TaskOutcome> tasks;
  /// Simulated makespan of the whole program.
  int64_t makespan_micros = 0;
  /// Network traffic incurred by this run.
  int64_t messages = 0;
  int64_t bytes = 0;

  const TaskOutcome* FindTask(const std::string& name) const;

  /// Human-readable run trace: per-task state, failure detail and
  /// simulated interval, plus the program totals.
  std::string ToString() const;
};

/// Interpreter for DOL programs against the simulated multi-system
/// environment (the role Narada's engine plays in Figure 1).
///
/// Timeline semantics: statements execute sequentially on a simulated
/// clock; a PARBEGIN block forks the clock — every contained statement
/// starts at the block's start time and the block completes at the
/// latest end time, which is how the engine exposes the parallelism the
/// paper attributes its optimization opportunities to.
///
/// Failure semantics: a failed OPEN poisons its channel (tasks targeting
/// it abort rather than erroring the program); any failed local
/// operation aborts its task; condition logic in the plan decides what
/// happens next. Only protocol violations (committing an aborted task,
/// compensating a task without a COMPENSATION block) and compensation
/// failures abort the whole program with an error, since no sound plan
/// reaches them.
class DolEngine {
 public:
  explicit DolEngine(netsim::Environment* env) : env_(env) {}

  /// Runs `program` from simulated time 0.
  Result<DolRunResult> Run(const DolProgram& program);

 private:
  struct Channel {
    std::string service;
    std::string database;
    relational::SessionId session = 0;
    bool failed = false;     // OPEN failed or channel closed
    Status open_status;      // failure detail
  };

  /// Executes one statement starting at `at`; returns its end time.
  Result<int64_t> ExecStmt(const DolStmt& stmt, int64_t at);

  Result<int64_t> ExecOpen(const OpenStmt& stmt, int64_t at);
  Result<int64_t> ExecTask(const TaskStmt& stmt, int64_t at);
  Result<int64_t> ExecParallel(const ParallelStmt& stmt, int64_t at);
  Result<int64_t> ExecIf(const IfStmt& stmt, int64_t at);
  Result<int64_t> ExecCommit(const CommitStmt& stmt, int64_t at);
  Result<int64_t> ExecAbort(const AbortStmt& stmt, int64_t at);
  Result<int64_t> ExecCompensate(const CompensateStmt& stmt, int64_t at);
  Result<int64_t> ExecTransfer(const TransferStmt& stmt, int64_t at);
  Result<int64_t> ExecClose(const CloseStmt& stmt, int64_t at);

  Result<bool> EvalCond(const DolCond& cond) const;

  Result<Channel*> FindChannel(const std::string& alias);
  Result<TaskOutcome*> FindTask(const std::string& name);

  /// One RPC on a channel; returns the outcome (end time in timing).
  Result<netsim::CallOutcome> Call(Channel* channel,
                                   const netsim::LamRequest& request,
                                   int64_t at);

  netsim::Environment* env_;
  std::map<std::string, Channel> channels_;
  std::map<std::string, TaskOutcome> tasks_;
  /// task name → alias of the channel it ran on.
  std::map<std::string, std::string> task_channel_;
  /// task name → declared COMPENSATION SQL ("" = none).
  std::map<std::string, std::string> compensations_;
  int dol_status_ = 0;
};

}  // namespace msql::dol

#endif  // MSQL_DOL_ENGINE_H_
