#include "dol/engine.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "obs/trace.h"

namespace msql::dol {

using netsim::CallOutcome;
using netsim::LamRequest;
using netsim::LamRequestType;
using relational::TxnState;

namespace {

/// Verbs safe to re-send after a timeout: re-execution is harmless even
/// when the lost call was actually delivered. Everything else may have
/// changed local state, so a timeout must be resolved, not re-sent.
bool RetryableOnTimeout(LamRequestType type) {
  switch (type) {
    case LamRequestType::kPing:
    case LamRequestType::kQueryTxnState:
    case LamRequestType::kDescribe:
    case LamRequestType::kDescribeView:
    case LamRequestType::kOpenSession:
    case LamRequestType::kCloseSession:
      return true;
    default:
      return false;
  }
}

}  // namespace

const TaskOutcome* DolRunResult::FindTask(const std::string& name) const {
  auto it = tasks.find(ToLower(name));
  return it == tasks.end() ? nullptr : &it->second;
}

std::string DolRunResult::ToString() const {
  std::string out = "DOLSTATUS=" + std::to_string(dol_status) +
                    " makespan=" + std::to_string(makespan_micros) +
                    "us messages=" + std::to_string(messages) +
                    " bytes=" + std::to_string(bytes);
  if (retries > 0 || reprobes > 0) {
    out += " retries=" + std::to_string(retries) +
           " reprobes=" + std::to_string(reprobes);
  }
  out += "\n";
  for (const auto& [alias, status] : failed_channels) {
    out += "  channel " + alias + ": OPEN FAILED (" + status.ToString() +
           ")\n";
  }
  for (const auto& [name, task] : tasks) {
    out += "  " + name + ": " + std::string(DolTaskStateName(task.state)) +
           " [" + std::to_string(task.start_micros) + "us, " +
           std::to_string(task.end_micros) + "us]";
    if (!task.last_status.ok()) {
      out += " (" + task.last_status.ToString() + ")";
    }
    if (task.result.IsQueryResult()) {
      out += " " + std::to_string(task.result.rows.size()) + " rows";
    } else if (task.result.rows_affected > 0) {
      out += " " + std::to_string(task.result.rows_affected) + " affected";
    }
    out += "\n";
  }
  return out;
}

void DolEngine::ResetRunState() {
  channels_.clear();
  tasks_.clear();
  task_channel_.clear();
  compensations_.clear();
  dol_status_ = 0;
  retries_ = 0;
  reprobes_ = 0;
  run_messages_ = 0;
  run_bytes_ = 0;
}

// -- Stepper ----------------------------------------------------------------

void DolEngine::RpcAwaiter::await_suspend(std::coroutine_handle<> handle) {
  engine->pending_.emplace(PendingState{std::move(rpc), handle, this});
}

Status DolEngine::BeginRun(const DolProgram& program, int64_t start_micros) {
  AbandonRun();  // an engine is always reusable, even after a dropped run
  ResetRunState();
  running_ = true;
  run_start_micros_ = start_micros;
  root_.emplace(RunProgram(program));
  root_->Start();
  return Status::OK();
}

void DolEngine::Deliver(Result<CallOutcome> outcome) {
  assert(pending_.has_value() && "Deliver without a pending RPC");
  if (!pending_) return;
  PendingState state = std::move(*pending_);
  pending_.reset();
  state.awaiter->outcome.emplace(std::move(outcome));
  state.continuation.resume();
}

Result<DolRunResult> DolEngine::TakeResult() {
  if (!done()) {
    return Status::Internal("TakeResult called before the DOL run finished");
  }
  Result<int64_t> final_now = root_->Take();
  root_.reset();
  pending_.reset();
  running_ = false;
  if (!final_now.ok()) return final_now.status();

  DolRunResult result;
  result.dol_status = dol_status_;
  result.tasks = std::move(tasks_);
  result.makespan_micros = *final_now - run_start_micros_;
  // Per-run scoped accounting: CallService sums each call's own
  // messages/bytes, so concurrent unrelated traffic on the same
  // environment (probes, other runs, bootstrap SQL) is not charged to
  // this program.
  result.messages = run_messages_;
  result.bytes = run_bytes_;
  result.retries = retries_;
  result.reprobes = reprobes_;
  for (const auto& [alias, channel] : channels_) {
    if (!channel.open_status.ok()) {
      result.failed_channels.emplace(alias, channel.open_status);
    }
  }
  return result;
}

void DolEngine::AbandonRun() {
  pending_.reset();
  // Destroying the root frame unwinds every suspended child frame; their
  // locals (open spans, state notes) run their destructors normally.
  root_.reset();
  running_ = false;
}

Result<DolRunResult> DolEngine::Run(const DolProgram& program) {
  MSQL_RETURN_IF_ERROR(BeginRun(program, 0));
  // Service each pending call immediately against the environment: the
  // exact operation order of the pre-stepper interpreter.
  while (!done()) {
    const PendingRpc& rpc = *pending();
    Deliver(env_->Call(rpc.service, rpc.request, rpc.at));
  }
  return TakeResult();
}

DolTask<int64_t> DolEngine::RunProgram(const DolProgram& program) {
  obs::ScopedSpan run_span(&env_->tracer(), "dol.run", "dol",
                           run_start_micros_);
  int64_t now = run_start_micros_;
  for (const auto& stmt : program.statements) {
    MSQL_CO_AWAIT_OR_RETURN(now, ExecStmt(*stmt, now));
    run_span.set_sim_end(now);
  }
  run_span.Annotate("makespan_micros", now - run_start_micros_);
  run_span.Annotate("dol_status", static_cast<int64_t>(dol_status_));
  env_->metrics().Inc("dol.runs");
  env_->metrics().Observe("dol.makespan_micros", now - run_start_micros_);
  co_return now;
}

// -- Interpreter ------------------------------------------------------------

DolTask<int64_t> DolEngine::ExecStmt(const DolStmt& stmt, int64_t at) {
  switch (stmt.kind()) {
    case DolStmtKind::kOpen:
      co_return co_await ExecOpen(static_cast<const OpenStmt&>(stmt), at);
    case DolStmtKind::kTask:
      co_return co_await ExecTask(static_cast<const TaskStmt&>(stmt), at);
    case DolStmtKind::kParallel:
      co_return co_await ExecParallel(static_cast<const ParallelStmt&>(stmt),
                                      at);
    case DolStmtKind::kIf:
      co_return co_await ExecIf(static_cast<const IfStmt&>(stmt), at);
    case DolStmtKind::kCommit:
      co_return co_await ExecCommit(static_cast<const CommitStmt&>(stmt), at);
    case DolStmtKind::kAbort:
      co_return co_await ExecAbort(static_cast<const AbortStmt&>(stmt), at);
    case DolStmtKind::kCompensate:
      co_return co_await ExecCompensate(
          static_cast<const CompensateStmt&>(stmt), at);
    case DolStmtKind::kTransfer:
      co_return co_await ExecTransfer(static_cast<const TransferStmt&>(stmt),
                                      at);
    case DolStmtKind::kSetStatus:
      dol_status_ = static_cast<const SetStatusStmt&>(stmt).value;
      co_return at;
    case DolStmtKind::kClose:
      co_return co_await ExecClose(static_cast<const CloseStmt&>(stmt), at);
  }
  co_return Status::Internal("unhandled DOL statement kind");
}

Result<DolEngine::Channel*> DolEngine::FindChannel(const std::string& alias) {
  auto it = channels_.find(ToLower(alias));
  if (it == channels_.end()) {
    return Status::NotFound("DOL alias '" + alias +
                            "' has not been OPENed");
  }
  return &it->second;
}

Result<TaskOutcome*> DolEngine::FindTask(const std::string& name) {
  auto it = tasks_.find(ToLower(name));
  if (it == tasks_.end()) {
    return Status::NotFound("unknown DOL task '" + name + "'");
  }
  return &it->second;
}

DolTask<CallOutcome> DolEngine::CallService(const std::string& service,
                                            const LamRequest& request,
                                            int64_t at, int attempt_base) {
  int64_t backoff = policy_.initial_backoff_micros;
  int attempt = attempt_base;
  while (true) {
    // One span per send attempt: re-sends show up as sibling rpc spans
    // with increasing attempt numbers, which is how a trace answers
    // "which retries fired" without reading aggregate counters.
    obs::ScopedSpan rpc_span(
        &env_->tracer(),
        std::string("rpc:") + std::string(LamRequestTypeName(request.type)),
        "rpc", at);
    rpc_span.Annotate("service", service);
    rpc_span.Annotate("attempt", static_cast<int64_t>(attempt));
    // Park here: the driver (Run's loop, or the federation scheduler)
    // decides when this call is serviced and with what outcome. The
    // awaiter is a named local, not a temporary — GCC 12 materializes a
    // temporary awaiter at the wrong address, corrupting its members.
    RpcAwaiter awaiter{this, PendingRpc{service, request, at}, {}};
    auto outcome = co_await awaiter;
    CallOutcome result;
    if (!outcome.ok()) {
      // Network-level failure (site down): surface it as a
      // response-level failure so the task/abort logic can treat it
      // like a local abort.
      result.response.status = outcome.status();
      result.timing.start_micros = at;
      result.timing.end_micros =
          at + env_->network().default_link().latency_micros;
    } else {
      result = std::move(*outcome);
    }
    run_messages_ += result.messages;
    run_bytes_ += result.bytes;
    rpc_span.set_sim_end(result.timing.end_micros);
    env_->metrics().Observe(
        "rpc.sim_micros", result.timing.end_micros - at);
    if (result.fault != netsim::FaultAction::kNone) {
      rpc_span.Annotate("fault", netsim::FaultActionName(result.fault));
    }
    if (result.timing.queue_micros > 0) {
      rpc_span.Annotate("queue_micros", result.timing.queue_micros);
    }
    if (result.timed_out) rpc_span.Annotate("timed_out", "true");
    if (!result.response.status.ok()) {
      rpc_span.Annotate("status",
                        StatusCodeName(result.response.status.code()));
    }
    if (result.response.status.ok()) co_return result;
    // Only unavailability is transient; any other failure is a definite
    // local verdict and retrying cannot change it.
    if (result.response.status.code() != StatusCode::kUnavailable) {
      co_return result;
    }
    // A timed-out call may have been executed; re-sending is only safe
    // for idempotent verbs — the caller resolves the rest by re-probe.
    if (result.timed_out && !RetryableOnTimeout(request.type)) {
      co_return result;
    }
    if (attempt >= policy_.max_attempts) co_return result;
    ++attempt;
    ++retries_;
    env_->metrics().Inc("dol.retries");
    rpc_span.Annotate("backoff_micros", backoff);
    at = result.timing.end_micros + backoff;
    backoff = std::min(
        static_cast<int64_t>(static_cast<double>(backoff) *
                             policy_.backoff_multiplier),
        policy_.max_backoff_micros);
  }
}

DolTask<CallOutcome> DolEngine::Call(Channel* channel,
                                     const LamRequest& request, int64_t at,
                                     int attempt_base) {
  co_return co_await CallService(channel->service, request, at, attempt_base);
}

DolTask<TxnState> DolEngine::Reprobe(Channel* channel, int64_t* now,
                                     bool* probe_failed) {
  LamRequest probe;
  probe.type = LamRequestType::kQueryTxnState;
  probe.session = channel->session;
  ++reprobes_;
  env_->metrics().Inc("dol.reprobes");
  obs::ScopedSpan span(&env_->tracer(), "reprobe", "2pc", *now);
  span.Annotate("service", channel->service);
  MSQL_CO_AWAIT_OR_RETURN(auto outcome, Call(channel, probe, *now));
  *now = outcome.timing.end_micros;
  span.set_sim_end(*now);
  if (!outcome.response.status.ok()) {
    *probe_failed = true;
    span.Annotate("observed", "unresolved");
    co_return TxnState::kActive;
  }
  *probe_failed = false;
  co_return outcome.response.txn_state;
}

DolTask<int64_t> DolEngine::ExecOpen(const OpenStmt& stmt, int64_t at) {
  std::string alias = ToLower(stmt.alias);
  if (channels_.count(alias) > 0) {
    co_return Status::InvalidArgument("DOL alias '" + alias +
                                      "' is already open");
  }
  Channel channel;
  channel.service = ToLower(stmt.service);
  channel.database = ToLower(stmt.database);

  obs::ScopedSpan span(&env_->tracer(), "channel.open:" + alias, "channel",
                       at);
  span.Annotate("service", channel.service);
  span.Annotate("database", channel.database);

  LamRequest open;
  open.type = LamRequestType::kOpenSession;
  open.database = channel.database;
  MSQL_CO_AWAIT_OR_RETURN(auto outcome,
                          CallService(channel.service, open, at));
  int64_t end = outcome.timing.end_micros;
  span.set_sim_end(end);
  if (!outcome.response.status.ok()) {
    channel.failed = true;
    channel.open_status = outcome.response.status;
    span.Annotate("open_failed",
                  StatusCodeName(outcome.response.status.code()));
  } else {
    channel.session = outcome.response.session;
  }
  channels_.emplace(alias, std::move(channel));
  co_return end;
}

DolTask<int64_t> DolEngine::DrainTxn(Channel* channel, int64_t when) {
  LamRequest rollback;
  rollback.type = LamRequestType::kRollback;
  rollback.session = channel->session;
  MSQL_CO_AWAIT_OR_RETURN(auto rb_out, Call(channel, rollback, when));
  co_return rb_out.timing.end_micros;
}

DolTask<int64_t> DolEngine::ExecTask(const TaskStmt& stmt, int64_t at) {
  std::string name = ToLower(stmt.name);
  if (tasks_.count(name) > 0) {
    co_return Status::InvalidArgument("DOL task '" + name +
                                      "' is declared twice");
  }
  TaskOutcome outcome;
  outcome.name = name;
  outcome.start_micros = at;
  MSQL_CO_ASSIGN_OR_RETURN(Channel * channel, FindChannel(stmt.target_alias));
  outcome.service = channel->service;
  outcome.database = channel->database;

  obs::ScopedSpan task_span(&env_->tracer(), "task:" + name, "dol.task", at);
  task_span.Annotate("channel", ToLower(stmt.target_alias));
  if (stmt.nocommit) task_span.Annotate("nocommit", "true");
  env_->metrics().Inc("dol.tasks");
  // The final state is only known at the task's various exits; a scope
  // guard keeps every return annotated.
  struct StateNote {
    obs::ScopedSpan* span;
    const TaskOutcome* outcome;
    ~StateNote() {
      span->Annotate("state", DolTaskStateName(outcome->state));
      span->set_sim_end(outcome->end_micros);
    }
  } state_note{&task_span, &outcome};

  // Register the compensation even if the task later aborts — the
  // COMPENSATE statement validates against the *declared* block.
  compensations_[name] = stmt.compensation_sql;

  if (channel->failed) {
    outcome.state = DolTaskState::kAborted;
    outcome.last_status = channel->open_status;
    outcome.end_micros = at;
    tasks_.emplace(name, std::move(outcome));
    co_return at;
  }

  int64_t now = at;
  auto abort_task = [&](const Status& why, int64_t end) -> int64_t {
    outcome.state = DolTaskState::kAborted;
    outcome.last_status = why;
    outcome.end_micros = end;
    return end;
  };
  // Best-effort rollback after a timed-out call (DrainTxn): the lost
  // call may have left a transaction open and holding locks. A rollback
  // failure is ignored — there may be nothing to roll back.

  if (stmt.nocommit) {
    LamRequest begin;
    begin.type = LamRequestType::kBegin;
    begin.session = channel->session;
    MSQL_CO_AWAIT_OR_RETURN(auto begin_out, Call(channel, begin, now));
    now = begin_out.timing.end_micros;
    if (!begin_out.response.status.ok()) {
      if (begin_out.timed_out) {
        MSQL_CO_AWAIT_OR_RETURN(now, DrainTxn(channel, now));
      }
      now = abort_task(begin_out.response.status, now);
      tasks_.emplace(name, std::move(outcome));
      co_return now;
    }
  }

  LamRequest exec;
  exec.type = LamRequestType::kExecute;
  exec.session = channel->session;
  exec.sql = stmt.body_sql;
  MSQL_CO_AWAIT_OR_RETURN(auto exec_out, Call(channel, exec, now));
  now = exec_out.timing.end_micros;
  if (!exec_out.response.status.ok()) {
    // On a definite local failure the engine has already aborted the
    // enclosing transaction; after a timeout the statement may have
    // been applied with the transaction still open, so drain it.
    if (exec_out.timed_out && stmt.nocommit) {
      MSQL_CO_AWAIT_OR_RETURN(now, DrainTxn(channel, now));
    }
    now = abort_task(exec_out.response.status, now);
    tasks_.emplace(name, std::move(outcome));
    co_return now;
  }
  outcome.result = std::move(exec_out.response.result);

  if (stmt.nocommit) {
    obs::ScopedSpan prep_span(&env_->tracer(), "2pc.prepare", "2pc", now);
    prep_span.Annotate("task", name);
    LamRequest prepare;
    prepare.type = LamRequestType::kPrepare;
    prepare.session = channel->session;
    MSQL_CO_AWAIT_OR_RETURN(auto prep_out, Call(channel, prepare, now));
    now = prep_out.timing.end_micros;
    prep_span.set_sim_end(now);
    bool prepared = prep_out.response.status.ok();
    if (!prepared && prep_out.timed_out && policy_.reprobe_on_timeout) {
      // A lost prepare ACK is resolved by re-probing: the transaction
      // either reached kPrepared (ACK lost — proceed), stayed kActive
      // (request lost — re-send while attempts remain) or aborted.
      int attempt = 1;
      int64_t backoff = policy_.initial_backoff_micros;
      while (true) {
        bool probe_failed = false;
        MSQL_CO_AWAIT_OR_RETURN(TxnState state,
                                Reprobe(channel, &now, &probe_failed));
        if (!probe_failed && state == TxnState::kPrepared) {
          prepared = true;
          break;
        }
        if (probe_failed || state != TxnState::kActive ||
            attempt >= policy_.max_attempts) {
          break;
        }
        ++attempt;
        ++retries_;
        env_->metrics().Inc("dol.retries");
        now += backoff;
        backoff = std::min(
            static_cast<int64_t>(static_cast<double>(backoff) *
                                 policy_.backoff_multiplier),
            policy_.max_backoff_micros);
        MSQL_CO_AWAIT_OR_RETURN(auto again,
                                Call(channel, prepare, now, attempt));
        now = again.timing.end_micros;
        if (again.response.status.ok()) {
          prepared = true;
          break;
        }
        if (!again.timed_out) {
          prep_out = std::move(again);
          break;
        }
        prep_out = std::move(again);
      }
    }
    prep_span.Annotate("prepared", prepared ? "true" : "false");
    prep_span.End(now);
    if (!prepared) {
      // A refused prepare (no 2PC support, or injected failure) leaves
      // the transaction either aborted (injected) or still active
      // (refused): roll it back so no locks leak, then mark aborted.
      if (prep_out.response.txn_state == relational::TxnState::kActive ||
          prep_out.timed_out) {
        MSQL_CO_AWAIT_OR_RETURN(now, DrainTxn(channel, now));
      }
      now = abort_task(prep_out.response.status, now);
      tasks_.emplace(name, std::move(outcome));
      co_return now;
    }
    outcome.state = DolTaskState::kPrepared;
  } else {
    outcome.state = DolTaskState::kCommitted;  // autocommit succeeded
  }
  outcome.end_micros = now;
  task_channel_[name] = ToLower(stmt.target_alias);
  tasks_.emplace(name, std::move(outcome));
  co_return now;
}

DolTask<int64_t> DolEngine::ExecParallel(const ParallelStmt& stmt,
                                         int64_t at) {
  obs::ScopedSpan par_span(&env_->tracer(), "dol.parbegin", "dol", at);
  par_span.Annotate("statements", static_cast<int64_t>(stmt.body.size()));
  int64_t latest = at;
  // Branches are *stepped* in program order but their simulated clocks
  // all fork from `at` — the forked-clock parallelism of §4.3.
  for (const auto& inner : stmt.body) {
    MSQL_CO_AWAIT_OR_RETURN(int64_t end, ExecStmt(*inner, at));
    latest = std::max(latest, end);
  }
  par_span.set_sim_end(latest);
  co_return latest;
}

DolTask<int64_t> DolEngine::ExecIf(const IfStmt& stmt, int64_t at) {
  MSQL_CO_ASSIGN_OR_RETURN(bool taken, EvalCond(*stmt.condition));
  const auto& branch = taken ? stmt.then_branch : stmt.else_branch;
  int64_t now = at;
  for (const auto& inner : branch) {
    MSQL_CO_AWAIT_OR_RETURN(now, ExecStmt(*inner, now));
  }
  co_return now;
}

Result<bool> DolEngine::EvalCond(const DolCond& cond) const {
  switch (cond.kind()) {
    case DolCondKind::kStateTest: {
      const auto& test = static_cast<const StateTestCond&>(cond);
      auto it = tasks_.find(ToLower(test.task()));
      if (it == tasks_.end()) {
        return Status::NotFound("condition references unknown task '" +
                                test.task() + "'");
      }
      return it->second.state == test.state();
    }
    case DolCondKind::kAnd: {
      const auto& b = static_cast<const BinaryCond&>(cond);
      MSQL_ASSIGN_OR_RETURN(bool left, EvalCond(b.left()));
      if (!left) return false;
      return EvalCond(b.right());
    }
    case DolCondKind::kOr: {
      const auto& b = static_cast<const BinaryCond&>(cond);
      MSQL_ASSIGN_OR_RETURN(bool left, EvalCond(b.left()));
      if (left) return true;
      return EvalCond(b.right());
    }
    case DolCondKind::kNot: {
      const auto& n = static_cast<const NotCond&>(cond);
      MSQL_ASSIGN_OR_RETURN(bool inner, EvalCond(n.operand()));
      return !inner;
    }
  }
  return Status::Internal("unhandled condition kind");
}

DolTask<int64_t> DolEngine::ExecCommit(const CommitStmt& stmt, int64_t at) {
  int64_t now = at;
  for (const auto& task_name : stmt.tasks) {
    MSQL_CO_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(task_name));
    if (task->state == DolTaskState::kCommitted) continue;  // idempotent
    if (task->state != DolTaskState::kPrepared) {
      co_return Status::TransactionError(
          "COMMIT of task '" + task->name + "' in state " +
          std::string(DolTaskStateName(task->state)));
    }
    MSQL_CO_ASSIGN_OR_RETURN(Channel * channel,
                             FindChannel(task_channel_.at(task->name)));
    obs::ScopedSpan commit_span(&env_->tracer(), "2pc.commit", "2pc", now);
    commit_span.Annotate("task", task->name);
    struct CommitNote {
      obs::ScopedSpan* span;
      const TaskOutcome* task;
      int64_t* now;
      ~CommitNote() {
        span->Annotate("state", DolTaskStateName(task->state));
        span->set_sim_end(*now);
      }
    } commit_note{&commit_span, task, &now};
    LamRequest commit;
    commit.type = LamRequestType::kCommit;
    commit.session = channel->session;
    MSQL_CO_AWAIT_OR_RETURN(auto outcome, Call(channel, commit, now));
    now = outcome.timing.end_micros;
    if (outcome.response.status.ok()) {
      task->state = DolTaskState::kCommitted;
      continue;
    }
    if (outcome.timed_out && policy_.reprobe_on_timeout) {
      // The in-doubt window of §3.2.1: the commit may have been applied
      // (ACK lost) or never delivered. Re-probe the transaction state
      // instead of assuming the worst — a lost ACK resolves to
      // kCommitted, a lost request is re-sent while attempts remain.
      int attempt = 1;
      int64_t backoff = policy_.initial_backoff_micros;
      bool resolved = false;
      while (!resolved) {
        bool probe_failed = false;
        MSQL_CO_AWAIT_OR_RETURN(TxnState state,
                                Reprobe(channel, &now, &probe_failed));
        if (probe_failed) {
          // State unobservable: conservatively mark aborted; the plan's
          // verify step will report the execution incorrect.
          task->state = DolTaskState::kAborted;
          task->last_status = outcome.response.status;
          resolved = true;
        } else if (state == TxnState::kCommitted) {
          task->state = DolTaskState::kCommitted;
          resolved = true;
        } else if (state == TxnState::kAborted) {
          task->state = DolTaskState::kAborted;
          task->last_status = outcome.response.status;
          resolved = true;
        } else if (attempt >= policy_.max_attempts) {
          // Still prepared and out of attempts: leave the task in
          // kPrepared so the plan's cleanup branch can roll it back —
          // a known-prepared transaction must not leak its locks.
          task->last_status = outcome.response.status;
          resolved = true;
        } else {
          ++attempt;
          ++retries_;
          env_->metrics().Inc("dol.retries");
          now += backoff;
          backoff = std::min(
              static_cast<int64_t>(static_cast<double>(backoff) *
                                   policy_.backoff_multiplier),
              policy_.max_backoff_micros);
          MSQL_CO_AWAIT_OR_RETURN(auto again,
                                  Call(channel, commit, now, attempt));
          now = again.timing.end_micros;
          if (again.response.status.ok()) {
            task->state = DolTaskState::kCommitted;
            resolved = true;
          } else if (!again.timed_out) {
            task->state = DolTaskState::kAborted;
            task->last_status = again.response.status;
            resolved = true;
          } else {
            outcome = std::move(again);  // re-probe the new timeout
          }
        }
      }
      continue;
    }
    task->state = DolTaskState::kAborted;
    task->last_status = outcome.response.status;
  }
  co_return now;
}

DolTask<int64_t> DolEngine::ExecAbort(const AbortStmt& stmt, int64_t at) {
  int64_t now = at;
  for (const auto& task_name : stmt.tasks) {
    MSQL_CO_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(task_name));
    if (task->state == DolTaskState::kAborted ||
        task->state == DolTaskState::kNotRun) {
      task->state = DolTaskState::kAborted;
      continue;
    }
    if (task->state != DolTaskState::kPrepared) {
      co_return Status::TransactionError(
          "ABORT of task '" + task->name + "' in state " +
          std::string(DolTaskStateName(task->state)) +
          " (committed tasks must be compensated)");
    }
    MSQL_CO_ASSIGN_OR_RETURN(Channel * channel,
                             FindChannel(task_channel_.at(task->name)));
    LamRequest rollback;
    rollback.type = LamRequestType::kRollback;
    rollback.session = channel->session;
    MSQL_CO_AWAIT_OR_RETURN(auto outcome, Call(channel, rollback, now));
    now = outcome.timing.end_micros;
    task->state = DolTaskState::kAborted;
    if (!outcome.response.status.ok()) {
      task->last_status = outcome.response.status;
    }
  }
  co_return now;
}

DolTask<int64_t> DolEngine::ExecCompensate(const CompensateStmt& stmt,
                                           int64_t at) {
  int64_t now = at;
  for (const auto& task_name : stmt.tasks) {
    MSQL_CO_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(task_name));
    if (task->state != DolTaskState::kCommitted) {
      co_return Status::TransactionError(
          "COMPENSATE of task '" + task->name + "' in state " +
          std::string(DolTaskStateName(task->state)) +
          " (only committed tasks can be compensated)");
    }
    auto comp_it = compensations_.find(task->name);
    if (comp_it == compensations_.end() || comp_it->second.empty()) {
      co_return Status::TransactionError(
          "task '" + task->name + "' declares no COMPENSATION block");
    }
    MSQL_CO_ASSIGN_OR_RETURN(Channel * channel,
                             FindChannel(task_channel_.at(task->name)));
    LamRequest exec;
    exec.type = LamRequestType::kExecute;
    exec.session = channel->session;
    exec.sql = comp_it->second;
    MSQL_CO_AWAIT_OR_RETURN(auto outcome, Call(channel, exec, now));
    now = outcome.timing.end_micros;
    if (!outcome.response.status.ok()) {
      // A failed compensation leaves the multidatabase incorrect; no
      // sound plan can recover, so surface it as a program error.
      co_return Status::TransactionError(
          "compensation of task '" + task->name + "' failed: " +
          outcome.response.status.ToString());
    }
    task->state = DolTaskState::kCompensated;
  }
  co_return now;
}

DolTask<int64_t> DolEngine::ExecTransfer(const TransferStmt& stmt,
                                         int64_t at) {
  MSQL_CO_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(stmt.task));
  if (!task->result.IsQueryResult()) {
    co_return Status::InvalidArgument("TRANSFER source task '" + task->name +
                                      "' produced no query result");
  }
  MSQL_CO_ASSIGN_OR_RETURN(Channel * channel, FindChannel(stmt.target_alias));
  if (channel->failed) {
    co_return Status::Unavailable("TRANSFER target channel '" +
                                  stmt.target_alias + "' is not usable");
  }

  int64_t now = at;
  if (!stmt.append) {
    // CREATE TABLE at the target.
    std::string create = "CREATE TABLE " + stmt.table + " (";
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      if (i > 0) create += ", ";
      create += stmt.columns[i].name + " " + stmt.columns[i].type_name;
      if (stmt.columns[i].width > 0) {
        create += "(" + std::to_string(stmt.columns[i].width) + ")";
      }
    }
    create += ")";
    LamRequest create_req;
    create_req.type = LamRequestType::kExecute;
    create_req.session = channel->session;
    create_req.sql = create;
    MSQL_CO_AWAIT_OR_RETURN(auto create_out, Call(channel, create_req, at));
    now = create_out.timing.end_micros;
    MSQL_CO_RETURN_IF_ERROR(create_out.response.status);
  }

  if (!task->result.rows.empty()) {
    std::string insert = "INSERT INTO " + stmt.table;
    if (stmt.append && !stmt.columns.empty()) {
      insert += " (";
      for (size_t i = 0; i < stmt.columns.size(); ++i) {
        if (i > 0) insert += ", ";
        insert += stmt.columns[i].name;
      }
      insert += ")";
    }
    insert += " VALUES ";
    for (size_t r = 0; r < task->result.rows.size(); ++r) {
      if (r > 0) insert += ", ";
      insert += "(";
      const auto& row = task->result.rows[r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) insert += ", ";
        insert += row[c].ToSqlLiteral();
      }
      insert += ")";
    }
    LamRequest insert_req;
    insert_req.type = LamRequestType::kExecute;
    insert_req.session = channel->session;
    insert_req.sql = std::move(insert);
    MSQL_CO_AWAIT_OR_RETURN(auto insert_out, Call(channel, insert_req, now));
    now = insert_out.timing.end_micros;
    MSQL_CO_RETURN_IF_ERROR(insert_out.response.status);
  }
  co_return now;
}

DolTask<int64_t> DolEngine::ExecClose(const CloseStmt& stmt, int64_t at) {
  int64_t now = at;
  for (const auto& alias : stmt.aliases) {
    MSQL_CO_ASSIGN_OR_RETURN(Channel * channel, FindChannel(alias));
    if (channel->failed || channel->session == 0) {
      channel->failed = true;
      continue;
    }
    obs::ScopedSpan close_span(&env_->tracer(),
                               "channel.close:" + ToLower(alias), "channel",
                               now);
    close_span.Annotate("service", channel->service);
    LamRequest close;
    close.type = LamRequestType::kCloseSession;
    close.session = channel->session;
    MSQL_CO_AWAIT_OR_RETURN(auto outcome, Call(channel, close, now));
    now = outcome.timing.end_micros;
    close_span.set_sim_end(now);
    channel->failed = true;  // no further use
    channel->session = 0;
  }
  co_return now;
}

}  // namespace msql::dol
