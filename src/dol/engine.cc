#include "dol/engine.h"

#include <algorithm>

#include "common/string_util.h"

namespace msql::dol {

using netsim::CallOutcome;
using netsim::LamRequest;
using netsim::LamRequestType;

const TaskOutcome* DolRunResult::FindTask(const std::string& name) const {
  auto it = tasks.find(ToLower(name));
  return it == tasks.end() ? nullptr : &it->second;
}

std::string DolRunResult::ToString() const {
  std::string out = "DOLSTATUS=" + std::to_string(dol_status) +
                    " makespan=" + std::to_string(makespan_micros) +
                    "us messages=" + std::to_string(messages) +
                    " bytes=" + std::to_string(bytes) + "\n";
  for (const auto& [name, task] : tasks) {
    out += "  " + name + ": " + std::string(DolTaskStateName(task.state)) +
           " [" + std::to_string(task.start_micros) + "us, " +
           std::to_string(task.end_micros) + "us]";
    if (!task.last_status.ok()) {
      out += " (" + task.last_status.ToString() + ")";
    }
    if (task.result.IsQueryResult()) {
      out += " " + std::to_string(task.result.rows.size()) + " rows";
    } else if (task.result.rows_affected > 0) {
      out += " " + std::to_string(task.result.rows_affected) + " affected";
    }
    out += "\n";
  }
  return out;
}

Result<DolRunResult> DolEngine::Run(const DolProgram& program) {
  channels_.clear();
  tasks_.clear();
  task_channel_.clear();
  compensations_.clear();
  dol_status_ = 0;
  int64_t messages_before = env_->network().stats().messages_sent;
  int64_t bytes_before = env_->network().stats().bytes_sent;

  int64_t now = 0;
  for (const auto& stmt : program.statements) {
    MSQL_ASSIGN_OR_RETURN(now, ExecStmt(*stmt, now));
  }

  DolRunResult result;
  result.dol_status = dol_status_;
  result.tasks = std::move(tasks_);
  result.makespan_micros = now;
  result.messages =
      env_->network().stats().messages_sent - messages_before;
  result.bytes = env_->network().stats().bytes_sent - bytes_before;
  return result;
}

Result<int64_t> DolEngine::ExecStmt(const DolStmt& stmt, int64_t at) {
  switch (stmt.kind()) {
    case DolStmtKind::kOpen:
      return ExecOpen(static_cast<const OpenStmt&>(stmt), at);
    case DolStmtKind::kTask:
      return ExecTask(static_cast<const TaskStmt&>(stmt), at);
    case DolStmtKind::kParallel:
      return ExecParallel(static_cast<const ParallelStmt&>(stmt), at);
    case DolStmtKind::kIf:
      return ExecIf(static_cast<const IfStmt&>(stmt), at);
    case DolStmtKind::kCommit:
      return ExecCommit(static_cast<const CommitStmt&>(stmt), at);
    case DolStmtKind::kAbort:
      return ExecAbort(static_cast<const AbortStmt&>(stmt), at);
    case DolStmtKind::kCompensate:
      return ExecCompensate(static_cast<const CompensateStmt&>(stmt), at);
    case DolStmtKind::kTransfer:
      return ExecTransfer(static_cast<const TransferStmt&>(stmt), at);
    case DolStmtKind::kSetStatus:
      dol_status_ = static_cast<const SetStatusStmt&>(stmt).value;
      return at;
    case DolStmtKind::kClose:
      return ExecClose(static_cast<const CloseStmt&>(stmt), at);
  }
  return Status::Internal("unhandled DOL statement kind");
}

Result<DolEngine::Channel*> DolEngine::FindChannel(const std::string& alias) {
  auto it = channels_.find(ToLower(alias));
  if (it == channels_.end()) {
    return Status::NotFound("DOL alias '" + alias +
                            "' has not been OPENed");
  }
  return &it->second;
}

Result<TaskOutcome*> DolEngine::FindTask(const std::string& name) {
  auto it = tasks_.find(ToLower(name));
  if (it == tasks_.end()) {
    return Status::NotFound("unknown DOL task '" + name + "'");
  }
  return &it->second;
}

Result<CallOutcome> DolEngine::Call(Channel* channel,
                                    const LamRequest& request, int64_t at) {
  auto outcome = env_->Call(channel->service, request, at);
  if (!outcome.ok()) {
    // Network-level failure (site down): surface it as a response-level
    // failure so the task/abort logic can treat it like a local abort.
    CallOutcome synthetic;
    synthetic.response.status = outcome.status();
    synthetic.timing.start_micros = at;
    synthetic.timing.end_micros =
        at + env_->network().default_link().latency_micros;
    return synthetic;
  }
  return outcome;
}

Result<int64_t> DolEngine::ExecOpen(const OpenStmt& stmt, int64_t at) {
  std::string alias = ToLower(stmt.alias);
  if (channels_.count(alias) > 0) {
    return Status::InvalidArgument("DOL alias '" + alias +
                                   "' is already open");
  }
  Channel channel;
  channel.service = ToLower(stmt.service);
  channel.database = ToLower(stmt.database);

  LamRequest open;
  open.type = LamRequestType::kOpenSession;
  open.database = channel.database;
  auto outcome = env_->Call(channel.service, open, at);
  int64_t end = at;
  if (!outcome.ok()) {
    channel.failed = true;
    channel.open_status = outcome.status();
  } else if (!outcome->response.status.ok()) {
    channel.failed = true;
    channel.open_status = outcome->response.status;
    end = outcome->timing.end_micros;
  } else {
    channel.session = outcome->response.session;
    end = outcome->timing.end_micros;
  }
  channels_.emplace(alias, std::move(channel));
  return end;
}

Result<int64_t> DolEngine::ExecTask(const TaskStmt& stmt, int64_t at) {
  std::string name = ToLower(stmt.name);
  if (tasks_.count(name) > 0) {
    return Status::InvalidArgument("DOL task '" + name +
                                   "' is declared twice");
  }
  TaskOutcome outcome;
  outcome.name = name;
  outcome.start_micros = at;
  MSQL_ASSIGN_OR_RETURN(Channel * channel, FindChannel(stmt.target_alias));

  // Register the compensation even if the task later aborts — the
  // COMPENSATE statement validates against the *declared* block.
  compensations_[name] = stmt.compensation_sql;

  if (channel->failed) {
    outcome.state = DolTaskState::kAborted;
    outcome.last_status = channel->open_status;
    outcome.end_micros = at;
    tasks_.emplace(name, std::move(outcome));
    return at;
  }

  int64_t now = at;
  auto abort_task = [&](const Status& why, int64_t end) -> int64_t {
    outcome.state = DolTaskState::kAborted;
    outcome.last_status = why;
    outcome.end_micros = end;
    return end;
  };

  if (stmt.nocommit) {
    LamRequest begin;
    begin.type = LamRequestType::kBegin;
    begin.session = channel->session;
    MSQL_ASSIGN_OR_RETURN(auto begin_out, Call(channel, begin, now));
    now = begin_out.timing.end_micros;
    if (!begin_out.response.status.ok()) {
      now = abort_task(begin_out.response.status, now);
      tasks_.emplace(name, std::move(outcome));
      return now;
    }
  }

  LamRequest exec;
  exec.type = LamRequestType::kExecute;
  exec.session = channel->session;
  exec.sql = stmt.body_sql;
  MSQL_ASSIGN_OR_RETURN(auto exec_out, Call(channel, exec, now));
  now = exec_out.timing.end_micros;
  if (!exec_out.response.status.ok()) {
    // The local engine aborts the enclosing transaction on any failing
    // statement, so there is nothing to roll back here.
    now = abort_task(exec_out.response.status, now);
    tasks_.emplace(name, std::move(outcome));
    return now;
  }
  outcome.result = std::move(exec_out.response.result);

  if (stmt.nocommit) {
    LamRequest prepare;
    prepare.type = LamRequestType::kPrepare;
    prepare.session = channel->session;
    MSQL_ASSIGN_OR_RETURN(auto prep_out, Call(channel, prepare, now));
    now = prep_out.timing.end_micros;
    if (!prep_out.response.status.ok()) {
      // A refused prepare (no 2PC support, or injected failure) leaves
      // the transaction either aborted (injected) or still active
      // (refused): roll it back so no locks leak, then mark aborted.
      if (prep_out.response.txn_state == relational::TxnState::kActive) {
        LamRequest rollback;
        rollback.type = LamRequestType::kRollback;
        rollback.session = channel->session;
        MSQL_ASSIGN_OR_RETURN(auto rb_out, Call(channel, rollback, now));
        now = rb_out.timing.end_micros;
      }
      now = abort_task(prep_out.response.status, now);
      tasks_.emplace(name, std::move(outcome));
      return now;
    }
    outcome.state = DolTaskState::kPrepared;
  } else {
    outcome.state = DolTaskState::kCommitted;  // autocommit succeeded
  }
  outcome.end_micros = now;
  task_channel_[name] = ToLower(stmt.target_alias);
  tasks_.emplace(name, std::move(outcome));
  return now;
}

Result<int64_t> DolEngine::ExecParallel(const ParallelStmt& stmt,
                                        int64_t at) {
  int64_t latest = at;
  for (const auto& inner : stmt.body) {
    MSQL_ASSIGN_OR_RETURN(int64_t end, ExecStmt(*inner, at));
    latest = std::max(latest, end);
  }
  return latest;
}

Result<int64_t> DolEngine::ExecIf(const IfStmt& stmt, int64_t at) {
  MSQL_ASSIGN_OR_RETURN(bool taken, EvalCond(*stmt.condition));
  const auto& branch = taken ? stmt.then_branch : stmt.else_branch;
  int64_t now = at;
  for (const auto& inner : branch) {
    MSQL_ASSIGN_OR_RETURN(now, ExecStmt(*inner, now));
  }
  return now;
}

Result<bool> DolEngine::EvalCond(const DolCond& cond) const {
  switch (cond.kind()) {
    case DolCondKind::kStateTest: {
      const auto& test = static_cast<const StateTestCond&>(cond);
      auto it = tasks_.find(ToLower(test.task()));
      if (it == tasks_.end()) {
        return Status::NotFound("condition references unknown task '" +
                                test.task() + "'");
      }
      return it->second.state == test.state();
    }
    case DolCondKind::kAnd: {
      const auto& b = static_cast<const BinaryCond&>(cond);
      MSQL_ASSIGN_OR_RETURN(bool left, EvalCond(b.left()));
      if (!left) return false;
      return EvalCond(b.right());
    }
    case DolCondKind::kOr: {
      const auto& b = static_cast<const BinaryCond&>(cond);
      MSQL_ASSIGN_OR_RETURN(bool left, EvalCond(b.left()));
      if (left) return true;
      return EvalCond(b.right());
    }
    case DolCondKind::kNot: {
      const auto& n = static_cast<const NotCond&>(cond);
      MSQL_ASSIGN_OR_RETURN(bool inner, EvalCond(n.operand()));
      return !inner;
    }
  }
  return Status::Internal("unhandled condition kind");
}

Result<int64_t> DolEngine::ExecCommit(const CommitStmt& stmt, int64_t at) {
  int64_t now = at;
  for (const auto& task_name : stmt.tasks) {
    MSQL_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(task_name));
    if (task->state == DolTaskState::kCommitted) continue;  // idempotent
    if (task->state != DolTaskState::kPrepared) {
      return Status::TransactionError(
          "COMMIT of task '" + task->name + "' in state " +
          std::string(DolTaskStateName(task->state)));
    }
    MSQL_ASSIGN_OR_RETURN(Channel * channel,
                          FindChannel(task_channel_.at(task->name)));
    LamRequest commit;
    commit.type = LamRequestType::kCommit;
    commit.session = channel->session;
    MSQL_ASSIGN_OR_RETURN(auto outcome, Call(channel, commit, now));
    now = outcome.timing.end_micros;
    if (outcome.response.status.ok()) {
      task->state = DolTaskState::kCommitted;
    } else {
      task->state = DolTaskState::kAborted;
      task->last_status = outcome.response.status;
    }
  }
  return now;
}

Result<int64_t> DolEngine::ExecAbort(const AbortStmt& stmt, int64_t at) {
  int64_t now = at;
  for (const auto& task_name : stmt.tasks) {
    MSQL_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(task_name));
    if (task->state == DolTaskState::kAborted ||
        task->state == DolTaskState::kNotRun) {
      task->state = DolTaskState::kAborted;
      continue;
    }
    if (task->state != DolTaskState::kPrepared) {
      return Status::TransactionError(
          "ABORT of task '" + task->name + "' in state " +
          std::string(DolTaskStateName(task->state)) +
          " (committed tasks must be compensated)");
    }
    MSQL_ASSIGN_OR_RETURN(Channel * channel,
                          FindChannel(task_channel_.at(task->name)));
    LamRequest rollback;
    rollback.type = LamRequestType::kRollback;
    rollback.session = channel->session;
    MSQL_ASSIGN_OR_RETURN(auto outcome, Call(channel, rollback, now));
    now = outcome.timing.end_micros;
    task->state = DolTaskState::kAborted;
    if (!outcome.response.status.ok()) {
      task->last_status = outcome.response.status;
    }
  }
  return now;
}

Result<int64_t> DolEngine::ExecCompensate(const CompensateStmt& stmt,
                                          int64_t at) {
  int64_t now = at;
  for (const auto& task_name : stmt.tasks) {
    MSQL_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(task_name));
    if (task->state != DolTaskState::kCommitted) {
      return Status::TransactionError(
          "COMPENSATE of task '" + task->name + "' in state " +
          std::string(DolTaskStateName(task->state)) +
          " (only committed tasks can be compensated)");
    }
    auto comp_it = compensations_.find(task->name);
    if (comp_it == compensations_.end() || comp_it->second.empty()) {
      return Status::TransactionError(
          "task '" + task->name + "' declares no COMPENSATION block");
    }
    MSQL_ASSIGN_OR_RETURN(Channel * channel,
                          FindChannel(task_channel_.at(task->name)));
    LamRequest exec;
    exec.type = LamRequestType::kExecute;
    exec.session = channel->session;
    exec.sql = comp_it->second;
    MSQL_ASSIGN_OR_RETURN(auto outcome, Call(channel, exec, now));
    now = outcome.timing.end_micros;
    if (!outcome.response.status.ok()) {
      // A failed compensation leaves the multidatabase incorrect; no
      // sound plan can recover, so surface it as a program error.
      return Status::TransactionError(
          "compensation of task '" + task->name + "' failed: " +
          outcome.response.status.ToString());
    }
    task->state = DolTaskState::kCompensated;
  }
  return now;
}

Result<int64_t> DolEngine::ExecTransfer(const TransferStmt& stmt,
                                        int64_t at) {
  MSQL_ASSIGN_OR_RETURN(TaskOutcome * task, FindTask(stmt.task));
  if (!task->result.IsQueryResult()) {
    return Status::InvalidArgument("TRANSFER source task '" + task->name +
                                   "' produced no query result");
  }
  MSQL_ASSIGN_OR_RETURN(Channel * channel, FindChannel(stmt.target_alias));
  if (channel->failed) {
    return Status::Unavailable("TRANSFER target channel '" +
                               stmt.target_alias + "' is not usable");
  }

  int64_t now = at;
  if (!stmt.append) {
    // CREATE TABLE at the target.
    std::string create = "CREATE TABLE " + stmt.table + " (";
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      if (i > 0) create += ", ";
      create += stmt.columns[i].name + " " + stmt.columns[i].type_name;
      if (stmt.columns[i].width > 0) {
        create += "(" + std::to_string(stmt.columns[i].width) + ")";
      }
    }
    create += ")";
    LamRequest create_req;
    create_req.type = LamRequestType::kExecute;
    create_req.session = channel->session;
    create_req.sql = create;
    MSQL_ASSIGN_OR_RETURN(auto create_out, Call(channel, create_req, at));
    now = create_out.timing.end_micros;
    MSQL_RETURN_IF_ERROR(create_out.response.status);
  }

  if (!task->result.rows.empty()) {
    std::string insert = "INSERT INTO " + stmt.table;
    if (stmt.append && !stmt.columns.empty()) {
      insert += " (";
      for (size_t i = 0; i < stmt.columns.size(); ++i) {
        if (i > 0) insert += ", ";
        insert += stmt.columns[i].name;
      }
      insert += ")";
    }
    insert += " VALUES ";
    for (size_t r = 0; r < task->result.rows.size(); ++r) {
      if (r > 0) insert += ", ";
      insert += "(";
      const auto& row = task->result.rows[r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) insert += ", ";
        insert += row[c].ToSqlLiteral();
      }
      insert += ")";
    }
    LamRequest insert_req;
    insert_req.type = LamRequestType::kExecute;
    insert_req.session = channel->session;
    insert_req.sql = std::move(insert);
    MSQL_ASSIGN_OR_RETURN(auto insert_out, Call(channel, insert_req, now));
    now = insert_out.timing.end_micros;
    MSQL_RETURN_IF_ERROR(insert_out.response.status);
  }
  return now;
}

Result<int64_t> DolEngine::ExecClose(const CloseStmt& stmt, int64_t at) {
  int64_t now = at;
  for (const auto& alias : stmt.aliases) {
    MSQL_ASSIGN_OR_RETURN(Channel * channel, FindChannel(alias));
    if (channel->failed || channel->session == 0) {
      channel->failed = true;
      continue;
    }
    LamRequest close;
    close.type = LamRequestType::kCloseSession;
    close.session = channel->session;
    MSQL_ASSIGN_OR_RETURN(auto outcome, Call(channel, close, now));
    now = outcome.timing.end_micros;
    channel->failed = true;  // no further use
    channel->session = 0;
  }
  return now;
}

}  // namespace msql::dol
