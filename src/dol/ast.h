#ifndef MSQL_DOL_AST_H_
#define MSQL_DOL_AST_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace msql::dol {

/// Execution state of a DOL task, as testable in IF conditions:
/// P = prepared-to-commit, C = committed, A = aborted,
/// X = compensated (semantically undone after commit). kNotRun is the
/// state before the TASK statement executes.
enum class DolTaskState { kNotRun, kPrepared, kCommitted, kAborted,
                          kCompensated };

std::string_view DolTaskStateName(DolTaskState state);

/// Single-letter form used in DOL text (P/C/A/X; '-' for kNotRun).
char DolTaskStateLetter(DolTaskState state);

// ---------------------------------------------------------------------------
// Conditions over task states
// ---------------------------------------------------------------------------

class DolCond;
using DolCondPtr = std::unique_ptr<DolCond>;

enum class DolCondKind { kStateTest, kAnd, kOr, kNot };

/// Boolean condition over task states, e.g. (T1=P) AND (T3=P).
class DolCond {
 public:
  explicit DolCond(DolCondKind kind) : kind_(kind) {}
  virtual ~DolCond() = default;

  DolCond(const DolCond&) = delete;
  DolCond& operator=(const DolCond&) = delete;

  DolCondKind kind() const { return kind_; }
  virtual DolCondPtr Clone() const = 0;
  virtual std::string ToDol() const = 0;

 private:
  DolCondKind kind_;
};

/// task = P|C|A|X.
class StateTestCond : public DolCond {
 public:
  StateTestCond(std::string task, DolTaskState state)
      : DolCond(DolCondKind::kStateTest),
        task_(std::move(task)),
        state_(state) {}

  const std::string& task() const { return task_; }
  DolTaskState state() const { return state_; }

  DolCondPtr Clone() const override {
    return std::make_unique<StateTestCond>(task_, state_);
  }
  std::string ToDol() const override;

 private:
  std::string task_;
  DolTaskState state_;
};

/// AND / OR.
class BinaryCond : public DolCond {
 public:
  BinaryCond(DolCondKind kind, DolCondPtr left, DolCondPtr right)
      : DolCond(kind), left_(std::move(left)), right_(std::move(right)) {}

  const DolCond& left() const { return *left_; }
  const DolCond& right() const { return *right_; }

  DolCondPtr Clone() const override {
    return std::make_unique<BinaryCond>(kind(), left_->Clone(),
                                        right_->Clone());
  }
  std::string ToDol() const override;

 private:
  DolCondPtr left_;
  DolCondPtr right_;
};

/// NOT.
class NotCond : public DolCond {
 public:
  explicit NotCond(DolCondPtr operand)
      : DolCond(DolCondKind::kNot), operand_(std::move(operand)) {}

  const DolCond& operand() const { return *operand_; }

  DolCondPtr Clone() const override {
    return std::make_unique<NotCond>(operand_->Clone());
  }
  std::string ToDol() const override;

 private:
  DolCondPtr operand_;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

class DolStmt;
using DolStmtPtr = std::unique_ptr<DolStmt>;

enum class DolStmtKind {
  kOpen,
  kTask,
  kParallel,
  kIf,
  kCommit,
  kAbort,
  kCompensate,
  kTransfer,
  kSetStatus,
  kClose,
};

/// Base class of DOL statements.
class DolStmt {
 public:
  explicit DolStmt(DolStmtKind kind) : kind_(kind) {}
  virtual ~DolStmt() = default;

  DolStmt(const DolStmt&) = delete;
  DolStmt& operator=(const DolStmt&) = delete;

  DolStmtKind kind() const { return kind_; }
  virtual DolStmtPtr Clone() const = 0;
  /// Renders the statement (indented by `indent` levels, with trailing
  /// newline) back to DOL text.
  virtual std::string ToDol(int indent = 0) const = 0;

 private:
  DolStmtKind kind_;
};

/// OPEN <database> AT <service> AS <alias>;
/// Connects to the named service and opens a session on `database`
/// ("establishes a reliable communication channel", §4.3).
struct OpenStmt : public DolStmt {
  OpenStmt() : DolStmt(DolStmtKind::kOpen) {}

  std::string database;
  std::string service;
  std::string alias;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// TASK <name> [NOCOMMIT] FOR <alias> { sql }
///   [COMPENSATION { sql }] ENDTASK;
///
/// Executes the SQL on the alias's session. NOCOMMIT brackets the body
/// in BEGIN ... PREPARE so the task parks in the prepared-to-commit
/// state; without NOCOMMIT the body autocommits. The optional
/// COMPENSATION block registers the semantic undo run by COMPENSATE.
struct TaskStmt : public DolStmt {
  TaskStmt() : DolStmt(DolStmtKind::kTask) {}

  std::string name;
  bool nocommit = false;
  std::string target_alias;
  std::string body_sql;
  std::string compensation_sql;  // empty = none

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// PARBEGIN <stmts> PAREND; — contained tasks start simultaneously; the
/// block completes when the slowest finishes (the DOL concurrency
/// primitive the translator uses for independent subqueries).
struct ParallelStmt : public DolStmt {
  ParallelStmt() : DolStmt(DolStmtKind::kParallel) {}

  std::vector<DolStmtPtr> body;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// IF <cond> THEN BEGIN ... END; [ELSE BEGIN ... END;]
struct IfStmt : public DolStmt {
  IfStmt() : DolStmt(DolStmtKind::kIf) {}

  DolCondPtr condition;
  std::vector<DolStmtPtr> then_branch;
  std::vector<DolStmtPtr> else_branch;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// COMMIT t1, t2; — commits prepared tasks.
struct CommitStmt : public DolStmt {
  CommitStmt() : DolStmt(DolStmtKind::kCommit) {}

  std::vector<std::string> tasks;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// ABORT t1, t2; — rolls back prepared tasks (no-op on already-aborted).
struct AbortStmt : public DolStmt {
  AbortStmt() : DolStmt(DolStmtKind::kAbort) {}

  std::vector<std::string> tasks;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// COMPENSATE t1; — runs the task's COMPENSATION block (autocommit) to
/// semantically undo its committed effects (§3.3).
struct CompensateStmt : public DolStmt {
  CompensateStmt() : DolStmt(DolStmtKind::kCompensate) {}

  std::vector<std::string> tasks;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// TRANSFER <task> TO <alias> TABLE <name> ( col TYPE[(w)], ... );
/// TRANSFER <task> TO <alias> TABLE <name> APPEND [( col, ... )];
///
/// Ships a retrieval task's partial result to another service (the
/// "data paths" of §4.1). The first form creates a temporary table on
/// the target session and fills it (decomposed joins collect partial
/// results at the coordinator this way); the APPEND form inserts into
/// an existing table, optionally into the named columns (multidatabase
/// data transfer, §2).
struct TransferStmt : public DolStmt {
  TransferStmt() : DolStmt(DolStmtKind::kTransfer) {}

  std::string task;
  std::string target_alias;
  std::string table;
  /// (name, type_name, width) triples; in APPEND mode only `name` is
  /// meaningful (the target-column list, possibly empty = all columns).
  struct ColumnSpec {
    std::string name;
    std::string type_name;
    int width = 0;
  };
  std::vector<ColumnSpec> columns;
  /// Insert into an existing table instead of creating a temporary one.
  bool append = false;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// DOLSTATUS = <n>; — sets the program's return code.
struct SetStatusStmt : public DolStmt {
  SetStatusStmt() : DolStmt(DolStmtKind::kSetStatus) {}

  int value = 0;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// CLOSE a1 a2 ...; — closes sessions.
struct CloseStmt : public DolStmt {
  CloseStmt() : DolStmt(DolStmtKind::kClose) {}

  std::vector<std::string> aliases;

  DolStmtPtr Clone() const override;
  std::string ToDol(int indent) const override;
};

/// A full program: DOLBEGIN <stmts> DOLEND.
struct DolProgram {
  std::vector<DolStmtPtr> statements;

  DolProgram() = default;
  DolProgram(const DolProgram&) = delete;
  DolProgram& operator=(const DolProgram&) = delete;
  DolProgram(DolProgram&&) noexcept = default;
  DolProgram& operator=(DolProgram&&) noexcept = default;

  DolProgram CloneProgram() const;
  std::string ToDol() const;
};

}  // namespace msql::dol

#endif  // MSQL_DOL_AST_H_
