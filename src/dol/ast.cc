#include "dol/ast.h"

namespace msql::dol {

namespace {
std::string Indent(int level) { return std::string(level * 2, ' '); }

std::string JoinNames(const std::vector<std::string>& names,
                      const char* sep) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += sep;
    out += names[i];
  }
  return out;
}

std::string RenderBlock(const std::vector<DolStmtPtr>& stmts, int indent) {
  std::string out = Indent(indent) + "BEGIN\n";
  for (const auto& s : stmts) out += s->ToDol(indent + 1);
  out += Indent(indent) + "END";
  return out;
}
}  // namespace

std::string_view DolTaskStateName(DolTaskState state) {
  switch (state) {
    case DolTaskState::kNotRun: return "NOT-RUN";
    case DolTaskState::kPrepared: return "PREPARED";
    case DolTaskState::kCommitted: return "COMMITTED";
    case DolTaskState::kAborted: return "ABORTED";
    case DolTaskState::kCompensated: return "COMPENSATED";
  }
  return "UNKNOWN";
}

char DolTaskStateLetter(DolTaskState state) {
  switch (state) {
    case DolTaskState::kNotRun: return '-';
    case DolTaskState::kPrepared: return 'P';
    case DolTaskState::kCommitted: return 'C';
    case DolTaskState::kAborted: return 'A';
    case DolTaskState::kCompensated: return 'X';
  }
  return '?';
}

std::string StateTestCond::ToDol() const {
  return "(" + task_ + "=" + std::string(1, DolTaskStateLetter(state_)) +
         ")";
}

std::string BinaryCond::ToDol() const {
  return "(" + left().ToDol() +
         (kind() == DolCondKind::kAnd ? " AND " : " OR ") +
         right().ToDol() + ")";
}

std::string NotCond::ToDol() const {
  return "(NOT " + operand().ToDol() + ")";
}

DolStmtPtr OpenStmt::Clone() const {
  auto out = std::make_unique<OpenStmt>();
  out->database = database;
  out->service = service;
  out->alias = alias;
  return out;
}

std::string OpenStmt::ToDol(int indent) const {
  return Indent(indent) + "OPEN " + database + " AT " + service + " AS " +
         alias + ";\n";
}

DolStmtPtr TaskStmt::Clone() const {
  auto out = std::make_unique<TaskStmt>();
  out->name = name;
  out->nocommit = nocommit;
  out->target_alias = target_alias;
  out->body_sql = body_sql;
  out->compensation_sql = compensation_sql;
  return out;
}

std::string TaskStmt::ToDol(int indent) const {
  std::string out = Indent(indent) + "TASK " + name;
  if (nocommit) out += " NOCOMMIT";
  out += " FOR " + target_alias + " { " + body_sql + " }";
  if (!compensation_sql.empty()) {
    out += "\n" + Indent(indent + 1) + "COMPENSATION { " +
           compensation_sql + " }";
  }
  out += "\n" + Indent(indent) + "ENDTASK;\n";
  return out;
}

DolStmtPtr ParallelStmt::Clone() const {
  auto out = std::make_unique<ParallelStmt>();
  out->body.reserve(body.size());
  for (const auto& s : body) out->body.push_back(s->Clone());
  return out;
}

std::string ParallelStmt::ToDol(int indent) const {
  std::string out = Indent(indent) + "PARBEGIN\n";
  for (const auto& s : body) out += s->ToDol(indent + 1);
  out += Indent(indent) + "PAREND;\n";
  return out;
}

DolStmtPtr IfStmt::Clone() const {
  auto out = std::make_unique<IfStmt>();
  out->condition = condition->Clone();
  out->then_branch.reserve(then_branch.size());
  for (const auto& s : then_branch) out->then_branch.push_back(s->Clone());
  out->else_branch.reserve(else_branch.size());
  for (const auto& s : else_branch) out->else_branch.push_back(s->Clone());
  return out;
}

std::string IfStmt::ToDol(int indent) const {
  std::string out = Indent(indent) + "IF " + condition->ToDol() + " THEN\n";
  out += RenderBlock(then_branch, indent);
  out += ";\n";
  if (!else_branch.empty()) {
    out += Indent(indent) + "ELSE\n";
    out += RenderBlock(else_branch, indent);
    out += ";\n";
  }
  return out;
}

DolStmtPtr CommitStmt::Clone() const {
  auto out = std::make_unique<CommitStmt>();
  out->tasks = tasks;
  return out;
}

std::string CommitStmt::ToDol(int indent) const {
  return Indent(indent) + "COMMIT " + JoinNames(tasks, ", ") + ";\n";
}

DolStmtPtr AbortStmt::Clone() const {
  auto out = std::make_unique<AbortStmt>();
  out->tasks = tasks;
  return out;
}

std::string AbortStmt::ToDol(int indent) const {
  return Indent(indent) + "ABORT " + JoinNames(tasks, ", ") + ";\n";
}

DolStmtPtr CompensateStmt::Clone() const {
  auto out = std::make_unique<CompensateStmt>();
  out->tasks = tasks;
  return out;
}

std::string CompensateStmt::ToDol(int indent) const {
  return Indent(indent) + "COMPENSATE " + JoinNames(tasks, ", ") + ";\n";
}

DolStmtPtr TransferStmt::Clone() const {
  auto out = std::make_unique<TransferStmt>();
  out->task = task;
  out->target_alias = target_alias;
  out->table = table;
  out->columns = columns;
  out->append = append;
  return out;
}

std::string TransferStmt::ToDol(int indent) const {
  std::string out = Indent(indent) + "TRANSFER " + task + " TO " +
                    target_alias + " TABLE " + table;
  if (append) {
    out += " APPEND";
    if (!columns.empty()) {
      out += " (";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += columns[i].name;
      }
      out += ")";
    }
    out += ";\n";
    return out;
  }
  out += " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name + " " + columns[i].type_name;
    if (columns[i].width > 0) {
      out += "(" + std::to_string(columns[i].width) + ")";
    }
  }
  out += ");\n";
  return out;
}

DolStmtPtr SetStatusStmt::Clone() const {
  auto out = std::make_unique<SetStatusStmt>();
  out->value = value;
  return out;
}

std::string SetStatusStmt::ToDol(int indent) const {
  return Indent(indent) + "DOLSTATUS = " + std::to_string(value) + ";\n";
}

DolStmtPtr CloseStmt::Clone() const {
  auto out = std::make_unique<CloseStmt>();
  out->aliases = aliases;
  return out;
}

std::string CloseStmt::ToDol(int indent) const {
  return Indent(indent) + "CLOSE " + JoinNames(aliases, " ") + ";\n";
}

DolProgram DolProgram::CloneProgram() const {
  DolProgram out;
  out.statements.reserve(statements.size());
  for (const auto& s : statements) out.statements.push_back(s->Clone());
  return out;
}

std::string DolProgram::ToDol() const {
  std::string out = "DOLBEGIN\n";
  for (const auto& s : statements) out += s->ToDol(1);
  out += "DOLEND\n";
  return out;
}

}  // namespace msql::dol
