#include "dol/parser.h"

#include "common/string_util.h"
#include "relational/sql/lexer.h"

namespace msql::dol {

using relational::Token;
using relational::TokenCursor;
using relational::TokenType;

namespace {

std::string TokenText(const Token& tok) {
  switch (tok.type) {
    case TokenType::kIdentifier:
      return tok.text;
    case TokenType::kString: {
      std::string out = "'";
      for (char c : tok.text) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case TokenType::kInteger:
    case TokenType::kReal:
      return tok.text;
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kComma: return ",";
    case TokenType::kSemicolon: return ";";
    case TokenType::kDot: return ".";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kStar: return "*";
    case TokenType::kSlash: return "/";
    case TokenType::kTilde: return "~";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kEof: return "";
  }
  return "";
}

class DolParser {
 public:
  explicit DolParser(TokenCursor* cursor) : cursor_(cursor) {}

  Result<DolProgram> ParseProgram() {
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("dolbegin"));
    DolProgram program;
    while (!cursor_->Peek().IsKeyword("dolend")) {
      if (cursor_->AtEnd()) {
        return Status::ParseError("DOL program is missing DOLEND");
      }
      MSQL_ASSIGN_OR_RETURN(DolStmtPtr stmt, ParseStatement());
      program.statements.push_back(std::move(stmt));
    }
    cursor_->Get();  // DOLEND
    if (!cursor_->AtEnd()) {
      return Status::ParseError("trailing input after DOLEND at " +
                                cursor_->Peek().Where());
    }
    return program;
  }

 private:
  Result<DolStmtPtr> ParseStatement() {
    const Token& tok = cursor_->Peek();
    if (tok.IsKeyword("open")) return ParseOpen();
    if (tok.IsKeyword("task")) return ParseTask();
    if (tok.IsKeyword("parbegin")) return ParseParallel();
    if (tok.IsKeyword("if")) return ParseIf();
    if (tok.IsKeyword("commit")) return ParseTaskList<CommitStmt>("commit");
    if (tok.IsKeyword("abort")) return ParseTaskList<AbortStmt>("abort");
    if (tok.IsKeyword("compensate")) {
      return ParseTaskList<CompensateStmt>("compensate");
    }
    if (tok.IsKeyword("transfer")) return ParseTransfer();
    if (tok.IsKeyword("dolstatus")) return ParseSetStatus();
    if (tok.IsKeyword("close")) return ParseClose();
    return Status::ParseError("unknown DOL statement '" + tok.text +
                              "' at " + tok.Where());
  }

  Result<DolStmtPtr> ParseOpen() {
    cursor_->Get();  // OPEN
    auto stmt = std::make_unique<OpenStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->database,
                          cursor_->ExpectIdentifier("database name"));
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("at"));
    MSQL_ASSIGN_OR_RETURN(stmt->service,
                          cursor_->ExpectIdentifier("service name"));
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("as"));
    MSQL_ASSIGN_OR_RETURN(stmt->alias, cursor_->ExpectIdentifier("alias"));
    MSQL_RETURN_IF_ERROR(ExpectSemicolon());
    return DolStmtPtr(std::move(stmt));
  }

  /// Captures a `{ ... }` body, re-rendered to text.
  Result<std::string> ParseBracedBody() {
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kLBrace));
    std::vector<Token> tokens;
    int depth = 1;
    while (true) {
      const Token& tok = cursor_->Peek();
      if (tok.type == TokenType::kEof) {
        return Status::ParseError("unterminated '{' body at " + tok.Where());
      }
      if (tok.type == TokenType::kLBrace) ++depth;
      if (tok.type == TokenType::kRBrace) {
        --depth;
        if (depth == 0) {
          cursor_->Get();
          return RenderTokens(tokens);
        }
      }
      tokens.push_back(cursor_->Get());
    }
  }

  Result<DolStmtPtr> ParseTask() {
    cursor_->Get();  // TASK
    auto stmt = std::make_unique<TaskStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->name, cursor_->ExpectIdentifier("task name"));
    stmt->nocommit = cursor_->MatchKeyword("nocommit");
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("for"));
    MSQL_ASSIGN_OR_RETURN(stmt->target_alias,
                          cursor_->ExpectIdentifier("target alias"));
    MSQL_ASSIGN_OR_RETURN(stmt->body_sql, ParseBracedBody());
    if (cursor_->MatchKeyword("compensation")) {
      MSQL_ASSIGN_OR_RETURN(stmt->compensation_sql, ParseBracedBody());
    }
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("endtask"));
    MSQL_RETURN_IF_ERROR(ExpectSemicolon());
    return DolStmtPtr(std::move(stmt));
  }

  Result<DolStmtPtr> ParseParallel() {
    cursor_->Get();  // PARBEGIN
    auto stmt = std::make_unique<ParallelStmt>();
    while (!cursor_->Peek().IsKeyword("parend")) {
      if (cursor_->AtEnd()) {
        return Status::ParseError("PARBEGIN without PAREND");
      }
      MSQL_ASSIGN_OR_RETURN(DolStmtPtr inner, ParseStatement());
      stmt->body.push_back(std::move(inner));
    }
    cursor_->Get();  // PAREND
    MSQL_RETURN_IF_ERROR(ExpectSemicolon());
    return DolStmtPtr(std::move(stmt));
  }

  Result<DolCondPtr> ParseCond() { return ParseOrCond(); }

  Result<DolCondPtr> ParseOrCond() {
    MSQL_ASSIGN_OR_RETURN(DolCondPtr left, ParseAndCond());
    while (cursor_->MatchKeyword("or")) {
      MSQL_ASSIGN_OR_RETURN(DolCondPtr right, ParseAndCond());
      left = std::make_unique<BinaryCond>(DolCondKind::kOr, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<DolCondPtr> ParseAndCond() {
    MSQL_ASSIGN_OR_RETURN(DolCondPtr left, ParseNotCond());
    while (cursor_->MatchKeyword("and")) {
      MSQL_ASSIGN_OR_RETURN(DolCondPtr right, ParseNotCond());
      left = std::make_unique<BinaryCond>(DolCondKind::kAnd,
                                          std::move(left), std::move(right));
    }
    return left;
  }

  Result<DolCondPtr> ParseNotCond() {
    if (cursor_->MatchKeyword("not")) {
      MSQL_ASSIGN_OR_RETURN(DolCondPtr inner, ParseNotCond());
      return DolCondPtr(std::make_unique<NotCond>(std::move(inner)));
    }
    return ParsePrimaryCond();
  }

  Result<DolCondPtr> ParsePrimaryCond() {
    if (cursor_->Match(TokenType::kLParen)) {
      MSQL_ASSIGN_OR_RETURN(DolCondPtr inner, ParseCond());
      MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
      return inner;
    }
    MSQL_ASSIGN_OR_RETURN(std::string task,
                          cursor_->ExpectIdentifier("task name"));
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kEq));
    MSQL_ASSIGN_OR_RETURN(std::string letter,
                          cursor_->ExpectIdentifier("task state letter"));
    DolTaskState state;
    std::string upper = ToUpper(letter);
    if (upper == "P") state = DolTaskState::kPrepared;
    else if (upper == "C") state = DolTaskState::kCommitted;
    else if (upper == "A") state = DolTaskState::kAborted;
    else if (upper == "X") state = DolTaskState::kCompensated;
    else {
      return Status::ParseError("unknown task state letter '" + letter +
                                "' (expected P, C, A or X)");
    }
    return DolCondPtr(
        std::make_unique<StateTestCond>(std::move(task), state));
  }

  Result<std::vector<DolStmtPtr>> ParseBranch() {
    std::vector<DolStmtPtr> out;
    if (cursor_->MatchKeyword("begin")) {
      while (!cursor_->Peek().IsKeyword("end")) {
        if (cursor_->AtEnd()) {
          return Status::ParseError("BEGIN block without END");
        }
        MSQL_ASSIGN_OR_RETURN(DolStmtPtr stmt, ParseStatement());
        out.push_back(std::move(stmt));
      }
      cursor_->Get();  // END
      cursor_->Match(TokenType::kSemicolon);
      return out;
    }
    MSQL_ASSIGN_OR_RETURN(DolStmtPtr stmt, ParseStatement());
    out.push_back(std::move(stmt));
    return out;
  }

  Result<DolStmtPtr> ParseIf() {
    cursor_->Get();  // IF
    auto stmt = std::make_unique<IfStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->condition, ParseCond());
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("then"));
    MSQL_ASSIGN_OR_RETURN(stmt->then_branch, ParseBranch());
    if (cursor_->MatchKeyword("else")) {
      MSQL_ASSIGN_OR_RETURN(stmt->else_branch, ParseBranch());
    }
    return DolStmtPtr(std::move(stmt));
  }

  template <typename StmtT>
  Result<DolStmtPtr> ParseTaskList(std::string_view keyword) {
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword(keyword));
    auto stmt = std::make_unique<StmtT>();
    while (true) {
      MSQL_ASSIGN_OR_RETURN(std::string task,
                            cursor_->ExpectIdentifier("task name"));
      stmt->tasks.push_back(std::move(task));
      if (!cursor_->Match(TokenType::kComma)) break;
    }
    MSQL_RETURN_IF_ERROR(ExpectSemicolon());
    return DolStmtPtr(std::move(stmt));
  }

  Result<DolStmtPtr> ParseTransfer() {
    cursor_->Get();  // TRANSFER
    auto stmt = std::make_unique<TransferStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->task, cursor_->ExpectIdentifier("task name"));
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("to"));
    MSQL_ASSIGN_OR_RETURN(stmt->target_alias,
                          cursor_->ExpectIdentifier("alias"));
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("table"));
    MSQL_ASSIGN_OR_RETURN(stmt->table,
                          cursor_->ExpectIdentifier("table name"));
    if (cursor_->MatchKeyword("append")) {
      stmt->append = true;
      if (cursor_->Match(TokenType::kLParen)) {
        while (true) {
          TransferStmt::ColumnSpec spec;
          MSQL_ASSIGN_OR_RETURN(spec.name,
                                cursor_->ExpectIdentifier("column name"));
          stmt->columns.push_back(std::move(spec));
          if (!cursor_->Match(TokenType::kComma)) break;
        }
        MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
      }
      MSQL_RETURN_IF_ERROR(ExpectSemicolon());
      return DolStmtPtr(std::move(stmt));
    }
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kLParen));
    while (true) {
      TransferStmt::ColumnSpec spec;
      MSQL_ASSIGN_OR_RETURN(spec.name,
                            cursor_->ExpectIdentifier("column name"));
      MSQL_ASSIGN_OR_RETURN(spec.type_name,
                            cursor_->ExpectIdentifier("type name"));
      spec.type_name = ToUpper(spec.type_name);
      if (cursor_->Match(TokenType::kLParen)) {
        Token width;
        MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kInteger, &width));
        spec.width = static_cast<int>(width.int_value);
        MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
      }
      stmt->columns.push_back(std::move(spec));
      if (!cursor_->Match(TokenType::kComma)) break;
    }
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
    MSQL_RETURN_IF_ERROR(ExpectSemicolon());
    return DolStmtPtr(std::move(stmt));
  }

  Result<DolStmtPtr> ParseSetStatus() {
    cursor_->Get();  // DOLSTATUS
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kEq));
    auto stmt = std::make_unique<SetStatusStmt>();
    bool negative = cursor_->Match(TokenType::kMinus);
    Token value;
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kInteger, &value));
    stmt->value = static_cast<int>(value.int_value);
    if (negative) stmt->value = -stmt->value;
    MSQL_RETURN_IF_ERROR(ExpectSemicolon());
    return DolStmtPtr(std::move(stmt));
  }

  Result<DolStmtPtr> ParseClose() {
    cursor_->Get();  // CLOSE
    auto stmt = std::make_unique<CloseStmt>();
    while (cursor_->Peek().type == TokenType::kIdentifier) {
      MSQL_ASSIGN_OR_RETURN(std::string alias,
                            cursor_->ExpectIdentifier("alias"));
      stmt->aliases.push_back(std::move(alias));
    }
    if (stmt->aliases.empty()) {
      return Status::ParseError("CLOSE names no sessions at " +
                                cursor_->Peek().Where());
    }
    MSQL_RETURN_IF_ERROR(ExpectSemicolon());
    return DolStmtPtr(std::move(stmt));
  }

  Status ExpectSemicolon() {
    return cursor_->Expect(TokenType::kSemicolon);
  }

  TokenCursor* cursor_;
};

}  // namespace

std::string RenderTokens(const std::vector<Token>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) {
      // SQL-ish joining: no whitespace around '.', none before ',', ';'
      // and ')', none after '('. (This keeps re-rendered bodies close
      // to the translator's ToSql style; exact equality is reached
      // after one round trip.)
      TokenType cur = tokens[i].type;
      TokenType prev = tokens[i - 1].type;
      bool tight_before = cur == TokenType::kComma ||
                          cur == TokenType::kSemicolon ||
                          cur == TokenType::kRParen ||
                          cur == TokenType::kDot;
      bool tight_after =
          prev == TokenType::kLParen || prev == TokenType::kDot;
      if (!tight_before && !tight_after) out += " ";
    }
    out += TokenText(tokens[i]);
  }
  return out;
}

Result<DolProgram> ParseDol(std::string_view text) {
  relational::LexerOptions options;
  options.braces = true;
  MSQL_ASSIGN_OR_RETURN(auto tokens, relational::Tokenize(text, options));
  TokenCursor cursor(std::move(tokens));
  return DolParser(&cursor).ParseProgram();
}

}  // namespace msql::dol
