#ifndef MSQL_DOL_TASK_H_
#define MSQL_DOL_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/result.h"

namespace msql::dol {

/// Lazy coroutine returning a Result<T> — the execution substrate of the
/// resumable DOL stepper (DESIGN.md §12).
///
/// Every interpreter method of DolEngine is such a coroutine; awaiting a
/// child transfers control into it symmetrically (no host-stack growth),
/// and a child that suspends on an RPC leaves the whole chain parked
/// until DolEngine::Deliver resumes it. The task owns its coroutine
/// frame: destroying a DolTask mid-run unwinds the frame (and, through
/// the frame's locals, every child task) without running the suspended
/// code, which is what lets a scheduler drop an in-flight session.
template <typename T>
class [[nodiscard]] DolTask {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::optional<Result<T>> result;
    /// Awaiting coroutine to resume at completion (none for the root).
    std::coroutine_handle<> continuation;

    DolTask get_return_object() { return DolTask(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// Completion hands control straight back to the awaiter (symmetric
    /// transfer), keeping resume chains flat.
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(Result<T> value) { result.emplace(std::move(value)); }
    /// No exceptions cross public API boundaries in this library; a
    /// throw inside the interpreter is an invariant breakage.
    void unhandled_exception() { std::terminate(); }
  };

  explicit DolTask(Handle handle) : handle_(handle) {}
  DolTask(DolTask&& other) noexcept : handle_(other.handle_) {
    other.handle_ = {};
  }
  DolTask(const DolTask&) = delete;
  DolTask& operator=(const DolTask&) = delete;
  DolTask& operator=(DolTask&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  ~DolTask() {
    if (handle_) handle_.destroy();
  }

  /// Starts the (lazy) coroutine; used on the root task only — children
  /// start through co_await's symmetric transfer.
  void Start() { handle_.resume(); }
  bool Done() const { return handle_.done(); }
  /// Completed value; valid only when Done().
  Result<T> Take() { return std::move(*handle_.promise().result); }

  // -- Awaiter interface (co_await child_task) ---------------------------
  bool await_ready() { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  Result<T> await_resume() { return std::move(*handle_.promise().result); }

 private:
  Handle handle_;
};

}  // namespace msql::dol

/// Coroutine counterparts of MSQL_ASSIGN_OR_RETURN / MSQL_RETURN_IF_ERROR.
/// MSQL_CO_AWAIT_OR_RETURN awaits a DolTask; MSQL_CO_ASSIGN_OR_RETURN
/// unwraps a plain Result expression inside a coroutine body.
#define MSQL_CO_AWAIT_OR_RETURN(lhs, task_expr)                 \
  MSQL_CO_ASSIGN_IMPL_(                                         \
      MSQL_RESULT_CONCAT_(_msql_co_result_, __LINE__), lhs,     \
      co_await (task_expr))

#define MSQL_CO_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  MSQL_CO_ASSIGN_IMPL_(                                         \
      MSQL_RESULT_CONCAT_(_msql_co_result_, __LINE__), lhs, (rexpr))

#define MSQL_CO_ASSIGN_IMPL_(var, lhs, rexpr) \
  auto var = rexpr;                           \
  if (!var.ok()) co_return var.status();      \
  lhs = std::move(var).value()

#define MSQL_CO_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::msql::Status _msql_co_st = (expr);          \
    if (!_msql_co_st.ok()) co_return _msql_co_st; \
  } while (0)

#endif  // MSQL_DOL_TASK_H_
